//! Evented TCP front end for the serve daemon.
//!
//! One reactor thread owns the listener and every peer connection in
//! a single epoll loop (`lss-reactor`), replacing the blocking front
//! end's thread-per-connection model. The service's event loop is
//! untouched: decoded frames flow into the same [`Event`] channel the
//! blocking threads use, and replies come back through a
//! mutex-guarded [`EvOutbox`] keyed by connection token, with a
//! [`Waker`] nudge so the reactor picks them up immediately.
//!
//! Protocol per connection mirrors [`super::service::connection_loop`]
//! exactly: the first frame must be a hello (worker or client) —
//! anything else, including a legacy unversioned frame, earns a typed
//! `Rejected` and a parting close. After the handshake, heartbeats
//! post without a reply and every other frame is a request; a
//! `Shutdown` reply closes the connection once it reaches the wire; a
//! worker connection dying by any other route raises
//! [`Event::WorkerGone`] so its leased chunks requeue.
//!
//! Half-open peers cost a map entry, not a parked thread: every
//! connection carries a deadline — 10 s to complete the handshake,
//! then [`crate::ServeConfig::idle_deadline`] of allowed silence — and
//! the reactor sweeps for violators on every scan slice.

use std::collections::HashMap;
use std::io::ErrorKind;
use std::net::TcpListener;
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use lss_reactor::{FramedConn, Interest, Poller, Readiness, Waker};
use lss_runtime::protocol::serve::ServeFrame;
use lss_runtime::transport::TransportError;

use crate::service::{Event, ReplyTo};

/// The listener's registration token; connections count up from 1.
const LISTENER_TOKEN: u64 = 0;

/// A connection that never completes its hello within this window is
/// dropped (same budget as the runtime transport's handshake read).
const HANDSHAKE_DEADLINE: Duration = Duration::from_secs(10);

/// Upper bound on one `epoll_wait`: the reactor wakes at least this
/// often to scan deadlines even when no fd stirs.
const SCAN_SLICE: Duration = Duration::from_millis(100);

/// Grace window after stop for flushing queued farewell frames: the
/// `Shutdown` each worker was promised must reach the wire before its
/// socket drops, or an orderly drain would look like a crash.
const PARTING_FLUSH_BUDGET: Duration = Duration::from_millis(500);

/// Reply queue shared between the service thread and the reactor.
/// [`ReplyTo::Evented`] pushes here; the reactor drains after every
/// wake and moves the frames onto their connections.
pub(crate) struct EvOutbox {
    queue: Mutex<Vec<(u64, ServeFrame)>>,
    waker: Waker,
}

impl EvOutbox {
    /// Queues `frame` for the connection registered under `token` and
    /// wakes the reactor. Fire-and-forget: if the connection died in
    /// the meantime the frame is dropped, exactly as bytes buffered in
    /// a dead socket would be.
    pub(crate) fn reply(&self, token: u64, frame: ServeFrame) {
        self.queue.lock().expect("outbox lock").push((token, frame));
        self.waker.wake();
    }
}

/// The running reactor, as the service assembly code sees it.
pub(crate) struct EventedFrontEnd {
    /// Wakes the reactor (stop notification, reply pickup).
    pub(crate) waker: Waker,
    /// The reactor thread, joined for provable shutdown.
    pub(crate) thread: std::thread::JoinHandle<()>,
}

/// Spins up the reactor around an already-bound listener. `stop` is
/// polled after every wake; flag it and wake to tear the reactor down
/// (queued farewells are flushed first).
pub(crate) fn start(
    listener: TcpListener,
    tx: Sender<Event>,
    stop: Arc<AtomicBool>,
    idle_deadline: Duration,
) -> Result<EventedFrontEnd, TransportError> {
    let io = |e: std::io::Error| TransportError::Io(e.to_string());
    listener.set_nonblocking(true).map_err(io)?;
    let poller = Poller::new().map_err(io)?;
    poller.register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ).map_err(io)?;
    let waker = poller.waker();
    let outbox = Arc::new(EvOutbox { queue: Mutex::new(Vec::new()), waker: waker.clone() });
    let thread = std::thread::spawn(move || {
        Reactor {
            poller,
            listener,
            tx,
            outbox,
            stop,
            idle_deadline,
            conns: HashMap::new(),
            next_token: LISTENER_TOKEN + 1,
        }
        .run()
    });
    Ok(EventedFrontEnd { waker, thread })
}

/// What a connection has told us about itself.
enum PeerState {
    /// Accepted, awaiting the hello frame.
    PreHello {
        /// When the connection was accepted.
        since: Instant,
    },
    /// `HelloWorker { worker }` seen; EOF now raises `WorkerGone`.
    Worker {
        /// The claimed worker id (validated by the service, not here —
        /// a bogus id gets a typed `Rejected` reply like any request).
        id: usize,
    },
    /// `HelloClient` seen.
    Client,
}

struct SConn {
    fc: FramedConn,
    state: PeerState,
    /// Whether write interest is currently armed (toggled only on
    /// change — an `epoll_ctl` per loop would be pure overhead).
    armed_write: bool,
    /// Close once the write queue drains: a farewell (`Shutdown` or a
    /// handshake rejection) has been queued. The evented analogue of
    /// the blocking connection thread returning after its last write —
    /// and a parting connection never raises `WorkerGone`.
    parting: bool,
}

/// The reactor thread's whole world.
struct Reactor {
    poller: Poller,
    listener: TcpListener,
    tx: Sender<Event>,
    outbox: Arc<EvOutbox>,
    stop: Arc<AtomicBool>,
    idle_deadline: Duration,
    conns: HashMap<u64, SConn>,
    next_token: u64,
}

impl Reactor {
    fn run(mut self) {
        let mut events: Vec<Readiness> = Vec::new();
        loop {
            events.clear();
            if self.poller.wait(&mut events, Some(SCAN_SLICE)).is_err() {
                break;
            }
            if self.stop.load(Ordering::SeqCst) {
                // The service exited after queueing its farewells:
                // deliver them, then tear down.
                self.drain_outbox();
                self.final_flush();
                return;
            }
            for ev in std::mem::take(&mut events) {
                self.handle_event(ev);
            }
            self.drain_outbox();
            self.scan_deadlines();
        }
    }

    fn handle_event(&mut self, ev: Readiness) {
        if ev.token == LISTENER_TOKEN {
            self.accept_all();
            return;
        }
        let mut dead = false;
        let mut frames = Vec::new();
        if ev.readable || ev.closed {
            match self.conns.get_mut(&ev.token) {
                // Final frames ahead of an EOF are still extracted; the
                // error only marks the connection for closing after
                // they are processed.
                Some(conn) => {
                    if conn.fc.on_readable(&mut frames).is_err() {
                        dead = true;
                    }
                }
                None => return,
            }
        }
        for payload in frames {
            if !self.process_frame(ev.token, &payload) {
                dead = true;
                break;
            }
        }
        if dead || ev.closed {
            self.close_conn(ev.token);
            return;
        }
        if ev.writable {
            self.flush_conn(ev.token);
        }
    }

    /// Accepts until the backlog drains.
    fn accept_all(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let Ok(fc) = FramedConn::new(stream) else { continue };
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .register(fc.stream().as_raw_fd(), token, Interest::READ)
                        .is_err()
                    {
                        continue;
                    }
                    self.conns.insert(
                        token,
                        SConn {
                            fc,
                            state: PeerState::PreHello { since: Instant::now() },
                            armed_write: false,
                            parting: false,
                        },
                    );
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// Dispatches one decoded frame. Returns `false` when the
    /// connection must be closed hard (mid-stream garbage — the
    /// blocking loop's decode-or-break, which raises `WorkerGone`).
    fn process_frame(&mut self, token: u64, payload: &[u8]) -> bool {
        let handshaking = match self.conns.get(&token) {
            Some(SConn { state: PeerState::PreHello { .. }, .. }) => true,
            Some(_) => false,
            None => return false,
        };
        if handshaking {
            match ServeFrame::decode(payload) {
                Ok(f @ (ServeFrame::HelloWorker { .. } | ServeFrame::HelloClient)) => {
                    let state = match &f {
                        ServeFrame::HelloWorker { worker, .. } => PeerState::Worker { id: *worker },
                        _ => PeerState::Client,
                    };
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.state = state;
                    }
                    self.forward(token, f)
                }
                Ok(_) => {
                    self.part_with(
                        token,
                        ServeFrame::Rejected { reason: "handshake required".into() },
                    );
                    true
                }
                // A legacy (unversioned) or mis-versioned peer gets a
                // typed refusal it can surface, never a silent drop.
                Err(e) => {
                    self.part_with(token, ServeFrame::Rejected { reason: e.to_string() });
                    true
                }
            }
        } else {
            match ServeFrame::decode(payload) {
                Ok(f @ ServeFrame::Heartbeat { .. }) => {
                    let _ = self.tx.send(Event::Post(f));
                    true
                }
                Ok(f) => self.forward(token, f),
                Err(_) => false,
            }
        }
    }

    /// Sends one frame into the service; if the service has already
    /// exited, the peer is told to stop with a parting `Shutdown`.
    fn forward(&mut self, token: u64, frame: ServeFrame) -> bool {
        let reply = ReplyTo::Evented { token, outbox: Arc::clone(&self.outbox) };
        if self.tx.send(Event::Frame { frame, reply }).is_err() {
            self.part_with(token, ServeFrame::Shutdown);
        }
        true
    }

    /// Queues a farewell frame and marks the connection to close once
    /// the frame has been written out.
    fn part_with(&mut self, token: u64, frame: ServeFrame) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        conn.parting = true;
        if conn.fc.queue_frame(&frame.encode()).is_err() {
            self.close_conn(token);
            return;
        }
        self.flush_conn(token);
    }

    /// Moves queued replies onto their connections and flushes. A
    /// `Shutdown` reply is a farewell: the connection closes once the
    /// frame reaches the wire, like the blocking thread returning
    /// after writing it.
    fn drain_outbox(&mut self) {
        let pending = std::mem::take(&mut *self.outbox.queue.lock().expect("outbox lock"));
        if pending.is_empty() {
            return;
        }
        let mut touched: Vec<u64> = Vec::new();
        for (token, frame) in pending {
            let Some(conn) = self.conns.get_mut(&token) else {
                // Raced with a disconnect after the request was
                // forwarded; the lease layer re-grants the work.
                continue;
            };
            if matches!(frame, ServeFrame::Shutdown) {
                conn.parting = true;
            }
            if conn.fc.queue_frame(&frame.encode()).is_err() {
                self.close_conn(token);
                continue;
            }
            if !touched.contains(&token) {
                touched.push(token);
            }
        }
        for token in touched {
            self.flush_conn(token);
        }
    }

    /// Flushes a connection's queue, keeps write interest armed exactly
    /// while bytes remain, and completes a parting close when the
    /// farewell has drained.
    fn flush_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else { return };
        match conn.fc.flush() {
            Ok(wants_write) => {
                if conn.parting && !wants_write {
                    self.close_conn(token);
                    return;
                }
                if wants_write != conn.armed_write {
                    conn.armed_write = wants_write;
                    let interest = if wants_write { Interest::READ_WRITE } else { Interest::READ };
                    let _ = self.poller.rearm(conn.fc.stream().as_raw_fd(), token, interest);
                }
            }
            Err(_) => self.close_conn(token),
        }
    }

    /// Cuts connections that blew their handshake or idle deadline —
    /// the half-open answer: no thread is parked anywhere, so a scan
    /// and a close (with its `WorkerGone` requeue) is the cleanup.
    fn scan_deadlines(&mut self) {
        let now = Instant::now();
        let mut doomed: Vec<u64> = Vec::new();
        for (token, conn) in &self.conns {
            let overdue = match conn.state {
                PeerState::PreHello { since } => {
                    now.saturating_duration_since(since) >= HANDSHAKE_DEADLINE
                }
                _ => conn.fc.idle_for(now) >= self.idle_deadline,
            };
            if overdue {
                doomed.push(*token);
            }
        }
        for token in doomed {
            self.close_conn(token);
        }
    }

    /// Best-effort delivery of pending farewell bytes after stop,
    /// bounded by [`PARTING_FLUSH_BUDGET`]; then every socket drops.
    fn final_flush(&mut self) {
        let deadline = Instant::now() + PARTING_FLUSH_BUDGET;
        loop {
            let tokens: Vec<u64> = self.conns.keys().copied().collect();
            let mut pending = false;
            for token in tokens {
                self.flush_conn(token);
                if self.conns.get(&token).is_some_and(|c| c.fc.wants_write()) {
                    pending = true;
                }
            }
            if !pending || Instant::now() >= deadline {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Removes a connection. A worker link dying for any reason other
    /// than a parting farewell tells the service, so leased chunks
    /// requeue; a redial re-enters via its own hello.
    fn close_conn(&mut self, token: u64) {
        let Some(conn) = self.conns.remove(&token) else { return };
        let _ = self.poller.deregister(conn.fc.stream().as_raw_fd());
        if conn.parting {
            return;
        }
        if let PeerState::Worker { id } = conn.state {
            let _ = self.tx.send(Event::WorkerGone(id));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{serve_tcp_with, ServeBackend, ServeConfig};
    use crate::worker::{run_serve_worker, ServeWorkerConfig};
    use crate::{ServeClient, TcpLink};
    use lss_core::master::SchemeKind;
    use lss_runtime::protocol::serve::{JobSpec, JobState, WorkloadSpec};
    use lss_runtime::transport::frame::{read_frame_blocking, write_frame};
    use std::net::TcpStream;

    fn uniform(priority: u32, iters: u64) -> JobSpec {
        JobSpec {
            workload: WorkloadSpec::Uniform { iters, cost: 5 },
            scheme: SchemeKind::Dtss,
            priority,
        }
    }

    /// The acceptance gate in miniature: jobs over TCP workers against
    /// the evented front end run to completion, with the same typed
    /// lifecycle the blocking front end reports.
    #[test]
    fn evented_jobs_run_to_completion_over_tcp() {
        let handle =
            serve_tcp_with(ServeConfig::new(4), "127.0.0.1", 0, ServeBackend::Evented)
                .expect("serve evented");
        let addr = handle.addr.expect("tcp service has an address");
        let workers: Vec<_> = (0..4)
            .map(|w| {
                std::thread::spawn(move || {
                    let mut link = TcpLink::connect(addr).expect("dial service");
                    run_serve_worker(&mut link, &ServeWorkerConfig::healthy(w))
                        .expect("worker loop failed")
                })
            })
            .collect();
        let mut client = ServeClient::connect(addr).expect("client connect");
        for (priority, iters) in [(1, 800), (2, 800), (4, 800)] {
            client.submit(uniform(priority, iters)).expect("submit");
        }
        client.drain().expect("drain");
        drop(client);
        let report = handle.join();
        for w in workers {
            w.join().expect("worker thread");
        }
        assert_eq!(report.jobs_completed, 3);
        for job in &report.jobs {
            assert_eq!(job.state, JobState::Done, "job {} not done", job.job);
            assert_eq!(job.completed, job.total);
        }
    }

    /// A half-open worker — hello, one grant taken, then silence — is
    /// cut by the idle deadline and its chunks finish elsewhere; the
    /// reactor thread itself never parks.
    #[test]
    fn evented_half_open_worker_is_cut_and_work_requeued() {
        let mut cfg = ServeConfig::new(2);
        cfg.idle_deadline = Duration::from_millis(400);
        let handle = serve_tcp_with(cfg, "127.0.0.1", 0, ServeBackend::Evented)
            .expect("serve evented");
        let addr = handle.addr.expect("tcp service has an address");
        // Worker 1 goes half-open: handshake by hand, swallow the
        // reply, then sit silent holding whatever it was granted.
        let silent = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("dial");
            let hello = lss_runtime::protocol::serve::ServeFrame::HelloWorker { worker: 1, q: 1 };
            write_frame(&mut s, &hello.encode()).expect("hello");
            let _ = read_frame_blocking(&mut s);
            std::thread::sleep(Duration::from_secs(3));
            drop(s);
        });
        let mut client = ServeClient::connect(addr).expect("client connect");
        client.submit(uniform(1, 1500)).expect("submit");
        client.drain().expect("drain");
        drop(client);
        // Worker 0 alone must be able to finish the job — the silent
        // worker's leases expire and requeue when its link is cut.
        let healthy = std::thread::spawn(move || {
            let mut link = TcpLink::connect(addr).expect("dial service");
            run_serve_worker(&mut link, &ServeWorkerConfig::healthy(0))
                .expect("worker loop failed")
        });
        let report = handle.join();
        healthy.join().expect("healthy worker");
        silent.join().expect("silent worker");
        assert_eq!(report.jobs_completed, 1);
        assert_eq!(report.jobs[0].completed, report.jobs[0].total);
    }

    /// Service exit tears the reactor down without any inbound
    /// connection: the waker, not a dial, unblocks the loop, and the
    /// handle's join proves the reactor thread exited.
    #[test]
    fn evented_shutdown_completes_with_zero_inbound_connections() {
        let mut cfg = ServeConfig::new(1);
        cfg.exit_after_jobs = Some(0);
        let t0 = Instant::now();
        let handle = serve_tcp_with(cfg, "127.0.0.1", 0, ServeBackend::Evented)
            .expect("serve evented");
        let addr = handle.addr.expect("tcp service has an address");
        let report = handle.join();
        assert!(t0.elapsed() < Duration::from_secs(5), "shutdown waited for a connection");
        assert_eq!(report.jobs_completed, 0);
        // The reactor is joined: its listener is closed, dials fail.
        assert!(TcpStream::connect(addr).is_err(), "listener survived the join");
    }

    /// A legacy unversioned peer gets the same typed `Rejected` frame
    /// the blocking front end sends, then the connection closes.
    #[test]
    fn evented_legacy_peer_gets_typed_rejection() {
        use lss_runtime::protocol::{Request, WireMsg};
        let mut cfg = ServeConfig::new(1);
        cfg.exit_after_jobs = Some(1);
        let handle = serve_tcp_with(cfg, "127.0.0.1", 0, ServeBackend::Evented)
            .expect("serve evented");
        let addr = handle.addr.expect("tcp service has an address");
        let mut stream = TcpStream::connect(addr).expect("legacy dial");
        let legacy = WireMsg::Request(Request { worker: 0, q: 1, result: None });
        write_frame(&mut stream, &legacy.encode()).expect("legacy hello");
        let reply = read_frame_blocking(&mut stream).expect("a reply frame");
        match lss_runtime::protocol::serve::ServeFrame::decode(&reply) {
            Ok(lss_runtime::protocol::serve::ServeFrame::Rejected { reason }) => {
                assert!(
                    reason.contains("legacy") || reason.contains("version"),
                    "reason should name the protocol mismatch: {reason}"
                );
            }
            other => panic!("expected a typed Rejected frame, got {other:?}"),
        }
        // Parting close: the next read sees EOF, not a hang.
        assert!(read_frame_blocking(&mut stream).is_err(), "connection should be closed");
        drop(stream);
        // Unblock the service: one real worker, one real job.
        let worker = std::thread::spawn(move || {
            let mut link = TcpLink::connect(addr).expect("dial service");
            run_serve_worker(&mut link, &ServeWorkerConfig::healthy(0))
                .expect("worker loop failed")
        });
        let mut client = ServeClient::connect(addr).expect("client connect");
        client.submit(uniform(1, 100)).expect("submit");
        drop(client);
        let report = handle.join();
        worker.join().expect("worker thread");
        assert_eq!(report.jobs_completed, 1);
    }

    /// The env selector: unknown names are a typed error, known names
    /// resolve, unset defaults to blocking.
    #[test]
    fn backend_env_selector_is_typed() {
        // Exercised via the parse itself (env mutation in tests races
        // other tests in the same process).
        assert_eq!(ServeBackend::from_env().ok(), {
            match std::env::var("LSS_SERVE_BACKEND") {
                Ok(v) if v == "evented" => Some(ServeBackend::Evented),
                Err(_) => Some(ServeBackend::Blocking),
                Ok(v) if v.is_empty() || v == "blocking" => Some(ServeBackend::Blocking),
                Ok(_) => None,
            }
        });
    }
}
