//! Fair-share multiplexing of many jobs over one worker pool.
//!
//! Every active job owns a full [`Master`] — scheme state, chunk
//! leases, dedup bitmap, job-scoped trace sink — so the exactly-once
//! guarantees of the fault-tolerance layer hold *per job* with no new
//! bookkeeping. What this module adds is the layer above: deciding
//! **which jobs** a requesting worker serves and **how much** of the
//! worker's computing power each one sees.
//!
//! The mechanism is the paper's ACP model, partitioned. A request from
//! worker `i` carries its run-queue length `Q_i`; the scheduler derives
//! `A_i = ⌊scale · V_i / Q_i⌋` and splits it across active jobs in
//! proportion to priority weights ([`partition_acp`]). Job `j`'s share
//! `s_j` is handed to its master as an *effective run-queue length*
//! `q_eff = round(scale_job · V_i / s_j)`, so the job's own ACP
//! derivation lands on `s_j` — ACP-adaptive schemes (DTSS, DFSS, …)
//! then size chunks proportionally to the share without knowing other
//! jobs exist. Shares are recomputed on the DTSS replan trigger
//! ([`ReplanTrigger`]: more than half the `A_i` changed) and whenever
//! the active-job set changes.
//!
//! Batch assembly walks jobs in *deficit order* (lowest
//! `completed / weight` first — the job furthest behind its fair share)
//! and takes at most one chunk per job (a worker holds at most one
//! lease per master), up to the batch bound `k`. If share-filtering
//! leaves nothing grantable, a fallback grant from the most-deficient
//! job keeps every worker progressing.

use lss_core::master::{Assignment, Master, MasterConfig};
use lss_core::power::{AcpConfig, VirtualPower};
use lss_core::share::{partition_acp, ReplanTrigger};
use lss_core::Chunk;
use lss_runtime::protocol::serve::{
    JobChunkResult, JobGrant, JobSpec, JobState, JobStatus, WorkloadSpec,
};
use lss_trace::{EventKind, JobScopedSink, SharedSink, TraceEvent};

/// ACP scale used *inside* each job's master. The round trip
/// `q_eff = round(scale_job · V / s)` then `A = ⌊scale_job · V / q_eff⌋`
/// loses about `s² / (2 · scale_job)` units, so the scale must dwarf
/// the square of any pool-level share. Pool shares live in the
/// hundreds (pool scale ~1000), making the loss at most one unit here.
pub const JOB_ACP_SCALE: u32 = 1_000_000;

/// Static configuration of the multi-job scheduler.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Size of the worker pool.
    pub workers: usize,
    /// Virtual power of each worker.
    pub powers: Vec<VirtualPower>,
    /// ACP derivation rule for the *pool-level* `A_i` that gets
    /// partitioned. A larger scale gives finer fair-share granularity.
    pub acp: AcpConfig,
    /// Chunk-lease parameters applied to every job's master.
    pub lease: lss_core::LeaseConfig,
    /// Maximum grants per batch (`k`): one round trip delivers up to
    /// `k` chunks, one per job.
    pub batch_k: usize,
    /// Worker-health scoring and straggler-quarantine policy.
    pub quarantine: QuarantineConfig,
}

/// Worker-health scoring and quarantine policy.
///
/// The scheduler keeps an EWMA of each worker's per-iteration chunk
/// latency (grant to result) and its last sign of life. A worker whose
/// latency EWMA degrades past `latency_factor ×` the median of the
/// rest of the pool — or that goes silent past `silence_ns` — is
/// *quarantined*: its outstanding leases are revoked and their chunks
/// requeued immediately (first-result-wins dedup absorbs any late
/// straggler results), and from then on it is only handed single-chunk
/// canary probes. `canary_target` consecutive healthy canaries earn
/// readmission.
#[derive(Debug, Clone, Copy)]
pub struct QuarantineConfig {
    /// Master switch; when off the scheduler never quarantines.
    pub enabled: bool,
    /// A result batch violates when its grant-to-result time exceeds
    /// this multiple of the *expected* time (the pool-median
    /// per-iteration pace times the batch's iterations), plus
    /// [`comm_slack_ns`](Self::comm_slack_ns).
    pub latency_factor: f64,
    /// Consecutive violating completed chunks required to quarantine
    /// (protects workers from one unlucky batch).
    pub min_samples: u32,
    /// Silence (no request, result, or heartbeat) beyond this many
    /// nanoseconds quarantines a previously seen worker.
    pub silence_ns: u64,
    /// Consecutive healthy canary chunks required for readmission.
    pub canary_target: u32,
    /// Minimum pause between canary probes to the same quarantined
    /// worker. Without it a long-polling straggler receives a steady
    /// stream of probes and keeps burning CPU the pool could use —
    /// on an oversubscribed host that costs the healthy workers real
    /// throughput.
    pub canary_cooldown_ns: u64,
    /// Result batches totalling fewer iterations than this are not
    /// folded into the pace EWMA, and canary probes below it are
    /// inconclusive. A tiny batch's grant-to-result time is dominated
    /// by transport round trips, not compute; folding it into the
    /// latency EWMA (or readmitting a worker on its strength) mistakes
    /// comm noise for worker speed.
    pub min_sample_iters: u64,
    /// Absolute grant-to-result allowance added to every latency
    /// judgment: transport round trips, event-loop queuing, and OS
    /// scheduling jitter cost this much regardless of batch size, and
    /// per-iteration ratios alone would read that fixed cost as
    /// degradation on small batches. A canary pass is only *credited*
    /// when the probe's expected compute exceeds this slack — a probe
    /// that finishes inside the slack proves nothing either way.
    pub comm_slack_ns: u64,
}

impl Default for QuarantineConfig {
    fn default() -> Self {
        QuarantineConfig {
            // A factor of 6 keeps batched-grant latency inflation (the
            // last chunk of a k-batch waits on its siblings) and OS
            // scheduling jitter below the trigger while still catching
            // order-of-magnitude stragglers quickly.
            enabled: true,
            latency_factor: 6.0,
            min_samples: 3,
            silence_ns: 5_000_000_000,
            canary_target: 2,
            canary_cooldown_ns: 1_000_000_000,
            min_sample_iters: 64,
            comm_slack_ns: 10_000_000,
        }
    }
}

impl QuarantineConfig {
    /// A policy that never quarantines — the baseline the benchmark
    /// compares against.
    pub fn disabled() -> Self {
        QuarantineConfig { enabled: false, ..QuarantineConfig::default() }
    }
}

/// Per-worker health ledger backing the quarantine decision.
#[derive(Debug, Clone)]
struct WorkerHealth {
    /// EWMA of per-iteration chunk latency (ns/iteration).
    ewma_ns: f64,
    /// Completed-chunk samples folded into the EWMA so far.
    samples: u32,
    /// Last sign of life (request, result, or heartbeat), service ns.
    last_heard: u64,
    /// Whether the worker is quarantined.
    quarantined: bool,
    /// Whether a canary probe is outstanding (quarantined workers hold
    /// at most one).
    canary_out: bool,
    /// Consecutive healthy canary completions.
    canary_ok: u32,
    /// Consecutive latency-violating completed chunks (reset by any
    /// batch inside the allowance).
    strikes: u32,
    /// Earliest service time the next canary probe may go out.
    canary_after: u64,
}

impl WorkerHealth {
    fn new() -> Self {
        WorkerHealth {
            ewma_ns: 0.0,
            samples: 0,
            last_heard: 0,
            quarantined: false,
            canary_out: false,
            canary_ok: 0,
            strikes: 0,
            canary_after: 0,
        }
    }

    /// Folds one per-iteration latency sample into the EWMA (the same
    /// 0.5/0.5 blend the lease table uses for pace). `weight` is how
    /// many completed chunks the sample summarizes — a k-chunk batch is
    /// k pieces of evidence even though it yields one unbiased sample.
    fn observe(&mut self, per_iter_ns: f64, weight: u32) {
        self.ewma_ns = if self.samples == 0 {
            per_iter_ns
        } else {
            0.5 * self.ewma_ns + 0.5 * per_iter_ns
        };
        self.samples = self.samples.saturating_add(weight.max(1));
    }
}

/// One job being actively scheduled.
struct ActiveJob {
    id: u64,
    priority: u32,
    workload: WorkloadSpec,
    master: Master,
    submitted_ns: u64,
    /// A crash-recovered job reports `Recovering` until its first
    /// post-restart grant proves scheduling has resumed.
    recovering: bool,
}

/// Cross-job progress captured at the instant a job completes — the
/// raw material for fairness verification: while jobs compete, their
/// completed iterations should track their priority weights.
#[derive(Debug, Clone)]
pub struct FairSnapshot {
    /// The job that just completed.
    pub completed_job: u64,
    /// When (service-epoch nanoseconds).
    pub at_ns: u64,
    /// `(job, priority, iterations_completed)` for every job active at
    /// that instant, the completed one included.
    pub progress: Vec<(u64, u32, u64)>,
}

/// The fair-share multiplexer: per-job masters plus the partition
/// machinery.
pub struct MultiJobScheduler {
    cfg: SchedulerConfig,
    jobs: Vec<ActiveJob>,
    done: Vec<JobStatus>,
    trigger: ReplanTrigger,
    /// Committed share of each worker's ACP per active job
    /// (`shares[worker][job_index]`), recomputed on the replan trigger
    /// or when the job set changes.
    shares: Vec<Vec<u32>>,
    needs_partition: bool,
    worker_seen: Vec<bool>,
    health: Vec<WorkerHealth>,
    /// Outstanding grants per worker (`(job, chunk, granted_at)`),
    /// kept independently of chunk leases so latency can be scored even
    /// after a slow worker's lease lapsed and its chunk was requeued —
    /// exactly the results that prove it slow.
    grant_times: Vec<Vec<(u64, Chunk, u64)>>,
    sink: SharedSink,
    snapshots: Vec<FairSnapshot>,
    grants_sent: u64,
}

impl MultiJobScheduler {
    /// A scheduler with no jobs yet. `sink` is shared with the service
    /// so every job's events land in one stream (job-tagged).
    pub fn new(cfg: SchedulerConfig, sink: SharedSink) -> Self {
        assert!(cfg.workers >= 1, "need at least one worker");
        assert_eq!(cfg.powers.len(), cfg.workers, "one power per worker");
        assert!(cfg.batch_k >= 1, "batch bound must be at least 1");
        let workers = cfg.workers;
        MultiJobScheduler {
            cfg,
            jobs: Vec::new(),
            done: Vec::new(),
            trigger: ReplanTrigger::new(workers),
            shares: vec![Vec::new(); workers],
            needs_partition: false,
            worker_seen: vec![false; workers],
            health: vec![WorkerHealth::new(); workers],
            grant_times: vec![Vec::new(); workers],
            sink,
            snapshots: Vec::new(),
            grants_sent: 0,
        }
    }

    /// Number of jobs currently being scheduled.
    pub fn active_len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether no job is active.
    pub fn is_idle(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Total batched grants handed out so far.
    pub fn grants_sent(&self) -> u64 {
        self.grants_sent
    }

    /// Promotes a job to active: builds its master (scheme state +
    /// leases + dedup) with a job-scoped trace sink.
    pub fn activate(&mut self, id: u64, spec: &JobSpec, submitted_ns: u64) {
        let master = self.build_master(id, spec);
        self.jobs.push(ActiveJob {
            id,
            priority: spec.priority.max(1),
            workload: spec.workload,
            master,
            submitted_ns,
            recovering: false,
        });
        self.needs_partition = true;
    }

    /// Re-admits a crash-recovered job: builds a fresh master and seeds
    /// its completion bitmap with the iterations journaled complete
    /// before the crash, so only the remainder is scheduled. Each
    /// seeded range is traced as `RecoveredComplete` — together with
    /// the post-restart `Completed` events the job's trace still covers
    /// `[0, total)` exactly once. The job reports `Recovering` until
    /// its first grant.
    pub fn activate_recovered(
        &mut self,
        id: u64,
        spec: &JobSpec,
        submitted_ns: u64,
        completed: &[Chunk],
        now: u64,
    ) {
        let mut master = self.build_master(id, spec);
        self.sink.record(TraceEvent::new(now, EventKind::JobRecovered).on_job(id));
        for &range in completed {
            if master.seed_completed(range) > 0 {
                self.sink.record(
                    TraceEvent::new(now, EventKind::RecoveredComplete)
                        .on_chunk(range.start, range.len)
                        .on_job(id),
                );
            }
        }
        self.jobs.push(ActiveJob {
            id,
            priority: spec.priority.max(1),
            workload: spec.workload,
            master,
            submitted_ns,
            recovering: true,
        });
        self.needs_partition = true;
    }

    fn build_master(&self, id: u64, spec: &JobSpec) -> Master {
        let total = spec.workload.len();
        let mut master = Master::new(MasterConfig {
            scheme: spec.scheme,
            total,
            powers: self.cfg.powers.clone(),
            initial_q: vec![1; self.cfg.workers],
            acp: AcpConfig::new(JOB_ACP_SCALE, self.cfg.acp.a_min),
        });
        master.set_lease_config(self.cfg.lease);
        master.set_trace_sink(Box::new(JobScopedSink::new(id, self.sink.clone())));
        master
    }

    /// Records a worker's piggy-backed results. Completed jobs are
    /// retired (with a fairness snapshot and a `JobCompleted` trace
    /// event) and their ids returned. Results for unknown or already
    /// retired jobs are ignored — late duplicates, not errors.
    pub fn record_results(
        &mut self,
        worker: usize,
        results: &[JobChunkResult],
        now: u64,
    ) -> Vec<u64> {
        let tracked = worker < self.cfg.workers;
        // Latency is scored once per *batch*, not per chunk: a worker
        // executes its k granted chunks serially, so the wall-clock of a
        // late chunk includes its siblings' compute and a per-chunk
        // sample would read up to k× too slow. One sample — elapsed
        // since the earliest grant in the batch over the batch's total
        // iterations — measures the worker, not its position in a batch.
        let mut batch_start: Option<u64> = None;
        let mut batch_iters: u64 = 0;
        let mut batch_chunks: u32 = 0;
        for r in results {
            let chunk = r.result.chunk;
            // The grant-time table (not the lease) carries `granted_at`:
            // a slow worker's lease lapses before its result arrives,
            // and those results are exactly the ones that prove it slow.
            if tracked && chunk.len > 0 {
                if let Some(pos) = self.grant_times[worker]
                    .iter()
                    .position(|(j, c, _)| *j == r.job && *c == chunk)
                {
                    let (_, _, at) = self.grant_times[worker].remove(pos);
                    batch_start = Some(batch_start.map_or(at, |s| s.min(at)));
                    batch_iters += chunk.len;
                    batch_chunks += 1;
                }
            }
            if let Some(job) = self.jobs.iter_mut().find(|j| j.id == r.job) {
                let (_, ranges) = job.master.record_completion_ranges(worker, chunk, now);
                // The core master traces grants, dedups and requeues;
                // acceptance is decided here, so the `Completed` event
                // is ours to emit — one per sub-range completed for the
                // *first* time. Job-scoped traces then prove exactly-
                // once by exact partition (no overlap, union covers
                // [0, total)) even when the master was partially seeded
                // from a recovered checkpoint.
                for range in ranges {
                    self.sink.record(
                        TraceEvent::new(now, EventKind::Completed)
                            .on_worker(worker)
                            .on_chunk(range.start, range.len)
                            .on_job(job.id),
                    );
                }
            }
        }
        let batch_sample = batch_start
            .filter(|_| batch_iters > 0)
            .map(|s| now.saturating_sub(s) as f64 / batch_iters as f64);
        if tracked && !results.is_empty() {
            if let Some(s) = batch_sample {
                if batch_iters >= self.cfg.quarantine.min_sample_iters {
                    self.health[worker].observe(s, batch_chunks);
                }
            }
            self.health[worker].last_heard = now;
            self.score_worker(worker, batch_sample, batch_iters, batch_chunks, now);
        }
        self.retire_completed(now)
    }

    fn retire_completed(&mut self, now: u64) -> Vec<u64> {
        let mut completed = Vec::new();
        while let Some(pos) = self.jobs.iter().position(|j| j.master.all_complete()) {
            // Snapshot cross-job progress at the instant of completion,
            // before the job leaves the active set.
            self.snapshots.push(FairSnapshot {
                completed_job: self.jobs[pos].id,
                at_ns: now,
                progress: self
                    .jobs
                    .iter()
                    .map(|j| (j.id, j.priority, j.master.iterations_completed()))
                    .collect(),
            });
            let job = self.jobs.remove(pos);
            self.sink.record(
                TraceEvent::new(now, EventKind::JobCompleted).on_job(job.id),
            );
            self.done.push(JobStatus {
                job: job.id,
                priority: job.priority,
                total: job.master.total(),
                completed: job.master.iterations_completed(),
                state: JobState::Done,
                submitted_ns: job.submitted_ns,
                finished_ns: Some(now),
            });
            completed.push(job.id);
            self.needs_partition = true;
        }
        completed
    }

    /// Scores one worker after a result batch landed. All judgments
    /// run in *elapsed* space — `grant-to-result time` against
    /// `latency_factor × expected compute + comm_slack_ns`, where
    /// expected compute is the pool-median pace times the batch's
    /// iterations. The absolute slack absorbs transport and queuing
    /// jitter that a pure per-iteration ratio would misread as
    /// degradation on small batches.
    ///
    /// Healthy workers accumulate *strikes* on violating batches
    /// (weighted by chunk count, reset by any batch inside the
    /// allowance) and are quarantined at `min_samples` strikes.
    /// Quarantined workers are judged by their canary probe: a
    /// violation is a conclusive fail; a pass is credited only when
    /// the probe's expected compute exceeds the slack — a probe that
    /// fits inside the slack window proves nothing either way.
    fn score_worker(
        &mut self,
        worker: usize,
        fresh_sample: Option<f64>,
        fresh_iters: u64,
        fresh_chunks: u32,
        now: u64,
    ) {
        let policy = self.cfg.quarantine;
        if !policy.enabled {
            return;
        }
        let Some(sample) = fresh_sample else { return };
        let median = self.pool_median(worker);
        let elapsed = sample * fresh_iters as f64;
        let expected = median.unwrap_or(sample) * fresh_iters as f64;
        let slack = policy.comm_slack_ns as f64;
        // With no scoreable peer there is nothing to compare against:
        // never a violation, and a canary passes on the benefit of the
        // doubt (a lone worker must not be locked out forever).
        let violates =
            median.is_some() && elapsed > policy.latency_factor * expected + slack;
        if self.health[worker].quarantined {
            if !self.health[worker].canary_out {
                return;
            }
            let conclusive_pass = median.is_none()
                || (fresh_iters >= policy.min_sample_iters && expected >= slack);
            let h = &mut self.health[worker];
            h.canary_out = false;
            // Pace the probes: a quarantined worker that long-polls
            // would otherwise draw a continuous canary stream and keep
            // stealing CPU from the healthy pool.
            h.canary_after = now.saturating_add(policy.canary_cooldown_ns);
            if violates {
                h.canary_ok = 0;
            } else if conclusive_pass {
                h.canary_ok += 1;
                // Let post-readmission scoring start from the canary's
                // evidence, not the degraded-era EWMA.
                h.ewma_ns = sample;
                h.samples = 1;
                if h.canary_ok >= policy.canary_target {
                    self.readmit(worker, now);
                }
            }
            return;
        }
        let h = &mut self.health[worker];
        if violates {
            // A batch so slow that doubling the entire allowance would
            // still not excuse it is not jitter — don't wait for the
            // strike count. (A slow worker may manage only a couple of
            // round trips before a short run drains.)
            let gross = elapsed > 2.0 * (policy.latency_factor * expected + slack);
            h.strikes = h.strikes.saturating_add(fresh_chunks.max(1));
            if gross || h.strikes >= policy.min_samples {
                self.quarantine(worker, now);
            }
        } else {
            h.strikes = 0;
        }
    }

    /// Median latency EWMA across scored, non-quarantined workers
    /// other than `exclude`; `None` until at least one peer qualifies.
    fn pool_median(&self, exclude: usize) -> Option<f64> {
        let mut peers: Vec<f64> = self
            .health
            .iter()
            .enumerate()
            .filter(|(w, h)| {
                *w != exclude && !h.quarantined && h.samples >= self.cfg.quarantine.min_samples
            })
            .map(|(_, h)| h.ewma_ns)
            .collect();
        if peers.is_empty() {
            return None;
        }
        peers.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        Some(peers[peers.len() / 2])
    }

    /// Pulls a degraded worker out of rotation: every lease it holds is
    /// revoked and its chunk requeued *now* — well before the lease
    /// would lapse — so healthy workers pick the work up immediately
    /// (first-result-wins dedup absorbs any late straggler results).
    /// The worker is then restricted to single-chunk canary probes.
    fn quarantine(&mut self, worker: usize, now: u64) {
        let h = &mut self.health[worker];
        h.quarantined = true;
        h.canary_out = false;
        h.canary_ok = 0;
        h.strikes = 0;
        for job in &mut self.jobs {
            job.master.worker_disconnected(worker);
        }
        // Forget outstanding grant clocks: results for revoked chunks
        // may still dribble in, and none of them is the canary.
        self.grant_times[worker].clear();
        self.sink
            .record(TraceEvent::new(now, EventKind::WorkerQuarantined).on_worker(worker));
    }

    /// Restores a quarantined worker to full rotation after it proved
    /// itself on canary probes.
    fn readmit(&mut self, worker: usize, now: u64) {
        let h = &mut self.health[worker];
        h.quarantined = false;
        h.canary_out = false;
        h.canary_ok = 0;
        h.strikes = 0;
        self.needs_partition = true;
        self.sink
            .record(TraceEvent::new(now, EventKind::WorkerReadmitted).on_worker(worker));
    }

    /// Whether `worker` is currently quarantined.
    pub fn is_quarantined(&self, worker: usize) -> bool {
        worker < self.health.len() && self.health[worker].quarantined
    }

    /// Re-partitions every worker's ACP across the active jobs if the
    /// job set changed or the replan trigger fired.
    fn ensure_partition(&mut self) {
        if !self.needs_partition && !self.trigger.should_replan() {
            return;
        }
        let weights: Vec<u64> = self.jobs.iter().map(|j| u64::from(j.priority)).collect();
        for w in 0..self.cfg.workers {
            self.shares[w] = partition_acp(self.trigger.acp(w), &weights);
        }
        self.trigger.commit();
        self.needs_partition = false;
    }

    /// Active-job indices in deficit order: the job furthest behind its
    /// fair share (lowest `completed / weight`) first.
    fn deficit_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.jobs.len()).collect();
        order.sort_by(|&a, &b| {
            let ja = &self.jobs[a];
            let jb = &self.jobs[b];
            // completed_a / w_a  <  completed_b / w_b, in integers:
            let lhs = u128::from(ja.master.iterations_completed()) * u128::from(jb.priority);
            let rhs = u128::from(jb.master.iterations_completed()) * u128::from(ja.priority);
            lhs.cmp(&rhs).then(ja.id.cmp(&jb.id))
        });
        order
    }

    /// Assembles a batched grant for a requesting worker: observe its
    /// fresh `Q_i`, re-partition if warranted, then walk jobs in
    /// deficit order taking one chunk from each share-eligible job, up
    /// to `k`. An empty result means "retry later" unless no job is
    /// active at all.
    pub fn grants_for(&mut self, worker: usize, q: u32, now: u64) -> Vec<JobGrant> {
        if self.jobs.is_empty() {
            return Vec::new();
        }
        self.health[worker].last_heard = now;
        if self.health[worker].quarantined {
            return self.canary_grant(worker, now);
        }
        let q = q.max(1);
        let power = self.cfg.powers[worker];
        let a_i = self.cfg.acp.acp(power, q);
        self.trigger.observe(worker, a_i.get());
        if !self.worker_seen[worker] {
            // First contact: fold this worker into the partition right
            // away instead of waiting for the >half trigger.
            self.worker_seen[worker] = true;
            self.needs_partition = true;
        }
        self.ensure_partition();

        let order = self.deficit_order();
        let mut grants = Vec::new();
        for &ji in &order {
            if grants.len() >= self.cfg.batch_k {
                break;
            }
            let share = self.shares[worker].get(ji).copied().unwrap_or(0);
            if share == 0 {
                continue;
            }
            let q_eff = effective_q(power, share);
            if let Assignment::Chunk(c) = self.jobs[ji].master.grant_with_lease(worker, q_eff, now)
            {
                grants.push(self.grant(ji, c));
                self.note_grant(worker, self.jobs[ji].id, c, now);
                self.jobs[ji].recovering = false;
            }
        }
        if grants.is_empty() {
            // Share-filtering (or zero shares for an unseen pool state)
            // left nothing: grant one chunk from the most-deficient job
            // that still has work, so no worker ever starves.
            for &ji in &order {
                let share = self.shares[worker].get(ji).copied().unwrap_or(0).max(1);
                let q_eff = effective_q(power, share);
                if let Assignment::Chunk(c) =
                    self.jobs[ji].master.grant_with_lease(worker, q_eff, now)
                {
                    grants.push(self.grant(ji, c));
                    self.note_grant(worker, self.jobs[ji].id, c, now);
                    self.jobs[ji].recovering = false;
                    break;
                }
            }
        }
        self.grants_sent += grants.len() as u64;
        grants
    }

    /// The quarantined-worker path: at most one outstanding probe, a
    /// single regular-share chunk from the most-deficient job. The
    /// chunk must be normal-sized: a minimal probe finishes in one
    /// transport round trip and measures comm, not compute — it could
    /// never conclusively pass (or fail) the latency judgment. If the
    /// probe goes slow, lease lapse plus first-result-wins dedup absorb
    /// it like any other straggler chunk.
    fn canary_grant(&mut self, worker: usize, now: u64) -> Vec<JobGrant> {
        if self.health[worker].canary_out || now < self.health[worker].canary_after {
            return Vec::new();
        }
        self.ensure_partition();
        let power = self.cfg.powers[worker];
        for &ji in &self.deficit_order() {
            let share = self.shares[worker].get(ji).copied().unwrap_or(0).max(1);
            let q_eff = effective_q(power, share);
            if let Assignment::Chunk(c) =
                self.jobs[ji].master.grant_with_lease(worker, q_eff, now)
            {
                self.health[worker].canary_out = true;
                self.grants_sent += 1;
                self.jobs[ji].recovering = false;
                self.note_grant(worker, self.jobs[ji].id, c, now);
                return vec![self.grant(ji, c)];
            }
        }
        Vec::new()
    }

    fn grant(&self, ji: usize, chunk: Chunk) -> JobGrant {
        JobGrant { job: self.jobs[ji].id, workload: self.jobs[ji].workload, chunk }
    }

    /// Remembers when `chunk` was first granted to `worker` for latency
    /// scoring. A retransmit of a held chunk keeps the original grant
    /// time (the clock measures grant-to-result, retries included).
    fn note_grant(&mut self, worker: usize, job: u64, chunk: Chunk, now: u64) {
        let table = &mut self.grant_times[worker];
        if table.iter().any(|(j, c, _)| *j == job && *c == chunk) {
            return;
        }
        // Entries survive job retirement on purpose: a straggler's
        // results often land after healthy workers finished the job,
        // and those late results are exactly the evidence that it is
        // slow. Quarantine clears the table; the cap is a backstop for
        // grants whose results never come back at all.
        if table.len() >= 1024 {
            table.remove(0);
        }
        table.push((job, chunk, now));
    }

    /// Feeds a worker heartbeat to every active job's lease table.
    pub fn heartbeat(&mut self, worker: usize, now: u64) {
        self.health[worker].last_heard = now;
        for job in &mut self.jobs {
            job.master.note_heartbeat(worker, now);
        }
    }

    /// Expires overdue chunk leases in every active job, and
    /// quarantines any previously seen worker that has gone silent
    /// past the policy's heartbeat-gap threshold.
    pub fn poll(&mut self, now: u64) {
        for job in &mut self.jobs {
            job.master.poll_leases(now);
        }
        if self.cfg.quarantine.enabled && !self.jobs.is_empty() {
            let silence = self.cfg.quarantine.silence_ns;
            for w in 0..self.cfg.workers {
                let h = &self.health[w];
                if !h.quarantined
                    && h.last_heard > 0
                    && now.saturating_sub(h.last_heard) > silence
                {
                    self.quarantine(w, now);
                }
            }
        }
    }

    /// A worker's connection died: requeue whatever it held, in every
    /// job. Its grant clocks are dropped — the results they timed died
    /// with the connection — and an outstanding canary probe is
    /// forgotten, otherwise a quarantined worker whose canary was lost
    /// to the disconnect could never be probed again (the probe's
    /// result is the only thing that clears `canary_out`, and it is
    /// never coming). Found by the serve-scheduler interleaving
    /// explorer in `lss-verify`: with every worker latched that way,
    /// the pool deadlocks.
    pub fn worker_disconnected(&mut self, worker: usize) {
        for job in &mut self.jobs {
            job.master.worker_disconnected(worker);
        }
        if worker < self.cfg.workers {
            self.grant_times[worker].clear();
            self.health[worker].canary_out = false;
        }
    }

    /// Job table: active jobs first (live progress), then retired ones.
    /// With `draining` set (the service saw a `Drain`), still-active
    /// jobs report `Draining`; a crash-recovered job reports
    /// `Recovering` until its first post-restart grant.
    pub fn statuses(&self, draining: bool) -> Vec<JobStatus> {
        let mut out: Vec<JobStatus> = self
            .jobs
            .iter()
            .map(|j| JobStatus {
                job: j.id,
                priority: j.priority,
                total: j.master.total(),
                completed: j.master.iterations_completed(),
                state: if j.recovering {
                    JobState::Recovering
                } else if draining {
                    JobState::Draining
                } else {
                    JobState::Active
                },
                submitted_ns: j.submitted_ns,
                finished_ns: None,
            })
            .collect();
        out.extend(self.done.iter().cloned());
        out
    }

    /// Snapshots every active job for a journal checkpoint: admission
    /// facts plus the live completion bitmap.
    pub fn journal_snapshot(&self) -> Vec<crate::journal::JobSnapshot> {
        self.jobs
            .iter()
            .map(|j| crate::journal::JobSnapshot {
                id: j.id,
                spec: JobSpec {
                    workload: j.workload,
                    scheme: j.master.scheme(),
                    priority: j.priority,
                },
                submitted_ns: j.submitted_ns,
                words: j.master.completed_words().to_vec(),
            })
            .collect()
    }

    /// Fairness snapshots captured at each job completion.
    pub fn snapshots(&self) -> &[FairSnapshot] {
        &self.snapshots
    }

    /// Number of partitions committed (the initial one included).
    pub fn replans(&self) -> u32 {
        self.trigger.replans()
    }
}

/// Inverts a share back into the run-queue length that makes a job's
/// master derive `A ≈ share` under [`JOB_ACP_SCALE`].
fn effective_q(power: VirtualPower, share: u32) -> u32 {
    let scaled = f64::from(JOB_ACP_SCALE) * power.get();
    let q = (scaled / f64::from(share.max(1))).round();
    if q < 1.0 {
        1
    } else if q >= f64::from(u32::MAX) {
        u32::MAX
    } else {
        q as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lss_core::master::SchemeKind;

    fn spec(priority: u32, iters: u64) -> JobSpec {
        JobSpec {
            workload: WorkloadSpec::Uniform { iters, cost: 10 },
            scheme: SchemeKind::Dtss,
            priority,
        }
    }

    fn sched(workers: usize, batch_k: usize) -> MultiJobScheduler {
        sched_with_sink(workers, batch_k, SharedSink::disabled())
    }

    fn sched_with_sink(workers: usize, batch_k: usize, sink: SharedSink) -> MultiJobScheduler {
        MultiJobScheduler::new(
            SchedulerConfig {
                workers,
                powers: vec![VirtualPower::new(1.0); workers],
                acp: AcpConfig::new(700, 0),
                lease: lss_core::LeaseConfig::RUNTIME_DEFAULT,
                batch_k,
                // Simulated clocks advance by exact compute time, so
                // there is no transport slack to allow for and no CPU
                // contention for a canary cooldown to relieve.
                quarantine: QuarantineConfig {
                    comm_slack_ns: 0,
                    canary_cooldown_ns: 0,
                    ..QuarantineConfig::default()
                },
            },
            sink,
        )
    }

    /// Drives the scheduler with perfect in-process workers until all
    /// jobs retire; returns the snapshots.
    fn drive(mut s: MultiJobScheduler, workers: usize) -> Vec<FairSnapshot> {
        let mut now = 0u64;
        let mut pending: Vec<Vec<JobChunkResult>> = vec![Vec::new(); workers];
        for _round in 0..100_000 {
            if s.is_idle() {
                return s.snapshots().to_vec();
            }
            for (w, slot) in pending.iter_mut().enumerate() {
                now += 1;
                let results = std::mem::take(slot);
                s.record_results(w, &results, now);
                for g in s.grants_for(w, 1, now) {
                    slot.push(JobChunkResult {
                        job: g.job,
                        result: lss_runtime::protocol::ChunkResult::zeroed(g.chunk),
                    });
                }
            }
        }
        panic!("scheduler did not converge");
    }

    #[test]
    fn single_job_runs_to_completion() {
        let mut s = sched(4, 4);
        s.activate(1, &spec(1, 500), 0);
        let snaps = drive(s, 4);
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].completed_job, 1);
        assert_eq!(snaps[0].progress, vec![(1, 1, 500)]);
    }

    #[test]
    fn fair_share_tracks_priorities() {
        let mut s = sched(8, 4);
        s.activate(1, &spec(1, 8000), 0);
        s.activate(2, &spec(2, 8000), 0);
        s.activate(3, &spec(4, 8000), 0);
        let snaps = drive(s, 8);
        // The priority-4 job finishes first; at that instant the
        // others' progress should track 2:1.
        let first = &snaps[0];
        assert_eq!(first.completed_job, 3, "highest priority retires first");
        let c1 = first.progress.iter().find(|p| p.0 == 1).map(|p| p.2).unwrap_or(0) as f64;
        let c2 = first.progress.iter().find(|p| p.0 == 2).map(|p| p.2).unwrap_or(0) as f64;
        let ratio = c2 / c1;
        assert!(
            (ratio - 2.0).abs() / 2.0 < 0.10,
            "priority 2 vs 1 progress ratio {ratio:.3} strays >10% from 2.0 (c2={c2} c1={c1})"
        );
    }

    #[test]
    fn batch_bound_respected_and_batches_span_jobs() {
        let mut s = sched(2, 2);
        for id in 1..=3 {
            s.activate(id, &spec(1, 1000), 0);
        }
        let grants = s.grants_for(0, 1, 1);
        assert!(!grants.is_empty() && grants.len() <= 2, "got {}", grants.len());
        let mut jobs: Vec<u64> = grants.iter().map(|g| g.job).collect();
        jobs.dedup();
        assert_eq!(jobs.len(), grants.len(), "at most one chunk per job per batch");
    }

    #[test]
    fn results_for_retired_jobs_ignored() {
        let mut s = sched(1, 4);
        s.activate(7, &spec(1, 10), 0);
        let grants = s.grants_for(0, 1, 1);
        assert_eq!(grants.len(), 1);
        let done = s.record_results(
            0,
            &[JobChunkResult {
                job: 7,
                result: lss_runtime::protocol::ChunkResult::zeroed(grants[0].chunk),
            }],
            2,
        );
        // Depending on chunking the job may not be done yet; drain it.
        let _ = done;
        let snaps = drive(s, 1);
        assert_eq!(snaps.last().map(|s| s.completed_job), Some(7));
    }

    fn result(job: u64, chunk: Chunk) -> JobChunkResult {
        JobChunkResult { job, result: lss_runtime::protocol::ChunkResult::zeroed(chunk) }
    }

    #[test]
    fn straggler_is_quarantined_then_readmitted_by_canaries() {
        let mut s = sched(2, 1);
        s.activate(1, &spec(1, 100_000), 0);
        let mut now = 0u64;
        // Healthy worker 0 builds a latency baseline: 10 ns/iteration.
        for _ in 0..4 {
            let g = s.grants_for(0, 1, now);
            assert_eq!(g.len(), 1);
            let c = g[0].chunk;
            now += 10 * c.len;
            s.record_results(0, &[result(1, c)], now);
        }
        // Worker 1 is a 40× straggler: 400 ns/iteration.
        for round in 0..4 {
            if s.is_quarantined(1) {
                break;
            }
            let g = s.grants_for(1, 1, now);
            assert_eq!(g.len(), 1, "round {round}");
            let c = g[0].chunk;
            now += 400 * c.len;
            s.record_results(1, &[result(1, c)], now);
        }
        assert!(s.is_quarantined(1), "straggler must be quarantined");
        // Quarantined: exactly one single-chunk canary outstanding.
        let canary = s.grants_for(1, 1, now);
        assert_eq!(canary.len(), 1, "canary probe expected");
        assert!(s.grants_for(1, 1, now).is_empty(), "one canary at a time");
        // Two healthy canaries in a row earn readmission.
        let c = canary[0].chunk;
        now += 10 * c.len;
        s.record_results(1, &[result(1, c)], now);
        assert!(s.is_quarantined(1), "one healthy canary is not enough");
        let canary = s.grants_for(1, 1, now);
        assert_eq!(canary.len(), 1);
        let c = canary[0].chunk;
        now += 10 * c.len;
        s.record_results(1, &[result(1, c)], now);
        assert!(!s.is_quarantined(1), "healthy canaries readmit the worker");
        assert!(!s.grants_for(1, 1, now).is_empty(), "readmitted worker gets real grants");
    }

    #[test]
    fn silent_worker_is_quarantined_and_its_chunk_regranted_before_lapse() {
        let mut s = MultiJobScheduler::new(
            SchedulerConfig {
                workers: 2,
                powers: vec![VirtualPower::new(1.0); 2],
                acp: AcpConfig::new(700, 0),
                lease: lss_core::LeaseConfig::RUNTIME_DEFAULT,
                batch_k: 1,
                quarantine: QuarantineConfig {
                    silence_ns: 1_000,
                    ..QuarantineConfig::default()
                },
            },
            SharedSink::disabled(),
        );
        s.activate(1, &spec(1, 10_000), 0);
        // Worker 1 takes a grant at t=10 and then goes silent.
        let g = s.grants_for(1, 1, 10);
        assert_eq!(g.len(), 1);
        let held = g[0].chunk;
        // Worker 0 keeps in touch; the poll sees worker 1 silent past
        // the gap threshold — far before its multi-second lease lapses.
        s.heartbeat(0, 1_500);
        s.poll(2_000);
        assert!(s.is_quarantined(1), "silent worker must be quarantined");
        assert!(!s.is_quarantined(0), "live worker must not be");
        // The straggler's chunk was revoked and requeued: worker 0 is
        // handed it on its very next request.
        let g = s.grants_for(0, 1, 2_100);
        assert_eq!(g.len(), 1);
        assert_eq!(g[0].chunk, held, "requeued chunk is re-granted immediately");
        // The healthy worker finishes the job alone; the straggler's
        // eventual duplicate of `held` is absorbed by dedup.
        let mut now = 2_200;
        s.record_results(0, &[result(1, held)], now);
        let mut guard = 0;
        while !s.is_idle() {
            let grants = s.grants_for(0, 1, now);
            let results: Vec<JobChunkResult> =
                grants.iter().map(|g| result(g.job, g.chunk)).collect();
            now += 10;
            s.record_results(0, &results, now);
            guard += 1;
            assert!(guard < 100_000, "job did not finish on the healthy worker");
        }
        let done = s.record_results(1, &[result(1, held)], now + 10);
        assert!(done.is_empty(), "late straggler result lands after retirement");
    }

    #[test]
    fn recovered_job_schedules_only_the_remainder_with_exact_coverage() {
        let sink = SharedSink::bounded(1 << 14);
        let mut s = sched_with_sink(2, 2, sink.clone());
        // 600 of 1000 iterations were journaled complete pre-crash.
        let done = [Chunk::new(0, 500), Chunk::new(700, 100)];
        s.activate_recovered(9, &spec(1, 1000), 0, &done, 5);
        let st = s.statuses(false);
        assert_eq!(st[0].state, JobState::Recovering);
        assert_eq!(st[0].completed, 600);
        let snaps = drive(s, 2);
        assert_eq!(snaps.last().map(|s| s.completed_job), Some(9));
        // RecoveredComplete ∪ Completed must tile [0, 1000) exactly.
        let trace = sink.take(lss_trace::TraceMeta {
            scheme: "test".into(),
            workers: 2,
            total_iterations: 1000,
            clock: lss_trace::ClockDomain::Monotonic,
        });
        let mut covered = vec![0u32; 1000];
        for e in trace.for_job(9) {
            if matches!(e.kind, EventKind::Completed | EventKind::RecoveredComplete) {
                let c = e.chunk.expect("completion events carry a chunk");
                for i in c.start..c.start + c.len {
                    covered[i as usize] += 1;
                }
            }
        }
        assert!(
            covered.iter().all(|&n| n == 1),
            "completion events must tile [0, total) exactly once"
        );
    }

    #[test]
    fn draining_and_recovering_states_are_reported() {
        let mut s = sched(1, 1);
        s.activate(1, &spec(1, 50), 0);
        s.activate_recovered(2, &spec(1, 50), 0, &[], 0);
        let st = s.statuses(true);
        assert_eq!(st[0].state, JobState::Draining);
        assert_eq!(st[1].state, JobState::Recovering);
    }

    #[test]
    fn effective_q_inverts_share() {
        for share in [1u32, 14, 29, 57, 100, 400, 700] {
            let q = effective_q(VirtualPower::new(1.0), share);
            let derived = AcpConfig::new(JOB_ACP_SCALE, 0).acp(VirtualPower::new(1.0), q).get();
            let err = (i64::from(derived) - i64::from(share)).abs();
            assert!(err <= 1, "share {share} -> q {q} -> acp {derived}");
        }
    }
}
