//! Fair-share multiplexing of many jobs over one worker pool.
//!
//! Every active job owns a full [`Master`] — scheme state, chunk
//! leases, dedup bitmap, job-scoped trace sink — so the exactly-once
//! guarantees of the fault-tolerance layer hold *per job* with no new
//! bookkeeping. What this module adds is the layer above: deciding
//! **which jobs** a requesting worker serves and **how much** of the
//! worker's computing power each one sees.
//!
//! The mechanism is the paper's ACP model, partitioned. A request from
//! worker `i` carries its run-queue length `Q_i`; the scheduler derives
//! `A_i = ⌊scale · V_i / Q_i⌋` and splits it across active jobs in
//! proportion to priority weights ([`partition_acp`]). Job `j`'s share
//! `s_j` is handed to its master as an *effective run-queue length*
//! `q_eff = round(scale_job · V_i / s_j)`, so the job's own ACP
//! derivation lands on `s_j` — ACP-adaptive schemes (DTSS, DFSS, …)
//! then size chunks proportionally to the share without knowing other
//! jobs exist. Shares are recomputed on the DTSS replan trigger
//! ([`ReplanTrigger`]: more than half the `A_i` changed) and whenever
//! the active-job set changes.
//!
//! Batch assembly walks jobs in *deficit order* (lowest
//! `completed / weight` first — the job furthest behind its fair share)
//! and takes at most one chunk per job (a worker holds at most one
//! lease per master), up to the batch bound `k`. If share-filtering
//! leaves nothing grantable, a fallback grant from the most-deficient
//! job keeps every worker progressing.

use lss_core::master::{Assignment, Master, MasterConfig};
use lss_core::power::{AcpConfig, VirtualPower};
use lss_core::share::{partition_acp, ReplanTrigger};
use lss_core::Chunk;
use lss_runtime::protocol::serve::{
    JobChunkResult, JobGrant, JobSpec, JobState, JobStatus, WorkloadSpec,
};
use lss_trace::{EventKind, JobScopedSink, SharedSink, TraceEvent};

/// ACP scale used *inside* each job's master. The round trip
/// `q_eff = round(scale_job · V / s)` then `A = ⌊scale_job · V / q_eff⌋`
/// loses about `s² / (2 · scale_job)` units, so the scale must dwarf
/// the square of any pool-level share. Pool shares live in the
/// hundreds (pool scale ~1000), making the loss at most one unit here.
pub const JOB_ACP_SCALE: u32 = 1_000_000;

/// Static configuration of the multi-job scheduler.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Size of the worker pool.
    pub workers: usize,
    /// Virtual power of each worker.
    pub powers: Vec<VirtualPower>,
    /// ACP derivation rule for the *pool-level* `A_i` that gets
    /// partitioned. A larger scale gives finer fair-share granularity.
    pub acp: AcpConfig,
    /// Chunk-lease parameters applied to every job's master.
    pub lease: lss_core::LeaseConfig,
    /// Maximum grants per batch (`k`): one round trip delivers up to
    /// `k` chunks, one per job.
    pub batch_k: usize,
}

/// One job being actively scheduled.
struct ActiveJob {
    id: u64,
    priority: u32,
    workload: WorkloadSpec,
    master: Master,
    submitted_ns: u64,
}

/// Cross-job progress captured at the instant a job completes — the
/// raw material for fairness verification: while jobs compete, their
/// completed iterations should track their priority weights.
#[derive(Debug, Clone)]
pub struct FairSnapshot {
    /// The job that just completed.
    pub completed_job: u64,
    /// When (service-epoch nanoseconds).
    pub at_ns: u64,
    /// `(job, priority, iterations_completed)` for every job active at
    /// that instant, the completed one included.
    pub progress: Vec<(u64, u32, u64)>,
}

/// The fair-share multiplexer: per-job masters plus the partition
/// machinery.
pub struct MultiJobScheduler {
    cfg: SchedulerConfig,
    jobs: Vec<ActiveJob>,
    done: Vec<JobStatus>,
    trigger: ReplanTrigger,
    /// Committed share of each worker's ACP per active job
    /// (`shares[worker][job_index]`), recomputed on the replan trigger
    /// or when the job set changes.
    shares: Vec<Vec<u32>>,
    needs_partition: bool,
    worker_seen: Vec<bool>,
    sink: SharedSink,
    snapshots: Vec<FairSnapshot>,
    grants_sent: u64,
}

impl MultiJobScheduler {
    /// A scheduler with no jobs yet. `sink` is shared with the service
    /// so every job's events land in one stream (job-tagged).
    pub fn new(cfg: SchedulerConfig, sink: SharedSink) -> Self {
        assert!(cfg.workers >= 1, "need at least one worker");
        assert_eq!(cfg.powers.len(), cfg.workers, "one power per worker");
        assert!(cfg.batch_k >= 1, "batch bound must be at least 1");
        let workers = cfg.workers;
        MultiJobScheduler {
            cfg,
            jobs: Vec::new(),
            done: Vec::new(),
            trigger: ReplanTrigger::new(workers),
            shares: vec![Vec::new(); workers],
            needs_partition: false,
            worker_seen: vec![false; workers],
            sink,
            snapshots: Vec::new(),
            grants_sent: 0,
        }
    }

    /// Number of jobs currently being scheduled.
    pub fn active_len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether no job is active.
    pub fn is_idle(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Total batched grants handed out so far.
    pub fn grants_sent(&self) -> u64 {
        self.grants_sent
    }

    /// Promotes a job to active: builds its master (scheme state +
    /// leases + dedup) with a job-scoped trace sink.
    pub fn activate(&mut self, id: u64, spec: &JobSpec, submitted_ns: u64) {
        let total = spec.workload.len();
        let mut master = Master::new(MasterConfig {
            scheme: spec.scheme,
            total,
            powers: self.cfg.powers.clone(),
            initial_q: vec![1; self.cfg.workers],
            acp: AcpConfig::new(JOB_ACP_SCALE, self.cfg.acp.a_min),
        });
        master.set_lease_config(self.cfg.lease);
        master.set_trace_sink(Box::new(JobScopedSink::new(id, self.sink.clone())));
        self.jobs.push(ActiveJob {
            id,
            priority: spec.priority.max(1),
            workload: spec.workload,
            master,
            submitted_ns,
        });
        self.needs_partition = true;
    }

    /// Records a worker's piggy-backed results. Completed jobs are
    /// retired (with a fairness snapshot and a `JobCompleted` trace
    /// event) and their ids returned. Results for unknown or already
    /// retired jobs are ignored — late duplicates, not errors.
    pub fn record_results(
        &mut self,
        worker: usize,
        results: &[JobChunkResult],
        now: u64,
    ) -> Vec<u64> {
        for r in results {
            if let Some(job) = self.jobs.iter_mut().find(|j| j.id == r.job) {
                let chunk = r.result.chunk;
                let outcome = job.master.record_completion(worker, chunk, now);
                // The core master traces grants, dedups and requeues;
                // acceptance is decided here, so the `Completed` event
                // is ours to emit. Only first-time-complete chunks get
                // one — job-scoped traces then prove exactly-once by
                // exact partition: no overlap, union = [0, total).
                if outcome.newly_completed == chunk.len {
                    self.sink.record(
                        TraceEvent::new(now, EventKind::Completed)
                            .on_worker(worker)
                            .on_chunk(chunk.start, chunk.len)
                            .on_job(job.id),
                    );
                }
            }
        }
        self.retire_completed(now)
    }

    fn retire_completed(&mut self, now: u64) -> Vec<u64> {
        let mut completed = Vec::new();
        while let Some(pos) = self.jobs.iter().position(|j| j.master.all_complete()) {
            // Snapshot cross-job progress at the instant of completion,
            // before the job leaves the active set.
            self.snapshots.push(FairSnapshot {
                completed_job: self.jobs[pos].id,
                at_ns: now,
                progress: self
                    .jobs
                    .iter()
                    .map(|j| (j.id, j.priority, j.master.iterations_completed()))
                    .collect(),
            });
            let job = self.jobs.remove(pos);
            self.sink.record(
                TraceEvent::new(now, EventKind::JobCompleted).on_job(job.id),
            );
            self.done.push(JobStatus {
                job: job.id,
                priority: job.priority,
                total: job.master.total(),
                completed: job.master.iterations_completed(),
                state: JobState::Done,
                submitted_ns: job.submitted_ns,
                finished_ns: Some(now),
            });
            completed.push(job.id);
            self.needs_partition = true;
        }
        completed
    }

    /// Re-partitions every worker's ACP across the active jobs if the
    /// job set changed or the replan trigger fired.
    fn ensure_partition(&mut self) {
        if !self.needs_partition && !self.trigger.should_replan() {
            return;
        }
        let weights: Vec<u64> = self.jobs.iter().map(|j| u64::from(j.priority)).collect();
        for w in 0..self.cfg.workers {
            self.shares[w] = partition_acp(self.trigger.acp(w), &weights);
        }
        self.trigger.commit();
        self.needs_partition = false;
    }

    /// Active-job indices in deficit order: the job furthest behind its
    /// fair share (lowest `completed / weight`) first.
    fn deficit_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.jobs.len()).collect();
        order.sort_by(|&a, &b| {
            let ja = &self.jobs[a];
            let jb = &self.jobs[b];
            // completed_a / w_a  <  completed_b / w_b, in integers:
            let lhs = u128::from(ja.master.iterations_completed()) * u128::from(jb.priority);
            let rhs = u128::from(jb.master.iterations_completed()) * u128::from(ja.priority);
            lhs.cmp(&rhs).then(ja.id.cmp(&jb.id))
        });
        order
    }

    /// Assembles a batched grant for a requesting worker: observe its
    /// fresh `Q_i`, re-partition if warranted, then walk jobs in
    /// deficit order taking one chunk from each share-eligible job, up
    /// to `k`. An empty result means "retry later" unless no job is
    /// active at all.
    pub fn grants_for(&mut self, worker: usize, q: u32, now: u64) -> Vec<JobGrant> {
        if self.jobs.is_empty() {
            return Vec::new();
        }
        let q = q.max(1);
        let power = self.cfg.powers[worker];
        let a_i = self.cfg.acp.acp(power, q);
        self.trigger.observe(worker, a_i.get());
        if !self.worker_seen[worker] {
            // First contact: fold this worker into the partition right
            // away instead of waiting for the >half trigger.
            self.worker_seen[worker] = true;
            self.needs_partition = true;
        }
        self.ensure_partition();

        let order = self.deficit_order();
        let mut grants = Vec::new();
        for &ji in &order {
            if grants.len() >= self.cfg.batch_k {
                break;
            }
            let share = self.shares[worker].get(ji).copied().unwrap_or(0);
            if share == 0 {
                continue;
            }
            let q_eff = effective_q(power, share);
            if let Assignment::Chunk(c) = self.jobs[ji].master.grant_with_lease(worker, q_eff, now)
            {
                grants.push(self.grant(ji, c));
            }
        }
        if grants.is_empty() {
            // Share-filtering (or zero shares for an unseen pool state)
            // left nothing: grant one chunk from the most-deficient job
            // that still has work, so no worker ever starves.
            for &ji in &order {
                let share = self.shares[worker].get(ji).copied().unwrap_or(0).max(1);
                let q_eff = effective_q(power, share);
                if let Assignment::Chunk(c) =
                    self.jobs[ji].master.grant_with_lease(worker, q_eff, now)
                {
                    grants.push(self.grant(ji, c));
                    break;
                }
            }
        }
        self.grants_sent += grants.len() as u64;
        grants
    }

    fn grant(&self, ji: usize, chunk: Chunk) -> JobGrant {
        JobGrant { job: self.jobs[ji].id, workload: self.jobs[ji].workload, chunk }
    }

    /// Feeds a worker heartbeat to every active job's lease table.
    pub fn heartbeat(&mut self, worker: usize, now: u64) {
        for job in &mut self.jobs {
            job.master.note_heartbeat(worker, now);
        }
    }

    /// Expires overdue chunk leases in every active job.
    pub fn poll(&mut self, now: u64) {
        for job in &mut self.jobs {
            job.master.poll_leases(now);
        }
    }

    /// A worker's connection died: requeue whatever it held, in every
    /// job.
    pub fn worker_disconnected(&mut self, worker: usize) {
        for job in &mut self.jobs {
            job.master.worker_disconnected(worker);
        }
    }

    /// Job table: active jobs first (live progress), then retired ones.
    pub fn statuses(&self) -> Vec<JobStatus> {
        let mut out: Vec<JobStatus> = self
            .jobs
            .iter()
            .map(|j| JobStatus {
                job: j.id,
                priority: j.priority,
                total: j.master.total(),
                completed: j.master.iterations_completed(),
                state: JobState::Active,
                submitted_ns: j.submitted_ns,
                finished_ns: None,
            })
            .collect();
        out.extend(self.done.iter().cloned());
        out
    }

    /// Fairness snapshots captured at each job completion.
    pub fn snapshots(&self) -> &[FairSnapshot] {
        &self.snapshots
    }

    /// Number of partitions committed (the initial one included).
    pub fn replans(&self) -> u32 {
        self.trigger.replans()
    }
}

/// Inverts a share back into the run-queue length that makes a job's
/// master derive `A ≈ share` under [`JOB_ACP_SCALE`].
fn effective_q(power: VirtualPower, share: u32) -> u32 {
    let scaled = f64::from(JOB_ACP_SCALE) * power.get();
    let q = (scaled / f64::from(share.max(1))).round();
    if q < 1.0 {
        1
    } else if q >= f64::from(u32::MAX) {
        u32::MAX
    } else {
        q as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lss_core::master::SchemeKind;

    fn spec(priority: u32, iters: u64) -> JobSpec {
        JobSpec {
            workload: WorkloadSpec::Uniform { iters, cost: 10 },
            scheme: SchemeKind::Dtss,
            priority,
        }
    }

    fn sched(workers: usize, batch_k: usize) -> MultiJobScheduler {
        MultiJobScheduler::new(
            SchedulerConfig {
                workers,
                powers: vec![VirtualPower::new(1.0); workers],
                acp: AcpConfig::new(700, 0),
                lease: lss_core::LeaseConfig::RUNTIME_DEFAULT,
                batch_k,
            },
            SharedSink::disabled(),
        )
    }

    /// Drives the scheduler with perfect in-process workers until all
    /// jobs retire; returns the snapshots.
    fn drive(mut s: MultiJobScheduler, workers: usize) -> Vec<FairSnapshot> {
        let mut now = 0u64;
        let mut pending: Vec<Vec<JobChunkResult>> = vec![Vec::new(); workers];
        for _round in 0..100_000 {
            if s.is_idle() {
                return s.snapshots().to_vec();
            }
            for (w, slot) in pending.iter_mut().enumerate() {
                now += 1;
                let results = std::mem::take(slot);
                s.record_results(w, &results, now);
                for g in s.grants_for(w, 1, now) {
                    slot.push(JobChunkResult {
                        job: g.job,
                        result: lss_runtime::protocol::ChunkResult::zeroed(g.chunk),
                    });
                }
            }
        }
        panic!("scheduler did not converge");
    }

    #[test]
    fn single_job_runs_to_completion() {
        let mut s = sched(4, 4);
        s.activate(1, &spec(1, 500), 0);
        let snaps = drive(s, 4);
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].completed_job, 1);
        assert_eq!(snaps[0].progress, vec![(1, 1, 500)]);
    }

    #[test]
    fn fair_share_tracks_priorities() {
        let mut s = sched(8, 4);
        s.activate(1, &spec(1, 8000), 0);
        s.activate(2, &spec(2, 8000), 0);
        s.activate(3, &spec(4, 8000), 0);
        let snaps = drive(s, 8);
        // The priority-4 job finishes first; at that instant the
        // others' progress should track 2:1.
        let first = &snaps[0];
        assert_eq!(first.completed_job, 3, "highest priority retires first");
        let c1 = first.progress.iter().find(|p| p.0 == 1).map(|p| p.2).unwrap_or(0) as f64;
        let c2 = first.progress.iter().find(|p| p.0 == 2).map(|p| p.2).unwrap_or(0) as f64;
        let ratio = c2 / c1;
        assert!(
            (ratio - 2.0).abs() / 2.0 < 0.10,
            "priority 2 vs 1 progress ratio {ratio:.3} strays >10% from 2.0 (c2={c2} c1={c1})"
        );
    }

    #[test]
    fn batch_bound_respected_and_batches_span_jobs() {
        let mut s = sched(2, 2);
        for id in 1..=3 {
            s.activate(id, &spec(1, 1000), 0);
        }
        let grants = s.grants_for(0, 1, 1);
        assert!(!grants.is_empty() && grants.len() <= 2, "got {}", grants.len());
        let mut jobs: Vec<u64> = grants.iter().map(|g| g.job).collect();
        jobs.dedup();
        assert_eq!(jobs.len(), grants.len(), "at most one chunk per job per batch");
    }

    #[test]
    fn results_for_retired_jobs_ignored() {
        let mut s = sched(1, 4);
        s.activate(7, &spec(1, 10), 0);
        let grants = s.grants_for(0, 1, 1);
        assert_eq!(grants.len(), 1);
        let done = s.record_results(
            0,
            &[JobChunkResult {
                job: 7,
                result: lss_runtime::protocol::ChunkResult::zeroed(grants[0].chunk),
            }],
            2,
        );
        // Depending on chunking the job may not be done yet; drain it.
        let _ = done;
        let snaps = drive(s, 1);
        assert_eq!(snaps.last().map(|s| s.completed_job), Some(7));
    }

    #[test]
    fn effective_q_inverts_share() {
        for share in [1u32, 14, 29, 57, 100, 400, 700] {
            let q = effective_q(VirtualPower::new(1.0), share);
            let derived = AcpConfig::new(JOB_ACP_SCALE, 0).acp(VirtualPower::new(1.0), q).get();
            let err = (i64::from(derived) - i64::from(share)).abs();
            assert!(err <= 1, "share {share} -> q {q} -> acp {derived}");
        }
    }
}
