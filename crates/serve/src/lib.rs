//! # lss-serve — a multi-job scheduling service for heterogeneous clusters
//!
//! The one-shot master of `lss-runtime` schedules exactly one loop and
//! exits. This crate turns it into a long-running **scheduler daemon**:
//! clients submit loop jobs over the TCP transport (or in-process), the
//! service keeps them in a bounded priority queue with admission
//! control, and drives many jobs *concurrently* over one worker pool.
//!
//! Three ideas, all extensions of the paper's §5 machinery:
//!
//! - **Fair-share ACP partitioning** — each worker still derives a
//!   single available computing power `A_i = ⌊scale · V_i / Q_i⌋`; the
//!   service splits it across the active jobs in proportion to their
//!   priority weights ([`lss_core::share::partition_acp`]), and
//!   re-partitions on the DTSS replan trigger (more than half the
//!   `A_i` changed — [`lss_core::share::ReplanTrigger`]). A job's
//!   share is fed back into its scheduler as an *effective run-queue
//!   length*, so ACP-adaptive schemes (DTSS, DFSS, …) size their
//!   chunks proportionally to the share.
//! - **Batched grants** — one round trip delivers up to `k` chunks per
//!   worker, one per active job
//!   ([`lss_runtime::protocol::serve::ServeFrame::Grants`]), amortizing
//!   `T_com` across jobs; results ride back piggy-backed and
//!   job-tagged the same way.
//! - **Per-job exactly-once** — every active job owns its own
//!   [`lss_core::Master`], so the chunk-lease table and first-result-
//!   wins dedup bitmap introduced for fault tolerance hold *per job*;
//!   each master traces through a [`lss_trace::JobScopedSink`] so
//!   every event carries its `job` id.
//!
//! Admission control is typed: a full queue (or a draining service)
//! answers `Rejected { reason }`, never a dropped connection. The wire
//! protocol is versioned (magic byte + version byte), so a legacy
//! worker dialing a serve master — or vice versa — fails with a typed
//! error instead of a deserialization panic.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
mod evented;
pub mod journal;
pub mod link;
pub mod queue;
pub mod scheduler;
pub mod service;
pub mod worker;

use lss_runtime::protocol::serve::WorkloadSpec;
use lss_workloads::{Mandelbrot, MandelbrotParams, SampledWorkload, UniformLoop, Workload};

pub use client::{ServeClient, ServeError};
pub use journal::{Journal, JournalConfig, JobSnapshot, RecoveredState};
pub use link::{LocalLink, ServeLink, TcpLink, DEFAULT_DEADLINE};
pub use queue::{JobQueue, QueuedJob};
pub use scheduler::{FairSnapshot, MultiJobScheduler, QuarantineConfig, SchedulerConfig};
pub use service::{
    serve, serve_tcp, serve_tcp_with, ServeBackend, ServeConfig, ServeHandle, ServeReport,
};
pub use worker::{run_serve_worker, ServeWorkerConfig, ServeWorkerStats};

/// Materializes the workload a [`WorkloadSpec`] describes. Both the
/// service (for loop sizes) and the workers (for execution) build from
/// the same spec, so a job's identity travels in a few bytes.
pub fn instantiate(spec: &WorkloadSpec) -> Box<dyn Workload> {
    match *spec {
        WorkloadSpec::Uniform { iters, cost } => Box::new(UniformLoop::new(iters, cost)),
        WorkloadSpec::Mandelbrot { width, height, sf } => Box::new(SampledWorkload::new(
            Mandelbrot::new(MandelbrotParams::paper_domain(width, height)),
            sf,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instantiate_matches_spec_len() {
        let u = instantiate(&WorkloadSpec::Uniform { iters: 64, cost: 5 });
        assert_eq!(u.len(), 64);
        let m = instantiate(&WorkloadSpec::Mandelbrot { width: 40, height: 30, sf: 4 });
        assert_eq!(m.len(), 40);
    }
}
