//! Durable job journal: a write-ahead log plus compacted checkpoints,
//! so the serve daemon survives its own death.
//!
//! The daemon's scheduling state is rebuildable from three facts per
//! job: that it was admitted (id, spec, submission time), which
//! iterations have completed, and whether it finished. The journal
//! records exactly those, append-only, in `journal.log` inside the
//! journal directory:
//!
//! ```text
//! [ u32 payload len | payload | u32 CRC-32 of payload ]
//! payload = tag (1 admit | 2 complete | 3 finish) + big-endian fields
//! ```
//!
//! The length prefix plus trailing CRC make torn tails — the record a
//! SIGKILL cut in half — detectable: replay stops at the first record
//! that fails either check and ignores the rest. Every append is
//! written straight to the file descriptor (no userspace buffering),
//! so anything `append_*` returned `Ok` for survives process death.
//!
//! Unbounded logs would make recovery cost proportional to history,
//! not state, so the journal periodically **compacts**: it writes the
//! full surviving state (open jobs + their completion bitmaps) to
//! `checkpoint.tmp`, renames it over `checkpoint.bin` (atomic on
//! POSIX), and truncates the log. Recovery is therefore checkpoint +
//! log-suffix replay, and replaying any prefix of the log is
//! idempotent: admits of already-known ids and completions of
//! already-set bits are no-ops, which is what makes the
//! crash-between-checkpoint-and-truncate window safe.
//!
//! Job specs travel inside the journal as encoded
//! [`ServeFrame::Submit`] frames — the same versioned encoding the
//! wire uses — so the journal format never forks from the protocol.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, Write};
use std::path::{Path, PathBuf};

use lss_core::Chunk;
use lss_runtime::protocol::serve::{JobSpec, ServeFrame};

/// Checkpoint file magic + format version.
const CHECKPOINT_MAGIC: &[u8; 4] = b"LSSC";
const CHECKPOINT_VERSION: u32 = 1;

/// Journal record tags.
const TAG_ADMIT: u8 = 1;
const TAG_COMPLETE: u8 = 2;
const TAG_FINISH: u8 = 3;

/// How the journal is attached to a service.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Directory holding `journal.log` and `checkpoint.bin` (created
    /// if absent).
    pub dir: PathBuf,
    /// Replay any state found in the directory and re-admit unfinished
    /// jobs. When `false`, stale state is discarded and the journal
    /// starts empty.
    pub recover: bool,
    /// Completion records appended between automatic compactions.
    pub checkpoint_every: u64,
}

impl JournalConfig {
    /// A journal in `dir` that starts fresh (discarding stale state).
    pub fn fresh(dir: impl Into<PathBuf>) -> Self {
        JournalConfig { dir: dir.into(), recover: false, checkpoint_every: 256 }
    }

    /// A journal in `dir` that recovers whatever a previous daemon
    /// left behind.
    pub fn recover(dir: impl Into<PathBuf>) -> Self {
        JournalConfig { dir: dir.into(), recover: true, checkpoint_every: 256 }
    }
}

/// One job as the journal knows it: the admission facts plus the
/// completion bitmap. Doubles as the unit of a checkpoint snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSnapshot {
    /// Service-assigned id.
    pub id: u64,
    /// The submitted spec (workload, scheme, priority).
    pub spec: JobSpec,
    /// Submission time, service-epoch nanoseconds.
    pub submitted_ns: u64,
    /// Completion bitmap, bit `i % 64` of word `i / 64` set when
    /// iteration `i` completed. Always `ceil(total / 64)` words.
    pub words: Vec<u64>,
}

impl JobSnapshot {
    /// A snapshot with nothing completed (a queued job).
    pub fn empty(id: u64, spec: JobSpec, submitted_ns: u64) -> Self {
        let words = vec![0u64; spec.workload.len().div_ceil(64) as usize];
        JobSnapshot { id, spec, submitted_ns, words }
    }

    /// Total loop size.
    pub fn total(&self) -> u64 {
        self.spec.workload.len()
    }

    /// Iterations marked complete.
    pub fn completed_count(&self) -> u64 {
        let total = self.total();
        self.words
            .iter()
            .enumerate()
            .map(|(w, bits)| {
                // Mask tail bits beyond `total` defensively.
                let hi = total.saturating_sub(w as u64 * 64).min(64);
                let mask = if hi >= 64 { u64::MAX } else { (1u64 << hi) - 1 };
                u64::from((bits & mask).count_ones())
            })
            .sum()
    }

    /// Whether every iteration completed (the job only awaited its
    /// finish record when the daemon died).
    pub fn is_complete(&self) -> bool {
        self.completed_count() == self.total()
    }

    /// The maximal runs of completed iterations, as chunks — what a
    /// recovered master is seeded with.
    pub fn completed_ranges(&self) -> Vec<Chunk> {
        let mut out = Vec::new();
        let total = self.total();
        let mut run_start: Option<u64> = None;
        for i in 0..total {
            let set = self
                .words
                .get((i / 64) as usize)
                .is_some_and(|w| w & (1u64 << (i % 64)) != 0);
            match (set, run_start) {
                (true, None) => run_start = Some(i),
                (false, Some(s)) => {
                    out.push(Chunk::new(s, i - s));
                    run_start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = run_start {
            out.push(Chunk::new(s, total - s));
        }
        out
    }

    /// Sets the bits covered by `chunk` (clamped to the loop bounds).
    fn mark(&mut self, chunk: Chunk) {
        let end = chunk.end().min(self.total());
        for i in chunk.start..end {
            if let Some(w) = self.words.get_mut((i / 64) as usize) {
                *w |= 1u64 << (i % 64);
            }
        }
    }
}

/// Everything a journal replay reconstructs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveredState {
    /// The next job id the daemon may assign — strictly greater than
    /// every id it ever admitted, finished jobs included.
    pub next_job: u64,
    /// Unfinished jobs, ascending by id.
    pub jobs: Vec<JobSnapshot>,
}

/// The journal handle a running service appends to.
pub struct Journal {
    log: File,
    dir: PathBuf,
    checkpoint_every: u64,
    appended_since_checkpoint: u64,
}

impl Journal {
    /// Opens (creating if needed) the journal in `cfg.dir`. With
    /// `cfg.recover` the surviving state is replayed and returned;
    /// otherwise stale files are discarded and the state is empty.
    /// Either way the directory is immediately compacted — checkpoint
    /// written, log truncated — so recovery cost stays proportional to
    /// state, not crash history.
    pub fn open(cfg: &JournalConfig) -> io::Result<(Journal, RecoveredState)> {
        std::fs::create_dir_all(&cfg.dir)?;
        let state = if cfg.recover {
            let checkpoint = read_optional(&cfg.dir.join("checkpoint.bin"))?;
            let log = read_optional(&cfg.dir.join("journal.log"))?;
            replay(checkpoint.as_deref(), log.as_deref().unwrap_or(&[]))
        } else {
            RecoveredState { next_job: 1, jobs: Vec::new() }
        };
        let log = OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(cfg.dir.join("journal.log"))?;
        let mut journal = Journal {
            log,
            dir: cfg.dir.clone(),
            checkpoint_every: cfg.checkpoint_every.max(1),
            appended_since_checkpoint: 0,
        };
        journal.checkpoint(&state)?;
        Ok((journal, state))
    }

    /// Journals a job admission. Must return `Ok` before the service
    /// acknowledges the submission — write-ahead, not write-behind.
    pub fn append_admit(&mut self, id: u64, submitted_ns: u64, spec: &JobSpec) -> io::Result<()> {
        self.append(&encode_admit(id, submitted_ns, spec))
    }

    /// Journals a completed chunk (as reported; duplicate or partially
    /// overlapping reports are harmless — replay ORs bits).
    pub fn append_complete(&mut self, job: u64, chunk: Chunk) -> io::Result<()> {
        self.appended_since_checkpoint += 1;
        self.append(&encode_complete(job, chunk))
    }

    /// Journals a job's retirement.
    pub fn append_finish(&mut self, job: u64) -> io::Result<()> {
        self.append(&encode_finish(job))
    }

    /// Whether enough completions accumulated that the caller should
    /// snapshot its state and [`Journal::checkpoint`].
    pub fn checkpoint_due(&self) -> bool {
        self.appended_since_checkpoint >= self.checkpoint_every
    }

    /// Writes a compacted checkpoint of `state` (atomically, via
    /// tmp + rename) and truncates the log. On return the directory's
    /// recovery cost is proportional to `state`, not to history.
    pub fn checkpoint(&mut self, state: &RecoveredState) -> io::Result<()> {
        let body = encode_checkpoint(state);
        let tmp = self.dir.join("checkpoint.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&body)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, self.dir.join("checkpoint.bin"))?;
        // Crash window here is safe: the log still holds records the
        // checkpoint already folded in, and replay is idempotent.
        self.log.set_len(0)?;
        self.log.seek(io::SeekFrom::Start(0))?;
        self.appended_since_checkpoint = 0;
        Ok(())
    }

    fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        // One write_all on an unbuffered descriptor: everything this
        // returned Ok for survives SIGKILL (torn tails are caught by
        // the length/CRC envelope at replay).
        self.log.write_all(&frame_record(payload))
    }
}

/// Encodes an admission record payload: the pure half of
/// [`Journal::append_admit`]. Exposed so analysis passes (the
/// crash-point enumerator in `lss-verify`) can synthesize byte-exact
/// journal histories without touching a filesystem.
pub fn encode_admit(id: u64, submitted_ns: u64, spec: &JobSpec) -> Vec<u8> {
    let mut payload = vec![TAG_ADMIT];
    payload.extend_from_slice(&id.to_be_bytes());
    payload.extend_from_slice(&submitted_ns.to_be_bytes());
    let frame = ServeFrame::Submit(spec.clone()).encode();
    payload.extend_from_slice(&(frame.len() as u32).to_be_bytes());
    payload.extend_from_slice(&frame);
    payload
}

/// Encodes a completion record payload: the pure half of
/// [`Journal::append_complete`].
pub fn encode_complete(job: u64, chunk: Chunk) -> Vec<u8> {
    let mut payload = vec![TAG_COMPLETE];
    payload.extend_from_slice(&job.to_be_bytes());
    payload.extend_from_slice(&chunk.start.to_be_bytes());
    payload.extend_from_slice(&chunk.len.to_be_bytes());
    payload
}

/// Encodes a finish record payload: the pure half of
/// [`Journal::append_finish`].
pub fn encode_finish(job: u64) -> Vec<u8> {
    let mut payload = vec![TAG_FINISH];
    payload.extend_from_slice(&job.to_be_bytes());
    payload
}

/// Wraps a record payload in the on-disk envelope
/// `[u32 len | payload | u32 CRC-32]` — byte-identical to what
/// [`Journal`] appends.
pub fn frame_record(payload: &[u8]) -> Vec<u8> {
    let mut record = Vec::with_capacity(payload.len() + 8);
    record.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    record.extend_from_slice(payload);
    record.extend_from_slice(&crc32(payload).to_be_bytes());
    record
}

/// Rebuilds state from a checkpoint image plus a log suffix. Tolerant
/// by construction: an unreadable checkpoint counts as empty, replay
/// stops at the first torn or corrupt log record, and applying any
/// *prefix* of a log on top of any checkpoint it extends is idempotent
/// — admits dedup on id, completions OR bits, finishes remove at most
/// once.
pub fn replay(checkpoint: Option<&[u8]>, log: &[u8]) -> RecoveredState {
    let mut state = checkpoint
        .and_then(decode_checkpoint)
        .unwrap_or(RecoveredState { next_job: 1, jobs: Vec::new() });
    let mut buf = log;
    while let Some(payload) = next_record(&mut buf) {
        apply(&mut state, &payload);
    }
    state.jobs.sort_by_key(|j| j.id);
    state
}

/// Extracts the next valid record's payload, or `None` at the torn
/// tail / end of log.
fn next_record(buf: &mut &[u8]) -> Option<Vec<u8>> {
    if buf.len() < 4 {
        return None;
    }
    let len = u32::from_be_bytes(buf[..4].try_into().ok()?) as usize;
    if buf.len() < 4 + len + 4 {
        return None; // torn tail: length prefix outruns the file
    }
    let payload = &buf[4..4 + len];
    let crc = u32::from_be_bytes(buf[4 + len..4 + len + 4].try_into().ok()?);
    if crc32(payload) != crc {
        return None; // corrupt record: stop replay here
    }
    let out = payload.to_vec();
    *buf = &buf[4 + len + 4..];
    Some(out)
}

fn apply(state: &mut RecoveredState, payload: &[u8]) {
    let Some((&tag, mut rest)) = payload.split_first() else { return };
    match tag {
        TAG_ADMIT => {
            let Some(id) = take_u64(&mut rest) else { return };
            let Some(submitted_ns) = take_u64(&mut rest) else { return };
            let Some(frame_len) = take_u32(&mut rest) else { return };
            if rest.len() < frame_len as usize {
                return;
            }
            let Ok(ServeFrame::Submit(spec)) = ServeFrame::decode(&rest[..frame_len as usize])
            else {
                return;
            };
            // Ids below next_job were already folded into the
            // checkpoint (or finished): ignore, never double-admit.
            if id >= state.next_job {
                state.next_job = id + 1;
                state.jobs.push(JobSnapshot::empty(id, spec, submitted_ns));
            }
        }
        TAG_COMPLETE => {
            let Some(job) = take_u64(&mut rest) else { return };
            let Some(start) = take_u64(&mut rest) else { return };
            let Some(len) = take_u64(&mut rest) else { return };
            if let Some(j) = state.jobs.iter_mut().find(|j| j.id == job) {
                j.mark(Chunk::new(start, len));
            }
        }
        TAG_FINISH => {
            let Some(job) = take_u64(&mut rest) else { return };
            state.jobs.retain(|j| j.id != job);
        }
        _ => {}
    }
}

/// Serializes a checkpoint image (magic + version + jobs + trailing
/// CRC) — the pure half of [`Journal::checkpoint`], exposed for the
/// crash-point enumerator.
pub fn encode_checkpoint(state: &RecoveredState) -> Vec<u8> {
    let mut b = Vec::new();
    b.extend_from_slice(CHECKPOINT_MAGIC);
    b.extend_from_slice(&CHECKPOINT_VERSION.to_be_bytes());
    b.extend_from_slice(&state.next_job.to_be_bytes());
    b.extend_from_slice(&(state.jobs.len() as u32).to_be_bytes());
    for j in &state.jobs {
        b.extend_from_slice(&j.id.to_be_bytes());
        b.extend_from_slice(&j.submitted_ns.to_be_bytes());
        let frame = ServeFrame::Submit(j.spec.clone()).encode();
        b.extend_from_slice(&(frame.len() as u32).to_be_bytes());
        b.extend_from_slice(&frame);
        b.extend_from_slice(&(j.words.len() as u32).to_be_bytes());
        for w in &j.words {
            b.extend_from_slice(&w.to_be_bytes());
        }
    }
    let crc = crc32(&b);
    b.extend_from_slice(&crc.to_be_bytes());
    b
}

/// Decodes a checkpoint image; `None` on any CRC/framing mismatch (a
/// torn checkpoint counts as absent — the log still holds everything).
pub fn decode_checkpoint(bytes: &[u8]) -> Option<RecoveredState> {
    if bytes.len() < 4 {
        return None;
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let crc = u32::from_be_bytes(crc_bytes.try_into().ok()?);
    if crc32(body) != crc {
        return None;
    }
    let mut rest = body;
    if rest.len() < 4 || &rest[..4] != CHECKPOINT_MAGIC {
        return None;
    }
    rest = &rest[4..];
    if take_u32(&mut rest)? != CHECKPOINT_VERSION {
        return None;
    }
    let next_job = take_u64(&mut rest)?;
    let count = take_u32(&mut rest)?;
    let mut jobs = Vec::new();
    for _ in 0..count {
        let id = take_u64(&mut rest)?;
        let submitted_ns = take_u64(&mut rest)?;
        let frame_len = take_u32(&mut rest)? as usize;
        if rest.len() < frame_len {
            return None;
        }
        let ServeFrame::Submit(spec) = ServeFrame::decode(&rest[..frame_len]).ok()? else {
            return None;
        };
        rest = &rest[frame_len..];
        let words_len = take_u32(&mut rest)? as usize;
        let mut words = Vec::with_capacity(words_len);
        for _ in 0..words_len {
            words.push(take_u64(&mut rest)?);
        }
        jobs.push(JobSnapshot { id, spec, submitted_ns, words });
    }
    Some(RecoveredState { next_job: next_job.max(1), jobs })
}

fn read_optional(path: &Path) -> io::Result<Option<Vec<u8>>> {
    match File::open(path) {
        Ok(mut f) => {
            let mut bytes = Vec::new();
            f.read_to_end(&mut bytes)?;
            Ok(Some(bytes))
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

fn take_u64(buf: &mut &[u8]) -> Option<u64> {
    if buf.len() < 8 {
        return None;
    }
    let v = u64::from_be_bytes(buf[..8].try_into().ok()?);
    *buf = &buf[8..];
    Some(v)
}

fn take_u32(buf: &mut &[u8]) -> Option<u32> {
    if buf.len() < 4 {
        return None;
    }
    let v = u32::from_be_bytes(buf[..4].try_into().ok()?);
    *buf = &buf[4..];
    Some(v)
}

/// CRC-32 (IEEE 802.3 polynomial, reflected), bitwise — no tables, no
/// dependencies; journal records are small enough that throughput is
/// irrelevant next to the write syscall.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;
    use lss_core::master::SchemeKind;
    use lss_runtime::protocol::serve::WorkloadSpec;

    fn spec(iters: u64) -> JobSpec {
        JobSpec {
            workload: WorkloadSpec::Uniform { iters, cost: 5 },
            scheme: SchemeKind::Dtss,
            priority: 2,
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("lss-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn snapshot_ranges_roundtrip_through_bitmap() {
        let mut s = JobSnapshot::empty(1, spec(200), 0);
        s.mark(Chunk::new(0, 50));
        s.mark(Chunk::new(30, 40)); // overlaps: idempotent OR
        s.mark(Chunk::new(120, 10));
        s.mark(Chunk::new(199, 1));
        assert_eq!(s.completed_count(), 81);
        assert_eq!(
            s.completed_ranges(),
            vec![Chunk::new(0, 70), Chunk::new(120, 10), Chunk::new(199, 1)]
        );
        assert!(!s.is_complete());
        s.mark(Chunk::new(0, 200));
        assert!(s.is_complete());
    }

    #[test]
    fn journal_survives_reopen_with_state_intact() {
        let dir = tmpdir("reopen");
        {
            let (mut j, state) = Journal::open(&JournalConfig::fresh(&dir)).unwrap();
            assert_eq!(state.next_job, 1);
            j.append_admit(1, 10, &spec(100)).unwrap();
            j.append_admit(2, 20, &spec(50)).unwrap();
            j.append_complete(1, Chunk::new(0, 40)).unwrap();
            j.append_complete(2, Chunk::new(0, 50)).unwrap();
            j.append_finish(2).unwrap();
            // No clean shutdown: the daemon just dies here.
        }
        let (_j, state) = Journal::open(&JournalConfig::recover(&dir)).unwrap();
        assert_eq!(state.next_job, 3, "ids never reused, finished jobs included");
        assert_eq!(state.jobs.len(), 1, "finished job is not re-admitted");
        let job = &state.jobs[0];
        assert_eq!(job.id, 1);
        assert_eq!(job.completed_count(), 40);
        assert_eq!(job.completed_ranges(), vec![Chunk::new(0, 40)]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_open_discards_stale_state() {
        let dir = tmpdir("fresh");
        {
            let (mut j, _) = Journal::open(&JournalConfig::fresh(&dir)).unwrap();
            j.append_admit(1, 10, &spec(100)).unwrap();
        }
        let (_j, state) = Journal::open(&JournalConfig::fresh(&dir)).unwrap();
        assert_eq!(state, RecoveredState { next_job: 1, jobs: Vec::new() });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_ignored_but_prefix_survives() {
        let dir = tmpdir("torn");
        {
            let (mut j, _) = Journal::open(&JournalConfig::fresh(&dir)).unwrap();
            j.append_admit(1, 10, &spec(100)).unwrap();
            j.append_complete(1, Chunk::new(0, 25)).unwrap();
        }
        // Simulate a SIGKILL mid-append: a record cut in half.
        let log_path = dir.join("journal.log");
        let mut bytes = std::fs::read(&log_path).unwrap();
        let mut torn = vec![0u8, 0, 0, 40, TAG_COMPLETE, 9, 9];
        bytes.append(&mut torn);
        std::fs::write(&log_path, &bytes).unwrap();
        let (_j, state) = Journal::open(&JournalConfig::recover(&dir)).unwrap();
        assert_eq!(state.jobs.len(), 1);
        assert_eq!(state.jobs[0].completed_count(), 25);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_compacts_and_recovery_is_unchanged() {
        let dir = tmpdir("compact");
        let state_before;
        {
            let (mut j, _) = Journal::open(&JournalConfig::fresh(&dir)).unwrap();
            j.append_admit(1, 10, &spec(100)).unwrap();
            j.append_complete(1, Chunk::new(10, 30)).unwrap();
            let snap = RecoveredState {
                next_job: 2,
                jobs: vec![{
                    let mut s = JobSnapshot::empty(1, spec(100), 10);
                    s.mark(Chunk::new(10, 30));
                    s
                }],
            };
            j.checkpoint(&snap).unwrap();
            state_before = snap;
            // Post-checkpoint records land in the truncated log.
            j.append_complete(1, Chunk::new(50, 10)).unwrap();
        }
        let log_len = std::fs::metadata(dir.join("journal.log")).unwrap().len();
        assert!(log_len < 64, "log should hold only the post-checkpoint record");
        let (_j, state) = Journal::open(&JournalConfig::recover(&dir)).unwrap();
        assert_eq!(state.next_job, state_before.next_job);
        assert_eq!(
            state.jobs[0].completed_ranges(),
            vec![Chunk::new(10, 30), Chunk::new(50, 10)]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_ignores_records_already_in_the_checkpoint() {
        // The crash window between checkpoint-rename and log-truncate
        // leaves folded-in records in the log; replay must not
        // double-admit or corrupt them.
        let snap = RecoveredState {
            next_job: 3,
            jobs: vec![JobSnapshot::empty(2, spec(64), 5)],
        };
        let checkpoint = encode_checkpoint(&snap);
        let dir = tmpdir("dedup");
        let (mut j, _) = Journal::open(&JournalConfig::fresh(&dir)).unwrap();
        j.append_admit(2, 5, &spec(64)).unwrap(); // already folded in
        j.append_complete(2, Chunk::new(0, 8)).unwrap();
        j.append_admit(3, 9, &spec(32)).unwrap(); // genuinely new
        let log = std::fs::read(dir.join("journal.log")).unwrap();
        let state = replay(Some(&checkpoint), &log);
        assert_eq!(state.next_job, 4);
        assert_eq!(state.jobs.len(), 2, "no double-admit of job 2");
        assert_eq!(state.jobs[0].completed_count(), 8);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
