//! The bounded priority job queue behind admission control.
//!
//! The waiting room between *accepted* and *active*: a job the
//! scheduler has no slot for sits here until one frees up. The queue
//! is bounded — a full queue is backpressure, answered with a typed
//! `Rejected { reason }` rather than unbounded memory growth — and
//! priority-ordered: the highest-priority job activates first, FIFO
//! among equals (no starvation *within* a priority class; across
//! classes, priority is the contract).

use lss_runtime::protocol::serve::JobSpec;

/// A job admitted but not yet active.
#[derive(Debug, Clone)]
pub struct QueuedJob {
    /// Service-assigned id.
    pub id: u64,
    /// What the client asked for.
    pub spec: JobSpec,
    /// Submission time (service-epoch nanoseconds).
    pub submitted_ns: u64,
}

/// Bounded, priority-ordered FIFO of waiting jobs.
#[derive(Debug)]
pub struct JobQueue {
    capacity: usize,
    items: Vec<QueuedJob>,
}

impl JobQueue {
    /// An empty queue admitting at most `capacity` waiting jobs.
    pub fn new(capacity: usize) -> Self {
        JobQueue { capacity, items: Vec::new() }
    }

    /// Jobs currently waiting.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The admission bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admits a job, or refuses with a reason when the queue is full.
    pub fn offer(&mut self, job: QueuedJob) -> Result<(), String> {
        if self.items.len() >= self.capacity {
            return Err(format!(
                "queue full ({} jobs waiting, capacity {})",
                self.items.len(),
                self.capacity
            ));
        }
        self.items.push(job);
        Ok(())
    }

    /// Removes and returns the highest-priority job (FIFO among
    /// equals), if any is waiting.
    pub fn pop_highest(&mut self) -> Option<QueuedJob> {
        let best = self
            .items
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| {
                a.spec
                    .priority
                    .cmp(&b.spec.priority)
                    // On equal priority prefer the EARLIER entry: compare
                    // reversed indices so max_by picks the smaller index.
                    .then(ib.cmp(ia))
            })
            .map(|(i, _)| i)?;
        Some(self.items.remove(best))
    }

    /// Snapshot of the waiting jobs (activation order not guaranteed).
    pub fn iter(&self) -> impl Iterator<Item = &QueuedJob> {
        self.items.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lss_core::master::SchemeKind;
    use lss_runtime::protocol::serve::WorkloadSpec;

    fn job(id: u64, priority: u32) -> QueuedJob {
        QueuedJob {
            id,
            spec: JobSpec {
                workload: WorkloadSpec::Uniform { iters: 10, cost: 1 },
                scheme: SchemeKind::Tss,
                priority,
            },
            submitted_ns: id,
        }
    }

    #[test]
    fn priority_order_fifo_among_equals() {
        let mut q = JobQueue::new(8);
        for (id, pr) in [(1, 1), (2, 4), (3, 2), (4, 4), (5, 1)] {
            q.offer(job(id, pr)).expect("capacity");
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop_highest().map(|j| j.id)).collect();
        assert_eq!(order, vec![2, 4, 3, 1, 5]);
    }

    #[test]
    fn full_queue_refuses_with_reason() {
        let mut q = JobQueue::new(2);
        q.offer(job(1, 1)).expect("capacity");
        q.offer(job(2, 1)).expect("capacity");
        let err = q.offer(job(3, 1)).expect_err("full");
        assert!(err.contains("queue full"), "{err}");
        assert_eq!(q.len(), 2);
    }
}
