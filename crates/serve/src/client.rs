//! A client of the scheduling service: submit jobs, list them, drain.

use std::fmt;
use std::net::SocketAddr;

use lss_runtime::protocol::serve::{JobSpec, JobStatus, ServeFrame};
use lss_runtime::transport::TransportError;

use crate::link::{LocalLink, ServeLink, TcpLink};

/// Why a client operation failed.
#[derive(Debug)]
pub enum ServeError {
    /// The service refused the request (admission control, draining,
    /// malformed spec) and said why.
    Rejected(String),
    /// The link to the service broke.
    Transport(TransportError),
    /// The service answered with a frame the operation does not expect.
    Protocol(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Rejected(reason) => write!(f, "rejected: {reason}"),
            ServeError::Transport(e) => write!(f, "transport: {e}"),
            ServeError::Protocol(what) => write!(f, "protocol violation: {what}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<TransportError> for ServeError {
    fn from(e: TransportError) -> Self {
        ServeError::Transport(e)
    }
}

/// A handle for talking to a running service, in-process or over TCP.
pub struct ServeClient {
    link: Box<dyn ServeLink>,
}

impl ServeClient {
    /// One client round trip. A `Shutdown` reply means the service is
    /// exiting (drained, or its job limit reached) — surfaced as a
    /// disconnect, the same thing a dead link reports.
    fn call(&mut self, frame: ServeFrame) -> Result<ServeFrame, ServeError> {
        match self.link.call(frame)? {
            ServeFrame::Shutdown => Err(ServeError::Transport(TransportError::Disconnected(
                "service shut down".into(),
            ))),
            other => Ok(other),
        }
    }
    /// A client over an in-process link (from
    /// [`crate::ServeHandle::client`]).
    pub fn local(link: LocalLink) -> Self {
        ServeClient { link: Box::new(link) }
    }

    /// Dials a TCP service and performs the client handshake, so a
    /// version or protocol mismatch surfaces here, typed, not later.
    pub fn connect(addr: SocketAddr) -> Result<Self, ServeError> {
        let mut link = TcpLink::connect(addr)?;
        match link.call(ServeFrame::HelloClient)? {
            ServeFrame::Ack => Ok(ServeClient { link: Box::new(link) }),
            ServeFrame::Rejected { reason } => Err(ServeError::Rejected(reason)),
            other => Err(ServeError::Protocol(format!(
                "expected Ack to client hello, got {other:?}"
            ))),
        }
    }

    /// Submits a job; `Ok` carries the service-assigned job id.
    pub fn submit(&mut self, spec: JobSpec) -> Result<u64, ServeError> {
        match self.call(ServeFrame::Submit(spec))? {
            ServeFrame::Accepted { job } => Ok(job),
            ServeFrame::Rejected { reason } => Err(ServeError::Rejected(reason)),
            other => Err(ServeError::Protocol(format!(
                "expected Accepted/Rejected, got {other:?}"
            ))),
        }
    }

    /// The current job table: queued, active (live progress), done.
    pub fn jobs(&mut self) -> Result<Vec<JobStatus>, ServeError> {
        match self.call(ServeFrame::JobsQuery)? {
            ServeFrame::JobList(jobs) => Ok(jobs),
            ServeFrame::Rejected { reason } => Err(ServeError::Rejected(reason)),
            other => Err(ServeError::Protocol(format!(
                "expected JobList, got {other:?}"
            ))),
        }
    }

    /// Asks the service to stop accepting jobs and exit once the
    /// remaining work retires.
    pub fn drain(&mut self) -> Result<(), ServeError> {
        match self.call(ServeFrame::Drain)? {
            ServeFrame::Ack => Ok(()),
            ServeFrame::Rejected { reason } => Err(ServeError::Rejected(reason)),
            other => Err(ServeError::Protocol(format!("expected Ack, got {other:?}"))),
        }
    }
}
