//! The serve-protocol worker loop.
//!
//! Mirrors the one-shot runtime worker, generalized to batched,
//! job-tagged grants: one request carries every pending result and one
//! reply carries up to `k` chunks from up to `k` different jobs. The
//! worker caches one materialized workload per job (specs travel with
//! every grant, so a worker that joins mid-job needs no side channel).
//!
//! Fault injection reuses [`FaultPlan`]: crashes vanish without
//! reporting the last batch (the master's lease must recover the
//! chunks), and planned disconnects drop the link *while results are
//! pending*, redial, and re-hello — exercising the per-job dedup path
//! when the same results are then delivered over the new connection.

use std::collections::HashMap;
use std::time::Duration;

use lss_core::fault::FaultPlan;
use lss_runtime::protocol::serve::{JobChunkResult, ServeFrame, ServeRequest};
use lss_runtime::protocol::ChunkResult;
use lss_runtime::transport::TransportError;
use lss_workloads::Workload;

use crate::link::ServeLink;

/// Configuration of one serve worker.
#[derive(Debug, Clone)]
pub struct ServeWorkerConfig {
    /// Dense worker id within the pool.
    pub id: usize,
    /// The run-queue length this worker reports (its `Q_i`).
    pub q: u32,
    /// Execute every iteration this many times — a CPU-bound slowdown
    /// for heterogeneity experiments. `1` is a normal machine.
    pub slowdown: u32,
    /// What goes wrong, if anything.
    pub fault: FaultPlan,
}

impl ServeWorkerConfig {
    /// A healthy worker with unit run-queue.
    pub fn healthy(id: usize) -> Self {
        ServeWorkerConfig { id, q: 1, slowdown: 1, fault: FaultPlan::healthy() }
    }
}

/// What a serve worker did, for assertions and throughput accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServeWorkerStats {
    /// Chunks computed (across all jobs).
    pub chunks: u64,
    /// Iterations executed.
    pub iterations: u64,
    /// Scheduling round trips (hello included).
    pub requests: u64,
    /// Planned reconnects performed.
    pub reconnects: u64,
}

/// Runs the worker loop until the service says `Shutdown` (or the link
/// dies, which after a service exit means the same thing).
///
/// Returns the stats on orderly shutdown; an admission-style
/// `Rejected` from the service (wrong protocol, unknown worker id)
/// surfaces as a typed transport error.
pub fn run_serve_worker<L: ServeLink>(
    link: &mut L,
    cfg: &ServeWorkerConfig,
) -> Result<ServeWorkerStats, TransportError> {
    let mut stats = ServeWorkerStats::default();
    let mut pending: Vec<JobChunkResult> = Vec::new();
    let mut cache: HashMap<u64, Box<dyn Workload>> = HashMap::new();
    let mut retries: u32 = 0;

    stats.requests += 1;
    let mut reply = match link.call(ServeFrame::HelloWorker { worker: cfg.id, q: cfg.q }) {
        Ok(r) => r,
        Err(TransportError::Disconnected(_)) => return Ok(stats),
        Err(e) => return Err(e),
    };

    loop {
        match reply {
            ServeFrame::Shutdown => return Ok(stats),
            ServeFrame::Rejected { reason } => {
                return Err(TransportError::Io(format!("service rejected worker: {reason}")))
            }
            ServeFrame::Retry => {
                retries = retries.saturating_add(1);
                // Small exponential backoff, capped: the service said
                // "nothing for you right now", not "go away".
                let delay = Duration::from_micros(200u64 << retries.min(6));
                std::thread::sleep(delay);
            }
            ServeFrame::Grants(grants) => {
                retries = 0;
                for grant in grants {
                    let workload = cache
                        .entry(grant.job)
                        .or_insert_with(|| crate::instantiate(&grant.workload));
                    let chunk = grant.chunk;
                    let mut values = Vec::with_capacity(chunk.len as usize);
                    for i in chunk.start..chunk.start + chunk.len {
                        let mut v = 0u64;
                        for _ in 0..cfg.slowdown.max(1) {
                            v = workload.execute(i);
                        }
                        values.push(v);
                    }
                    stats.iterations += chunk.len;
                    stats.chunks += 1;
                    pending.push(JobChunkResult {
                        job: grant.job,
                        result: ChunkResult::new(chunk, values),
                    });
                    if cfg
                        .fault
                        .crash_after_chunks
                        .is_some_and(|n| stats.chunks >= n.max(1))
                    {
                        // Vanish: computed results are never reported;
                        // the lease layer must re-grant these chunks.
                        return Ok(stats);
                    }
                }
                if let Some(plan) = cfg.fault.disconnect {
                    if stats.chunks >= plan.after_chunks.max(1) && stats.reconnects == 0 {
                        // Drop the link with results still pending, then
                        // redial: the retransmitted results exercise the
                        // per-job first-result-wins dedup.
                        std::thread::sleep(Duration::from_nanos(plan.outage_ticks.min(5_000_000)));
                        link.reconnect()?;
                        stats.reconnects += 1;
                        stats.requests += 1;
                        reply = match link
                            .call(ServeFrame::HelloWorker { worker: cfg.id, q: cfg.q })
                        {
                            Ok(r) => r,
                            Err(TransportError::Disconnected(_)) => return Ok(stats),
                            Err(e) => return Err(e),
                        };
                        continue;
                    }
                }
            }
            _ => {
                return Err(TransportError::Malformed(
                    "unexpected frame in worker loop".into(),
                ))
            }
        }

        stats.requests += 1;
        let req = ServeFrame::Request(ServeRequest {
            worker: cfg.id,
            q: cfg.q,
            results: std::mem::take(&mut pending),
        });
        reply = match link.call(req) {
            Ok(r) => r,
            // A dead link after the service exits is an implicit
            // shutdown, not an error worth failing a worker thread for.
            Err(TransportError::Disconnected(_)) => return Ok(stats),
            Err(e) => return Err(e),
        };
    }
}
