//! Minimal argument parsing for the `lss` binary — flag/value pairs
//! with typed accessors, no external dependencies.

use std::collections::BTreeMap;

/// Parsed command line: a subcommand, positional arguments and
/// `--flag value` / `--flag` options.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: Option<String>,
    /// Remaining positional arguments.
    pub positional: Vec<String>,
    flags: BTreeMap<String, Option<String>>,
}

/// A parse or validation error with a user-facing message.
#[derive(Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses raw arguments (without the program name).
    ///
    /// `--key value` binds the next token unless it is itself a flag;
    /// a trailing `--key` is a boolean flag.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Args {
        let mut args = Args::default();
        let mut iter = raw.into_iter().peekable();
        while let Some(tok) = iter.next() {
            if let Some(key) = tok.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next(),
                    _ => None,
                };
                args.flags.insert(key.to_string(), value);
            } else if args.command.is_none() {
                args.command = Some(tok);
            } else {
                args.positional.push(tok);
            }
        }
        args
    }

    /// Whether a boolean flag is present.
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    /// String value of a flag, if present with a value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).and_then(|v| v.as_deref())
    }

    /// Typed flag value with a default.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| ArgError(format!("invalid value {s:?} for --{key}"))),
        }
    }

    /// Comma-separated list of floats (e.g. `--powers 2.65,1,1`).
    pub fn get_f64_list(&self, key: &str) -> Result<Option<Vec<f64>>, ArgError> {
        match self.get(key) {
            None => Ok(None),
            Some(s) => s
                .split(',')
                .map(|x| {
                    x.trim()
                        .parse::<f64>()
                        .map_err(|_| ArgError(format!("invalid number {x:?} in --{key}")))
                })
                .collect::<Result<Vec<f64>, _>>()
                .map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn command_and_positionals() {
        let a = parse("chunks tfss extra");
        assert_eq!(a.command.as_deref(), Some("chunks"));
        assert_eq!(a.positional, vec!["tfss", "extra"]);
    }

    #[test]
    fn flags_with_values() {
        let a = parse("simulate tss --iters 1000 --pes 8");
        assert_eq!(a.get("iters"), Some("1000"));
        assert_eq!(a.get_or("pes", 4usize).unwrap(), 8);
        assert_eq!(a.get_or("missing", 7u64).unwrap(), 7);
    }

    #[test]
    fn boolean_flags() {
        let a = parse("simulate tss --nondedicated --pes 8");
        assert!(a.has("nondedicated"));
        assert!(!a.has("dedicated"));
        assert_eq!(a.get("nondedicated"), None);
        assert_eq!(a.get_or("pes", 1usize).unwrap(), 8);
    }

    #[test]
    fn float_lists() {
        let a = parse("chunks dtss --powers 2.65,1,1");
        assert_eq!(a.get_f64_list("powers").unwrap(), Some(vec![2.65, 1.0, 1.0]));
        assert_eq!(a.get_f64_list("absent").unwrap(), None);
    }

    #[test]
    fn bad_values_error() {
        let a = parse("x --pes banana --powers 1,zebra");
        assert!(a.get_or("pes", 1usize).is_err());
        assert!(a.get_f64_list("powers").is_err());
    }

    #[test]
    fn empty_input() {
        let a = parse("");
        assert!(a.command.is_none());
        assert!(a.positional.is_empty());
    }
}
