//! # lss-cli — the `lss` command-line interface
//!
//! A downstream-user entry point to the toolkit without writing Rust:
//! inspect chunk sequences (`lss chunks`), simulate paper-style cluster
//! runs (`lss simulate`), or execute a loop for real on emulated
//! heterogeneous threads (`lss run`). Run `lss help` for usage.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod args;
pub mod commands;
