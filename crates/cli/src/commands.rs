//! The `lss` subcommands, factored for testability: every command
//! returns its output as a `String` (plus an exit-worthy error).

use std::sync::Arc;

use lss_core::master::{Assignment, Master, MasterConfig, SchemeKind};
use lss_core::power::{AcpConfig, VirtualPower};
use lss_metrics::table::TextTable;
use lss_runtime::harness::{run_scheduled_loop, HarnessConfig, Transport, WorkerSpec};
use lss_runtime::load::LoadState;
use lss_runtime::master::run_resilient_master;
use lss_runtime::protocol::Request;
use lss_runtime::transport::tcp::{tcp_listen_on, TcpWorker};
use lss_runtime::worker::{run_worker, WorkerConfig};
use lss_scenario::{run_sweep, validate_sweep_json, Scenario, SweepSpec};
use lss_sim::{
    simulate, simulate_sharded, simulate_traced, simulate_tree, ClusterSpec, LoadTrace,
    ShardSimConfig, SimConfig, TreeSimConfig,
};
use lss_workloads::{Mandelbrot, MandelbrotParams, SampledWorkload, UniformLoop, Workload};

use crate::args::{ArgError, Args};

/// Top-level usage text.
pub const USAGE: &str = "\
lss — loop self-scheduling for heterogeneous clusters (CLUSTER 2001)

USAGE:
  lss chunks <scheme> [--iters I] [--pes p | --powers a,b,c]
      Print the chunk sequence a scheme dispenses.
  lss simulate <scheme> [--width W] [--height H] [--sf S] [--fast F]
      [--slow S] [--nondedicated] [--seed N] [--scenario FILE]
      [--shards N [--self-sched]]
      Simulate a Mandelbrot run on the paper's cluster model, or — with
      --scenario — on a declarative .scn cluster (see scenarios/): node
      groups, speed distributions, load traces, churn and net faults.
      --shards N switches to the sharded-master grant model (N
      work-stealing grant servers); --self-sched additionally lets
      workers self-calculate fresh chunks from the replicated formula.
      (`lss sim` is an alias.)
  lss sweep --scenarios a.scn,b.scn --schemes s1,s2 [--iters-per-pe N]
      [--cost C] [--threads T] [--seed S] [--out FILE] [--md FILE]
      Run every scheme × scenario cell of the grid across threads with
      per-cell deterministic seeds; print a markdown comparison table
      (makespan, computation CoV, T_com share). --out writes the
      byte-stable SWEEP json artifact, --md the table.
  lss sweep --validate FILE
      Check that FILE is a well-formed lss-sweep-v1 artifact.
  lss run <scheme> [--width W] [--height H] [--sf S] [--fast F] [--slow S]
      [--tcp]
      Execute the loop for real on emulated-heterogeneous threads.
  lss master --port P --workers N <scheme> [--width W] [--height H] [--sf S]
      Host the master for N separate worker *processes* over TCP.
  lss worker --connect HOST:PORT --id I [--slowdown K] [--width W]
      [--height H] [--sf S]
      Join a master as worker I (workload flags must match the master's).
  lss predict <scheme> [--iters I] [--pes p]
      Closed-form prediction: scheduling steps, chunk statistics.
  lss trace [--scheme S] [--workload mandelbrot|uniform] [--out FILE]
      [--format chrome|prom|summary] [--runtime] [--tcp] [--nondedicated]
      [--fast F] [--slow S] [--width W] [--height H] [--sf S] [--seed N]
      Record a run's chunk-lifecycle timeline (simulator by default,
      --runtime/--tcp for a real threaded run) and export it as a
      Chrome/Perfetto trace.json, Prometheus text, or an ASCII summary.
  lss trace --validate FILE
      Check that FILE is a well-formed Chrome trace.
  lss verify [--all | --certify | --explore | --lint] [--iters I]
      [--pes p] [--interleavings N] [--json FILE]
      Static verification: certify every scheme's chunk algebra over a
      bounded domain (default I<=4096, p<=16), explore bounded fault
      interleavings of the lease protocol, and run the repo lint rules.
      Default is --all. --json writes machine-readable certificates.
  lss verify --serve [--quick] [--histories H] [--interleavings N]
      [--inputs F] [--json [FILE]]
      Model-check the serve layer: enumerate journal crash points (torn
      tails, truncations, bit flips at every record and byte boundary)
      against a reference replay, explore bounded serve-scheduler
      interleavings (admit/grant/complete/strike/quarantine/canary/
      crash/recover) driving the real MultiJobScheduler, and fuzz the
      protocol frame and journal decoders with seeded structured
      mutations. --crash-points / --serve-explore / --fuzz run a single
      engine; --quick shrinks every grid for CI. --json FILE writes the
      combined machine-readable report; bare --json prints it.
  lss serve [--port P] [--workers N] [--local-workers] [--batch K]
      [--queue-cap Q] [--max-active M] [--jobs-limit J] [--trace-out FILE]
      [--journal DIR | --recover DIR] [--no-quarantine]
      [--backend blocking|evented]
      Run the multi-job scheduling service over TCP: clients submit loop
      jobs (lss submit), the service fair-shares the worker pool across
      them by priority. --local-workers attaches N loopback worker
      threads; --jobs-limit exits after J completed jobs (otherwise
      `lss jobs --drain` stops it once work retires). --journal DIR
      writes a durable job journal (WAL + checkpoints); --recover DIR
      replays one after a crash, re-admitting unfinished jobs with only
      their un-completed iterations. --no-quarantine disables straggler
      quarantine (on by default). --backend picks the connection front
      end: `blocking` (thread per connection, the default) or `evented`
      (all sockets multiplexed onto one epoll reactor thread); the
      LSS_SERVE_BACKEND env var sets the same switch.
  lss submit <scheme> --connect HOST:PORT [--priority W] [--count N]
      [--iters I --cost C | --width W --height H --sf S] [--wait]
      Submit N copies of a job (uniform loop when --iters is given,
      Mandelbrot otherwise). --wait polls until they finish and prints
      per-job latency.
  lss jobs --connect HOST:PORT [--drain]
      List the service's job table; --drain asks it to finish up & exit.
  lss schemes
      List every supported scheme name.

SCHEMES:
  s ss css:<k> gss gss:<k> tss fss fiss:<sigma> tfss wf
  dtss dfss dfiss:<sigma> dtfss trees trees-weighted
";

/// Parses a scheme name like `css:16` or `dtss`.
pub fn parse_scheme(s: &str) -> Result<SchemeKind, ArgError> {
    let (name, param) = match s.split_once(':') {
        Some((n, p)) => (n, Some(p)),
        None => (s, None),
    };
    let num = |default: u64| -> Result<u64, ArgError> {
        match param {
            None => Ok(default),
            Some(p) => p
                .parse()
                .map_err(|_| ArgError(format!("invalid scheme parameter {p:?}"))),
        }
    };
    Ok(match name {
        "s" => SchemeKind::Static,
        "ss" => SchemeKind::Pure,
        "css" => SchemeKind::Css { k: num(1)?.max(1) },
        "gss" => SchemeKind::Gss { min_chunk: num(1)?.max(1) },
        "tss" => SchemeKind::Tss,
        "fss" => SchemeKind::Fss,
        "fiss" => SchemeKind::Fiss { sigma: num(3)?.max(2) as u32 },
        "tfss" => SchemeKind::Tfss,
        "wf" => SchemeKind::Wf,
        "dtss" => SchemeKind::Dtss,
        "dfss" => SchemeKind::Dfss,
        "dfiss" => SchemeKind::Dfiss { sigma: num(3)?.max(2) as u32 },
        "dtfss" => SchemeKind::Dtfss,
        other => return Err(ArgError(format!("unknown scheme {other:?}; try `lss schemes`"))),
    })
}

/// `lss schemes`
pub fn cmd_schemes() -> String {
    let mut out = String::from("scheme  distributed  description\n");
    let rows: &[(&str, &str)] = &[
        ("s", "static equal blocks"),
        ("ss", "pure self-scheduling (chunk = 1)"),
        ("css:<k>", "fixed chunk size k"),
        ("gss[:k]", "guided: ceil(R/p), optional minimum k"),
        ("tss", "trapezoid: linear decrease"),
        ("fss", "factoring: stages of half-the-remaining"),
        ("fiss:<sigma>", "fixed increase over sigma stages"),
        ("tfss", "trapezoid factoring (the paper's new scheme)"),
        ("wf", "weighted factoring (static weights)"),
        ("dtss", "distributed TSS (ACP-aware)"),
        ("dfss", "distributed FSS"),
        ("dfiss:<sigma>", "distributed FISS"),
        ("dtfss", "distributed TFSS (the paper's new scheme)"),
        ("trees[-weighted]", "tree scheduling (simulate only)"),
    ];
    for (name, desc) in rows {
        out.push_str(&format!(
            "{name:18} {:11} {desc}\n",
            if name.starts_with('d') { "yes" } else { "no" }
        ));
    }
    out
}

/// `lss chunks <scheme> ...`
pub fn cmd_chunks(args: &Args) -> Result<String, ArgError> {
    let scheme_name = args
        .positional
        .first()
        .ok_or_else(|| ArgError("chunks: missing <scheme>".into()))?;
    let scheme = parse_scheme(scheme_name)?;
    let total: u64 = args.get_or("iters", 1000)?;
    let powers: Vec<VirtualPower> = match args.get_f64_list("powers")? {
        Some(list) => list.into_iter().map(VirtualPower::new).collect(),
        None => vec![VirtualPower::new(1.0); args.get_or("pes", 4usize)?],
    };
    let p = powers.len();
    if p == 0 {
        return Err(ArgError("need at least one PE (--pes ≥ 1 or a non-empty --powers)".into()));
    }
    let mut master = Master::new(MasterConfig {
        scheme,
        total,
        powers,
        initial_q: vec![1; p],
        acp: AcpConfig::PAPER,
    });
    let mut out = format!("{} over {total} iterations on {p} PEs:\n", scheme.name());
    let mut sizes = Vec::new();
    let mut per_pe = vec![0u64; p];
    let mut w = 0usize;
    loop {
        match master.handle_request(w % p, 1) {
            Assignment::Chunk(c) => {
                sizes.push(c.len.to_string());
                per_pe[w % p] += c.len;
            }
            Assignment::Retry => {}
            Assignment::Finished => break,
        }
        w += 1;
    }
    out.push_str(&sizes.join(" "));
    out.push('\n');
    out.push_str(&format!("scheduling steps: {}\n", sizes.len()));
    for (i, n) in per_pe.iter().enumerate() {
        out.push_str(&format!("PE{}: {n} iterations\n", i + 1));
    }
    Ok(out)
}

fn workload_from(
    args: &Args,
    default_width: u32,
    default_height: u32,
) -> Result<SampledWorkload<Mandelbrot>, ArgError> {
    let width: u32 = args.get_or("width", default_width)?;
    let height: u32 = args.get_or("height", default_height)?;
    let sf: u64 = args.get_or("sf", 4)?;
    if width == 0 || height == 0 {
        return Err(ArgError("window must be non-empty".into()));
    }
    Ok(SampledWorkload::new(
        Mandelbrot::new(MandelbrotParams::paper_domain(width, height)),
        sf.max(1),
    ))
}

/// `lss simulate <scheme> ...` (alias: `lss sim`)
pub fn cmd_simulate(args: &Args) -> Result<String, ArgError> {
    let scheme_name = args
        .positional
        .first()
        .ok_or_else(|| ArgError("simulate: missing <scheme>".into()))?;
    if let Some(path) = args.get("scenario") {
        if args.has("shards") {
            return Err(ArgError(
                "--shards conflicts with --scenario (the sharded model has no scenario knobs yet)"
                    .into(),
            ));
        }
        return simulate_scenario(args, scheme_name, path);
    }
    if args.has("shards") {
        return simulate_shards(args, scheme_name);
    }
    let fast: usize = args.get_or("fast", 3)?;
    let slow: usize = args.get_or("slow", 5)?;
    let p = fast + slow;
    if p == 0 {
        return Err(ArgError("need at least one slave".into()));
    }
    let workload = workload_from(args, 1200, 600)?;
    let cluster = ClusterSpec::paper_mix(fast, slow);
    let mut traces = vec![LoadTrace::dedicated(); p];
    if args.has("nondedicated") {
        traces[0] = LoadTrace::paper_overloaded();
        for t in traces.iter_mut().take((p / 2 + 1).min(p)).skip(p / 2) {
            *t = LoadTrace::paper_overloaded();
        }
    }
    let report = match scheme_name.as_str() {
        "trees" | "trees-weighted" => {
            let cfg = TreeSimConfig::new(cluster, scheme_name == "trees-weighted");
            simulate_tree(&cfg, &workload, &traces)
        }
        other => {
            let scheme = parse_scheme(other)?;
            let seed: u64 = args.get_or("seed", 0)?;
            let cfg = SimConfig::new(cluster, scheme)
                .with_jitter(lss_sim::SimTime::from_millis(20), seed);
            simulate(&cfg, &workload, &traces)
        }
    };
    Ok(render_report(&report, workload.len(), workload.total_cost()))
}

/// `lss simulate <scheme> --shards N [--self-sched]`: the sharded-
/// master grant model of `lss-shard`, isolating the grant ceiling
/// (N work-stealing grant servers, optional worker-side chunk
/// self-calculation from the replicated formula).
fn simulate_shards(args: &Args, scheme_name: &str) -> Result<String, ArgError> {
    if args.has("nondedicated") {
        return Err(ArgError(
            "--nondedicated is not modeled by --shards (use per-worker slowdowns via --fast/--slow)"
                .into(),
        ));
    }
    let shards: usize = args.get_or("shards", 1)?;
    if shards == 0 {
        return Err(ArgError("--shards must be at least 1".into()));
    }
    let scheme = parse_scheme(scheme_name)?;
    let fast: usize = args.get_or("fast", 3)?;
    let slow: usize = args.get_or("slow", 5)?;
    let p = fast + slow;
    if p == 0 {
        return Err(ArgError("need at least one slave".into()));
    }
    let workload = workload_from(args, 1200, 600)?;
    if scheme.formula_sizer(workload.len(), p as u32).is_none() {
        return Err(ArgError(format!(
            "{} has no closed-form chunk formula; sharding needs one (pick a replicable scheme)",
            scheme.name()
        )));
    }
    let mut cfg = ShardSimConfig::new(scheme, shards, p);
    // Paper mix: UltraSPARC 10 vs UltraSPARC 1 is roughly 1 : 1/3.
    for s in cfg.slowdowns.iter_mut().skip(fast) {
        *s = 3;
    }
    if args.has("self-sched") {
        cfg = cfg.self_sched();
    }
    let report = simulate_sharded(&cfg, &workload);
    let mut out = format!(
        "scheme {} | {} iterations | {p} workers ({fast} fast + {slow} slow) | {shards} shard{} | {} grant path\n",
        scheme.name(),
        workload.len(),
        if shards == 1 { "" } else { "s" },
        if args.has("self-sched") { "self-calculated" } else { "leased" },
    );
    out.push_str(&format!(
        "T_p = {:.3} s | shard requests = {} | self-grants = {} | steals = {} | duplicates = {}\n",
        report.makespan_ns as f64 / 1e9,
        report.requests,
        report.self_grants,
        report.steals,
        report.duplicates,
    ));
    for (i, n) in report.per_worker_iters.iter().enumerate() {
        out.push_str(&format!("PE{}: {n} iterations\n", i + 1));
    }
    Ok(out)
}

/// `lss simulate <scheme> --scenario FILE`: the cluster, load traces
/// and fault plans all come from the scenario; the paper-cluster flags
/// therefore conflict with it.
fn simulate_scenario(args: &Args, scheme_name: &str, path: &str) -> Result<String, ArgError> {
    for flag in ["fast", "slow", "nondedicated"] {
        if args.has(flag) {
            return Err(ArgError(format!(
                "--{flag} conflicts with --scenario (the scenario defines the cluster)"
            )));
        }
    }
    let scenario =
        Scenario::load(std::path::Path::new(path)).map_err(|e| ArgError(format!("{e}")))?;
    let compiled = scenario.compile();
    let workload = workload_from(args, 1200, 600)?;
    let report = match scheme_name {
        // Tree scheduling cannot honor churn/fault knobs: surface the
        // typed UnsupportedKnob instead of silently dropping them.
        "trees" | "trees-weighted" => {
            let cfg = compiled
                .tree_config(scheme_name == "trees-weighted")
                .map_err(|e| ArgError(format!("{path}: {e}")))?;
            simulate_tree(&cfg, &workload, &compiled.traces)
        }
        other => {
            let scheme = parse_scheme(other)?;
            let seed: u64 = args.get_or("seed", compiled.seed)?;
            let cfg = SimConfig::new(compiled.cluster.clone(), scheme)
                .with_jitter(lss_sim::SimTime::from_millis(20), seed)
                .with_faults(compiled.faults.clone());
            simulate(&cfg, &workload, &compiled.traces)
        }
    };
    let mut out = format!(
        "scenario {} ({} workers) from {path}\n",
        compiled.name,
        compiled.workers()
    );
    if compiled.workers() <= 32 {
        out.push_str(&render_report(&report, workload.len(), workload.total_cost()));
    } else {
        // A 10k-row per-PE table helps nobody; aggregate instead.
        let tcom: f64 = report.per_pe.iter().map(|b| b.t_com).sum();
        let total: f64 = report
            .per_pe
            .iter()
            .map(|b| b.t_com + b.t_wait + b.t_comp)
            .sum();
        out.push_str(&format!(
            "scheme {} | {} iterations | total cost {}\n\
             T_p = {:.3} s | steps = {} | comp imbalance = {:.3} | T_com share = {:.1}% | faults = {}\n",
            report.scheme,
            workload.len(),
            workload.total_cost(),
            report.t_p,
            report.scheduling_steps,
            report.comp_imbalance(),
            if total > 0.0 { 100.0 * tcom / total } else { 0.0 },
            report.faults.len(),
        ));
    }
    Ok(out)
}

/// `lss run <scheme> ...`
pub fn cmd_run(args: &Args) -> Result<String, ArgError> {
    let scheme_name = args
        .positional
        .first()
        .ok_or_else(|| ArgError("run: missing <scheme>".into()))?;
    let scheme = parse_scheme(scheme_name)?;
    let fast: usize = args.get_or("fast", 1)?;
    let slow: usize = args.get_or("slow", 2)?;
    if fast + slow == 0 {
        return Err(ArgError("need at least one worker".into()));
    }
    // Smaller default window for real execution than for simulation.
    let workload = Arc::new(workload_from(args, 600, 300)?);
    let mut cfg = HarnessConfig::paper_mix(scheme, fast, slow);
    if args.has("tcp") {
        cfg.transport = Transport::Tcp;
    }
    if let Some(q) = args.get("overload-worker0") {
        let q: u32 = q
            .parse()
            .map_err(|_| ArgError(format!("invalid --overload-worker0 {q:?}")))?;
        cfg.workers[0] = WorkerSpec {
            load: LoadState::with_q(q),
            ..cfg.workers[0].clone()
        };
    }
    let out = run_scheduled_loop(&cfg, Arc::clone(&workload));
    Ok(render_report(
        &out.report,
        workload.len(),
        workload.total_cost(),
    ))
}

fn render_report(report: &lss_metrics::RunReport, iters: u64, cost: u64) -> String {
    let mut t = TextTable::new(vec![
        "PE".into(),
        "T_com".into(),
        "T_wait".into(),
        "T_comp".into(),
        "iterations".into(),
    ]);
    for (i, (b, n)) in report.per_pe.iter().zip(&report.iterations).enumerate() {
        t.push_row(vec![
            format!("{}", i + 1),
            format!("{:.2}", b.t_com),
            format!("{:.2}", b.t_wait),
            format!("{:.2}", b.t_comp),
            n.to_string(),
        ]);
    }
    format!(
        "scheme {} | {iters} iterations | total cost {cost}\n{}\nT_p = {:.3} s | steps = {} | comp imbalance = {:.3}\n",
        report.scheme,
        t.render(),
        report.t_p,
        report.scheduling_steps,
        report.comp_imbalance()
    )
}

/// `lss sweep ...` — scheme-family × scenario grid through the
/// simulator, with per-cell deterministic seeds and a byte-stable
/// JSON artifact.
pub fn cmd_sweep(args: &Args) -> Result<String, ArgError> {
    if let Some(path) = args.get("validate") {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
        let cells = validate_sweep_json(&text).map_err(|e| ArgError(format!("{path}: {e}")))?;
        return Ok(format!("{path}: valid lss-sweep-v1 artifact, {cells} cells\n"));
    }
    let schemes: Vec<String> = args
        .get("schemes")
        .ok_or_else(|| ArgError("sweep: missing --schemes s1,s2,... (try `lss schemes`)".into()))?
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    let scenario_paths = args
        .get("scenarios")
        .ok_or_else(|| ArgError("sweep: missing --scenarios a.scn,b.scn,...".into()))?;
    let mut scenarios = Vec::new();
    for p in scenario_paths.split(',') {
        let p = p.trim();
        if p.is_empty() {
            continue;
        }
        scenarios
            .push(Scenario::load(std::path::Path::new(p)).map_err(|e| ArgError(format!("{e}")))?);
    }
    let mut spec = SweepSpec::new(schemes, scenarios);
    spec.iters_per_pe = args.get_or("iters-per-pe", spec.iters_per_pe)?;
    spec.unit_cost = args.get_or("cost", spec.unit_cost)?;
    spec.threads = args.get_or("threads", spec.threads)?;
    spec.base_seed = args.get_or("seed", spec.base_seed)?;
    let report = run_sweep(&spec).map_err(ArgError)?;
    let mut out = report.to_markdown();
    if let Some(path) = args.get("out") {
        std::fs::write(path, report.to_json())
            .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        out.push_str(&format!("\nwrote {path}\n"));
    }
    if let Some(path) = args.get("md") {
        std::fs::write(path, report.to_markdown())
            .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        out.push_str(&format!("wrote {path}\n"));
    }
    Ok(out)
}

/// `lss predict ...` — closed-form scheme analysis, no simulation.
pub fn cmd_predict(args: &Args) -> Result<String, ArgError> {
    use lss_core::analysis::{chunk_stats, predicted_steps};
    let scheme_name = args
        .positional
        .first()
        .ok_or_else(|| ArgError("predict: missing <scheme>".into()))?;
    let scheme = parse_scheme(scheme_name)?;
    let total: u64 = args.get_or("iters", 1000)?;
    let p: u32 = args.get_or("pes", 8)?;
    if p == 0 {
        return Err(ArgError("need at least one PE".into()));
    }
    let stats = chunk_stats(scheme, total, p);
    let mut out = format!("{} over {total} iterations on {p} PEs:\n", scheme.name());
    out.push_str(&format!(
        "  scheduling steps : {} (master round-trips)\n",
        stats.steps
    ));
    if let Some(n) = predicted_steps(scheme, total, p) {
        out.push_str(&format!("  closed-form steps: {n}\n"));
    }
    out.push_str(&format!(
        "  chunk sizes      : first {}, max {}, last (critical) {}, mean {:.1}\n",
        stats.first, stats.max, stats.last, stats.mean
    ));
    Ok(out)
}

/// `lss master ...` — hosts a TCP master for separate worker processes.
pub fn cmd_master(args: &Args) -> Result<String, ArgError> {
    let scheme_name = args
        .positional
        .first()
        .ok_or_else(|| ArgError("master: missing <scheme>".into()))?;
    let scheme = parse_scheme(scheme_name)?;
    let port: u16 = args.get_or("port", 0)?;
    let n: usize = args.get_or("workers", 2)?;
    if n == 0 {
        return Err(ArgError("need at least one worker".into()));
    }
    let workload = workload_from(args, 600, 300)?;
    let listener =
        tcp_listen_on("127.0.0.1", port).map_err(|e| ArgError(e.to_string()))?;
    eprintln!(
        "master: listening on {} for {n} workers (scheme {}, {} iterations)",
        listener.addr,
        scheme.name(),
        workload.len()
    );
    // Workers' relative speeds are unknown until they connect; treat
    // them as equals (the distributed schemes adapt through reported
    // run-queue lengths regardless).
    let mut master = Master::new(MasterConfig {
        scheme,
        total: workload.len(),
        powers: vec![VirtualPower::new(1.0); n],
        initial_q: vec![1; n],
        acp: AcpConfig::PAPER,
    });
    let transport = listener.accept_workers(n).map_err(|e| ArgError(e.to_string()))?;
    let t0 = std::time::Instant::now();
    let outcome =
        run_resilient_master(transport, &mut master, n, std::time::Duration::from_millis(2))
            .map_err(|e| ArgError(e.to_string()))?;
    let missing = outcome.results.iter().filter(|r| r.is_none()).count();
    let mut out = format!(
        "master: served {} requests in {:.3}s; failed workers {:?}; {} of {} results collected\n",
        outcome.requests_served,
        t0.elapsed().as_secs_f64(),
        outcome.failed_workers,
        outcome.results.len() - missing,
        outcome.results.len(),
    );
    for w in 0..n {
        out.push_str(&format!("  worker {w}: {} iterations\n", master.iterations_served(w)));
    }
    if !outcome.faults.is_empty() {
        out.push_str("fault log:\n");
        out.push_str(&outcome.faults.render());
    }
    Ok(out)
}

/// `lss worker ...` — joins a TCP master as one worker process.
pub fn cmd_worker(args: &Args) -> Result<String, ArgError> {
    let addr: std::net::SocketAddr = args
        .get("connect")
        .ok_or_else(|| ArgError("worker: missing --connect HOST:PORT".into()))?
        .parse()
        .map_err(|e| ArgError(format!("invalid --connect address: {e}")))?;
    let id: usize = args.get_or("id", 0)?;
    let slowdown: u32 = args.get_or("slowdown", 1)?;
    let workload = workload_from(args, 600, 300)?;
    let cfg = WorkerConfig {
        slowdown: slowdown.max(1),
        heartbeat_every: Some(std::time::Duration::from_millis(100)),
        ..WorkerConfig::fast(id)
    };
    let first = Request { worker: id, q: 1, result: None };
    let transport = TcpWorker::connect(addr, first).map_err(|e| ArgError(e.to_string()))?;
    let stats =
        run_worker(transport, &cfg, &workload, true).map_err(|e| ArgError(e.to_string()))?;
    Ok(format!(
        "worker {id}: {} iterations in {} chunks; comp {:.3}s, wait {:.3}s, com {:.3}s\n",
        stats.iterations,
        stats.chunks,
        stats.t_comp.as_secs_f64(),
        stats.t_wait.as_secs_f64(),
        stats.t_com.as_secs_f64(),
    ))
}

/// Records a trace from either engine, keeping the run report for the
/// reconciliation line.
fn record_trace<W: Workload + Send + Sync + 'static>(
    args: &Args,
    scheme: SchemeKind,
    fast: usize,
    slow: usize,
    workload: W,
) -> Result<(lss_metrics::RunReport, lss_trace::Trace), ArgError> {
    if args.has("runtime") || args.has("tcp") {
        let mut cfg = HarnessConfig::paper_mix(scheme, fast, slow).traced();
        if args.has("tcp") {
            cfg.transport = Transport::Tcp;
        }
        if args.has("nondedicated") {
            cfg.workers[0] = WorkerSpec {
                load: LoadState::with_q(3),
                ..cfg.workers[0].clone()
            };
        }
        let out = run_scheduled_loop(&cfg, Arc::new(workload));
        let trace = out.trace.expect("harness tracing was enabled");
        Ok((out.report, trace))
    } else {
        let p = fast + slow;
        let cluster = ClusterSpec::paper_mix(fast, slow);
        let mut loads = vec![LoadTrace::dedicated(); p];
        if args.has("nondedicated") {
            loads[0] = LoadTrace::paper_overloaded();
        }
        let seed: u64 = args.get_or("seed", 0)?;
        let cfg = SimConfig::new(cluster, scheme)
            .with_jitter(lss_sim::SimTime::from_millis(20), seed);
        let (report, _spans, trace) = simulate_traced(&cfg, &workload, &loads);
        Ok((report, trace))
    }
}

/// `lss trace ...` — records a run's event timeline and exports it.
pub fn cmd_trace(args: &Args) -> Result<String, ArgError> {
    if let Some(path) = args.get("validate") {
        let json = std::fs::read_to_string(path)
            .map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
        let n = lss_trace::validate_chrome_trace(&json).map_err(ArgError)?;
        return Ok(format!("{path}: well-formed Chrome trace, {n} events\n"));
    }

    let scheme = parse_scheme(args.get("scheme").unwrap_or("tfss"))?;
    let fast: usize = args.get_or("fast", 2)?;
    let slow: usize = args.get_or("slow", 2)?;
    if fast + slow == 0 {
        return Err(ArgError("need at least one worker".into()));
    }
    let (report, trace) = match args.get("workload").unwrap_or("mandelbrot") {
        "mandelbrot" => {
            let w = workload_from(args, 400, 200)?;
            record_trace(args, scheme, fast, slow, w)?
        }
        "uniform" => {
            let iters: u64 = args.get_or("iters", 1000)?;
            let cost: u64 = args.get_or("cost", 20_000)?;
            record_trace(args, scheme, fast, slow, UniformLoop::new(iters, cost))?
        }
        other => {
            return Err(ArgError(format!(
                "unknown workload {other:?} (expected mandelbrot or uniform)"
            )))
        }
    };

    let format = args.get("format").unwrap_or("chrome");
    let rendered = match format {
        "chrome" => lss_trace::to_chrome_json(&trace),
        "prom" => lss_trace::to_prometheus_text(&trace),
        "summary" => render_trace_summary(&report, &trace),
        other => {
            return Err(ArgError(format!(
                "unknown format {other:?} (expected chrome, prom or summary)"
            )))
        }
    };

    match args.get("out") {
        None => Ok(rendered),
        Some(path) => {
            std::fs::write(path, rendered.as_bytes())
                .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
            let mut out = format!(
                "{}: {} events ({} clock, {} dropped) -> {path} [{format}]\n",
                trace.meta.scheme,
                trace.len(),
                trace.meta.clock.label(),
                trace.dropped,
            );
            if format == "chrome" {
                let n = lss_trace::validate_chrome_trace(&rendered).map_err(ArgError)?;
                out.push_str(&format!(
                    "validated: {n} Chrome trace events; open at https://ui.perfetto.dev\n"
                ));
            }
            Ok(out)
        }
    }
}

/// Human-readable trace digest: per-worker lanes, reconciled
/// breakdowns, idle gaps and the critical-path summary.
fn render_trace_summary(report: &lss_metrics::RunReport, trace: &lss_trace::Trace) -> String {
    use lss_metrics::breakdown::TimeBreakdown;
    let mut out = format!(
        "scheme {} | {} workers | {} iterations | {} events ({} clock)\n\n",
        trace.meta.scheme,
        trace.meta.workers,
        trace.meta.total_iterations,
        trace.len(),
        trace.meta.clock.label(),
    );
    out.push_str(&lss_trace::render_gantt(trace, 64));
    out.push('\n');

    let derived = TimeBreakdown::all_from_trace(trace);
    let mut t = TextTable::new(vec![
        "PE".into(),
        "T_com (trace/report)".into(),
        "T_wait (trace/report)".into(),
        "T_comp (trace/report)".into(),
    ]);
    for (i, d) in derived.iter().enumerate() {
        let r = report.per_pe.get(i).copied().unwrap_or_default();
        t.push_row(vec![
            format!("{}", i + 1),
            format!("{:.3}/{:.3}", d.t_com, r.t_com),
            format!("{:.3}/{:.3}", d.t_wait, r.t_wait),
            format!("{:.3}/{:.3}", d.t_comp, r.t_comp),
        ]);
    }
    out.push_str(&t.render());

    let cp = lss_trace::critical_path(trace);
    let imb = lss_trace::imbalance(trace);
    let gaps = lss_trace::idle_gaps(trace);
    let gap_total: u64 = gaps.iter().map(|g| g.dur_ns()).sum();
    out.push_str(&format!(
        "\nmakespan {:.3}s | serialized {:.3}s | busy CoV {:.3} | idle gaps {} ({:.3}s) | speculative {} | requeues {}\n",
        cp.makespan_s,
        cp.serialized_ns as f64 / 1e9,
        imb.cov,
        gaps.len(),
        gap_total as f64 / 1e9,
        cp.speculative_grants,
        cp.requeues,
    ));
    if let Some(s) = &cp.last_span {
        out.push_str(&format!(
            "last span: worker {} chunk {} ({:.3}s..{:.3}s)\n",
            s.worker,
            s.chunk,
            s.start_ns as f64 / 1e9,
            s.end_ns as f64 / 1e9,
        ));
    }
    out
}

/// `lss verify` — runs the static verification engines and renders a
/// human-readable summary (optionally writing JSON certificates).
pub fn cmd_verify(args: &Args) -> Result<String, ArgError> {
    use lss_verify::certify::Domain;
    use lss_verify::explore::ExploreConfig;
    use lss_verify::{CrashConfig, FuzzConfig, ServeExploreConfig};

    let run_crash = args.has("serve") || args.has("crash-points");
    let run_serve_explore = args.has("serve") || args.has("serve-explore");
    let run_fuzz = args.has("serve") || args.has("fuzz");
    let any_serve = run_crash || run_serve_explore || run_fuzz;
    let run_all = args.has("all")
        || !(args.has("certify") || args.has("explore") || args.has("lint") || any_serve);
    let quick = args.has("quick");
    let mut out = String::new();
    let mut failed = false;

    if run_all || args.has("certify") {
        let domain = Domain {
            max_iters: args.get_or("iters", Domain::PAPER.max_iters)?,
            max_p: args.get_or("pes", Domain::PAPER.max_p)?,
        };
        let certs = lss_verify::certify_all(&domain);
        let mut table = TextTable::new(vec![
            "scheme".into(),
            "verdict".into(),
            "configs".into(),
            "chunks".into(),
            "checks".into(),
            "properties".into(),
        ]);
        for cert in &certs {
            failed |= !cert.holds();
            table.push_row(vec![
                cert.scheme.to_string(),
                if cert.holds() { "certified".into() } else { "FAILED".into() },
                cert.configs.to_string(),
                cert.chunks.to_string(),
                cert.total_checks().to_string(),
                cert.properties.len().to_string(),
            ]);
        }
        out.push_str(&format!(
            "Scheme certification over I <= {}, p <= {}:\n{}",
            domain.max_iters,
            domain.max_p,
            table.render()
        ));
        for cert in &certs {
            for prop in &cert.properties {
                if prop.violations > 0 {
                    out.push_str(&format!(
                        "  {} / {}: {} violation(s), e.g. {}\n",
                        cert.scheme,
                        prop.name,
                        prop.violations,
                        prop.samples.first().map_or("<none>", |s| s.as_str())
                    ));
                }
            }
        }
        if let Some(path) = args.get("json") {
            let json = lss_verify::json_certificates(&certs);
            std::fs::write(path, json)
                .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
            out.push_str(&format!("certificates written to {path}\n"));
        }
    }

    if run_all || args.has("explore") {
        let mut cfg = ExploreConfig::chaos_default();
        cfg.max_interleavings = args.get_or("interleavings", cfg.max_interleavings)?;
        let report = lss_verify::explore(&cfg);
        failed |= !report.holds();
        out.push_str(&format!(
            "\nInterleaving exploration ({} workers, I = {}, {}):\n  \
             {} schedules explored ({} terminal, {} depth-bounded), \
             {} assertions, {} trace events checked — {}\n",
            cfg.workers,
            cfg.total,
            cfg.scheme.name(),
            report.interleavings,
            report.terminal,
            report.depth_bounded,
            report.checks,
            report.events_checked,
            if report.holds() { "no violations" } else { "VIOLATIONS" },
        ));
        for v in &report.violations {
            out.push_str(&format!("  violation: {v}\n"));
        }
    }

    if run_all || args.has("lint") {
        let root = std::env::current_dir()
            .map_err(|e| ArgError(format!("cannot determine working directory: {e}")))?;
        match lss_verify::lint_repo(&root) {
            Ok(report) => {
                failed |= !report.holds();
                out.push_str(&format!(
                    "\nRepo lint ({}): {}\n",
                    report.rules.join(", "),
                    if report.holds() { "clean" } else { "VIOLATIONS" }
                ));
                for f in &report.findings {
                    out.push_str(&format!("  {f}\n"));
                }
            }
            Err(e) => out.push_str(&format!(
                "\nRepo lint skipped: {e} (run from the repo root to enable)\n"
            )),
        }
    }

    let mut crash_report = None;
    if run_crash {
        let mut cfg = if quick { CrashConfig::quick() } else { CrashConfig::full() };
        cfg.histories = args.get_or("histories", cfg.histories)?;
        let report = lss_verify::enumerate_crash_points(&cfg);
        failed |= !report.holds();
        out.push_str(&format!(
            "\nJournal crash-point enumeration ({} histories, {} records):\n  \
             {} crash points ({} torn tails, {} bit flips), {} assertions — {}\n",
            report.histories,
            report.records,
            report.crash_points,
            report.torn_points,
            report.bit_flips,
            report.checks,
            if report.holds() { "no violations" } else { "VIOLATIONS" },
        ));
        for v in &report.violations {
            out.push_str(&format!("  violation: {v}\n"));
        }
        crash_report = Some(report);
    }

    let mut serve_explore_report = None;
    if run_serve_explore {
        let mut cfg = if quick {
            ServeExploreConfig::quick()
        } else {
            ServeExploreConfig::full()
        };
        cfg.max_interleavings = args.get_or("interleavings", cfg.max_interleavings)?;
        let report = lss_verify::explore_serve(&cfg);
        failed |= !report.holds();
        out.push_str(&format!(
            "\nServe-scheduler interleaving exploration ({} workers, {} jobs):\n  \
             {} schedules explored ({} terminal, {} depth-bounded), \
             {} assertions, {} trace events checked — {}\n",
            cfg.workers,
            cfg.jobs.len(),
            report.interleavings,
            report.terminal,
            report.depth_bounded,
            report.checks,
            report.events_checked,
            if report.holds() { "no violations" } else { "VIOLATIONS" },
        ));
        for v in &report.violations {
            out.push_str(&format!("  violation: {v}\n"));
        }
        serve_explore_report = Some(report);
    }

    let mut fuzz_report = None;
    if run_fuzz {
        let mut cfg = if quick { FuzzConfig::quick() } else { FuzzConfig::full() };
        cfg.inputs = args.get_or("inputs", cfg.inputs)?;
        let report = lss_verify::fuzz_decoders(&cfg);
        failed |= !report.holds();
        out.push_str(&format!(
            "\nProtocol decode fuzzing:\n  {} inputs, {} panics, {} assertions — {}\n",
            report.inputs,
            report.panics,
            report.checks,
            if report.holds() { "no violations" } else { "VIOLATIONS" },
        ));
        for v in &report.violations {
            out.push_str(&format!("  violation: {v}\n"));
        }
        fuzz_report = Some(report);
    }

    if any_serve && args.has("json") {
        let json = match (&crash_report, &serve_explore_report, &fuzz_report) {
            (Some(c), Some(e), Some(f)) => lss_verify::json_serve(c, e, f),
            _ => {
                // A single engine (or subset) was requested: emit just
                // the parts that ran, same shape as the combined form.
                let mut parts = vec![format!("\"holds\": {}", !failed)];
                if let Some(c) = &crash_report {
                    parts.push(format!(
                        "\"crash_points\": {}",
                        lss_verify::json_crash_points(c).trim_end()
                    ));
                }
                if let Some(e) = &serve_explore_report {
                    parts.push(format!(
                        "\"interleavings\": {}",
                        lss_verify::json_serve_explore(e).trim_end()
                    ));
                }
                if let Some(f) = &fuzz_report {
                    parts.push(format!("\"fuzz\": {}", lss_verify::json_fuzz(f).trim_end()));
                }
                format!("{{{}}}\n", parts.join(", "))
            }
        };
        match args.get("json") {
            Some(path) => {
                std::fs::write(path, &json)
                    .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
                out.push_str(&format!("serve verification report written to {path}\n"));
            }
            None => out.push_str(&json),
        }
    }

    if failed {
        return Err(ArgError(format!("{out}\nverification FAILED")));
    }
    out.push_str("\nverification OK\n");
    Ok(out)
}

/// Builds a [`WorkloadSpec`] from submit-style flags: a uniform loop
/// when `--iters` is given, the paper's Mandelbrot window otherwise.
fn workload_spec_from(args: &Args) -> Result<lss_runtime::protocol::serve::WorkloadSpec, ArgError> {
    use lss_runtime::protocol::serve::WorkloadSpec;
    if args.has("iters") {
        let iters: u64 = args.get_or("iters", 1000)?;
        let cost: u64 = args.get_or("cost", 20_000)?;
        Ok(WorkloadSpec::Uniform { iters, cost: cost.max(1) })
    } else {
        let width: u32 = args.get_or("width", 400)?;
        let height: u32 = args.get_or("height", 200)?;
        let sf: u64 = args.get_or("sf", 4)?;
        if width == 0 || height == 0 {
            return Err(ArgError("window must be non-empty".into()));
        }
        Ok(WorkloadSpec::Mandelbrot { width, height, sf: sf.max(1) })
    }
}

fn serve_addr_from(args: &Args, cmd: &str) -> Result<std::net::SocketAddr, ArgError> {
    args.get("connect")
        .ok_or_else(|| ArgError(format!("{cmd}: missing --connect HOST:PORT")))?
        .parse()
        .map_err(|e| ArgError(format!("invalid --connect address: {e}")))
}

/// `lss serve ...` — hosts the multi-job scheduling service.
pub fn cmd_serve(args: &Args) -> Result<String, ArgError> {
    use lss_serve::{run_serve_worker, ServeConfig, ServeWorkerConfig, TcpLink};

    let workers: usize = args.get_or("workers", 4)?;
    if workers == 0 {
        return Err(ArgError("need at least one worker".into()));
    }
    let port: u16 = args.get_or("port", 0)?;
    let mut cfg = ServeConfig::new(workers);
    cfg.batch_k = args.get_or("batch", cfg.batch_k)?.max(1);
    cfg.queue_capacity = args.get_or("queue-cap", cfg.queue_capacity)?;
    cfg.max_active = args.get_or("max-active", cfg.max_active)?.max(1);
    if let Some(limit) = args.get("jobs-limit") {
        let n: u64 = limit
            .parse()
            .map_err(|_| ArgError(format!("invalid --jobs-limit {limit:?}")))?;
        cfg.exit_after_jobs = Some(n.max(1));
    }
    let trace_out = args.get("trace-out").map(String::from);
    if trace_out.is_some() {
        cfg.trace = lss_trace::SharedSink::recording();
    }
    match (args.get("journal"), args.get("recover")) {
        (Some(_), Some(_)) => {
            return Err(ArgError("--journal and --recover are mutually exclusive".into()));
        }
        (Some(dir), None) => cfg.journal = Some(lss_serve::JournalConfig::fresh(dir)),
        (None, Some(dir)) => cfg.journal = Some(lss_serve::JournalConfig::recover(dir)),
        (None, None) => {}
    }
    if args.has("no-quarantine") {
        cfg.quarantine = lss_serve::QuarantineConfig::disabled();
    }
    // --backend wins over LSS_SERVE_BACKEND; with neither, blocking.
    let backend = match args.get("backend") {
        Some("blocking") => lss_serve::ServeBackend::Blocking,
        Some("evented") => lss_serve::ServeBackend::Evented,
        Some(other) => {
            return Err(ArgError(format!(
                "unknown --backend {other:?} (expected blocking|evented)"
            )));
        }
        None => lss_serve::ServeBackend::from_env().map_err(|e| ArgError(e.to_string()))?,
    };
    let handle = lss_serve::serve_tcp_with(cfg, "127.0.0.1", port, backend)
        .map_err(|e| ArgError(e.to_string()))?;
    let addr = handle.addr.ok_or_else(|| ArgError("service has no address".into()))?;
    eprintln!("serve: listening on {addr} ({workers} workers, {backend:?} front end)");

    let local: Vec<_> = if args.has("local-workers") {
        (0..workers)
            .map(|w| {
                std::thread::spawn(move || {
                    let mut link = TcpLink::connect(addr)?;
                    run_serve_worker(&mut link, &ServeWorkerConfig::healthy(w))
                })
            })
            .collect()
    } else {
        Vec::new()
    };

    let report = handle.join();
    for t in local {
        t.join()
            .map_err(|_| ArgError("local worker panicked".into()))?
            .map_err(|e| ArgError(e.to_string()))?;
    }

    let mut out = format!(
        "serve: {} jobs completed, {} rejected | {} requests, {} grants, {} replans\n",
        report.jobs_completed,
        report.jobs_rejected,
        report.requests_served,
        report.grants_sent,
        report.replans,
    );
    for job in &report.jobs {
        let latency = job
            .finished_ns
            .map(|f| format!("{:.3}s", f.saturating_sub(job.submitted_ns) as f64 / 1e9))
            .unwrap_or_else(|| "-".into());
        out.push_str(&format!(
            "  job {} [{}] priority {} — {}/{} iterations, latency {latency}\n",
            job.job,
            job.state.label(),
            job.priority,
            job.completed,
            job.total,
        ));
    }
    if let Some(path) = trace_out {
        let trace = report
            .trace
            .ok_or_else(|| ArgError("tracing was enabled but no trace returned".into()))?;
        let json = lss_trace::to_chrome_json(&trace);
        std::fs::write(&path, json.as_bytes())
            .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
        out.push_str(&format!(
            "trace: {} events ({} jobs) -> {path}\n",
            trace.len(),
            trace.job_ids().len(),
        ));
    }
    Ok(out)
}

/// `lss submit ...` — submits jobs to a running service.
pub fn cmd_submit(args: &Args) -> Result<String, ArgError> {
    use lss_runtime::protocol::serve::{JobSpec, JobState};
    use lss_serve::ServeClient;

    let addr = serve_addr_from(args, "submit")?;
    let scheme = parse_scheme(args.positional.first().map_or("dtss", |s| s.as_str()))?;
    let priority: u32 = args.get_or("priority", 1)?;
    let count: usize = args.get_or("count", 1)?;
    if count == 0 {
        return Err(ArgError("--count must be at least 1".into()));
    }
    let workload = workload_spec_from(args)?;
    let mut client = ServeClient::connect(addr).map_err(|e| ArgError(e.to_string()))?;
    let mut out = String::new();
    let mut ids = Vec::with_capacity(count);
    for _ in 0..count {
        let spec = JobSpec { workload, scheme, priority };
        let id = client.submit(spec).map_err(|e| ArgError(e.to_string()))?;
        out.push_str(&format!(
            "submitted job {id}: {} x{} iterations, priority {priority}\n",
            scheme.name(),
            workload.len(),
        ));
        ids.push(id);
    }
    if args.has("wait") {
        loop {
            let jobs = match client.jobs() {
                Ok(jobs) => jobs,
                // A service that exits after its job limit closes the
                // link; everything we submitted is done by then.
                Err(lss_serve::ServeError::Transport(_)) => {
                    out.push_str("service exited while waiting (all jobs retired)\n");
                    break;
                }
                Err(e) => return Err(ArgError(e.to_string())),
            };
            let mine: Vec<_> =
                jobs.iter().filter(|j| ids.contains(&j.job)).collect();
            if mine.len() == ids.len() && mine.iter().all(|j| j.state == JobState::Done) {
                for j in mine {
                    out.push_str(&format!(
                        "job {} done: {} iterations in {:.3}s\n",
                        j.job,
                        j.completed,
                        j.finished_ns.unwrap_or(j.submitted_ns).saturating_sub(j.submitted_ns)
                            as f64
                            / 1e9,
                    ));
                }
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    }
    Ok(out)
}

/// `lss jobs ...` — queries (and optionally drains) a running service.
pub fn cmd_jobs(args: &Args) -> Result<String, ArgError> {
    use lss_serve::ServeClient;

    let addr = serve_addr_from(args, "jobs")?;
    let mut client = ServeClient::connect(addr).map_err(|e| ArgError(e.to_string()))?;
    let jobs = client.jobs().map_err(|e| ArgError(e.to_string()))?;
    let mut t = TextTable::new(vec![
        "job".into(),
        "state".into(),
        "priority".into(),
        "progress".into(),
    ]);
    for j in &jobs {
        t.push_row(vec![
            j.job.to_string(),
            j.state.label().to_string(),
            j.priority.to_string(),
            format!("{}/{}", j.completed, j.total),
        ]);
    }
    let mut out = format!("{} job(s)\n{}", jobs.len(), t.render());
    if args.has("drain") {
        client.drain().map_err(|e| ArgError(e.to_string()))?;
        out.push_str("drain requested: service exits once remaining work retires\n");
    }
    Ok(out)
}

/// Dispatches a parsed command line.
pub fn dispatch(args: &Args) -> Result<String, ArgError> {
    match args.command.as_deref() {
        None | Some("help") => Ok(USAGE.to_string()),
        Some("schemes") => Ok(cmd_schemes()),
        Some("chunks") => cmd_chunks(args),
        Some("simulate") | Some("sim") => cmd_simulate(args),
        Some("sweep") => cmd_sweep(args),
        Some("run") => cmd_run(args),
        Some("master") => cmd_master(args),
        Some("worker") => cmd_worker(args),
        Some("predict") => cmd_predict(args),
        Some("trace") => cmd_trace(args),
        Some("verify") => cmd_verify(args),
        Some("serve") => cmd_serve(args),
        Some("submit") => cmd_submit(args),
        Some("jobs") => cmd_jobs(args),
        Some(other) => Err(ArgError(format!("unknown command {other:?}\n\n{USAGE}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parse_scheme_all_names() {
        assert_eq!(parse_scheme("tfss").unwrap().name(), "TFSS");
        assert_eq!(parse_scheme("css:32").unwrap(), SchemeKind::Css { k: 32 });
        assert_eq!(parse_scheme("fiss:5").unwrap(), SchemeKind::Fiss { sigma: 5 });
        assert_eq!(parse_scheme("dtss").unwrap(), SchemeKind::Dtss);
        assert!(parse_scheme("bogus").is_err());
        assert!(parse_scheme("css:bogus").is_err());
    }

    #[test]
    fn chunks_command_prints_table1_row() {
        let out = cmd_chunks(&args("chunks tfss --iters 1000 --pes 4")).unwrap();
        assert!(out.contains("113 113 113 113 81 81 81 81"), "{out}");
        assert!(out.contains("scheduling steps: 14"));
    }

    #[test]
    fn chunks_command_with_powers() {
        let out = cmd_chunks(&args("chunks dtss --iters 1000 --powers 2.65,1")).unwrap();
        assert!(out.contains("PE1"));
        assert!(out.contains("PE2"));
    }

    #[test]
    fn chunks_requires_scheme() {
        assert!(cmd_chunks(&args("chunks")).is_err());
    }

    #[test]
    fn simulate_small_run() {
        let out =
            cmd_simulate(&args("simulate dtss --width 200 --height 100 --fast 1 --slow 1"))
                .unwrap();
        assert!(out.contains("T_p ="), "{out}");
        assert!(out.contains("DTSS"));
    }

    #[test]
    fn simulate_sharded_grant_model() {
        let out = cmd_simulate(&args(
            "simulate fss --width 200 --height 100 --fast 2 --slow 2 --shards 4",
        ))
        .unwrap();
        assert!(out.contains("4 shards"), "{out}");
        assert!(out.contains("leased grant path"));
        assert!(out.contains("T_p ="));

        let selfs = cmd_simulate(&args(
            "simulate gss --width 200 --height 100 --fast 2 --slow 2 --shards 2 --self-sched",
        ))
        .unwrap();
        assert!(selfs.contains("self-calculated grant path"), "{selfs}");
        assert!(!selfs.contains("self-grants = 0"), "{selfs}");
    }

    #[test]
    fn simulate_sharded_rejects_bad_combos() {
        assert!(cmd_simulate(&args("simulate wf --shards 2")).is_err());
        assert!(cmd_simulate(&args("simulate fss --shards 0")).is_err());
        assert!(cmd_simulate(&args("simulate fss --shards 2 --nondedicated")).is_err());
        assert!(
            cmd_simulate(&args("simulate fss --shards 2 --scenario scenarios/x.scn")).is_err()
        );
    }

    #[test]
    fn simulate_trees() {
        let out = cmd_simulate(&args(
            "simulate trees-weighted --width 200 --height 100 --fast 1 --slow 1",
        ))
        .unwrap();
        assert!(out.contains("TreeS"), "{out}");
    }

    #[test]
    fn verify_serve_engines_report_clean_json() {
        // Tiny grids: the full-scale run belongs to the release CLI in
        // CI, not the debug-profile unit suite.
        let out = cmd_verify(&args(
            "verify --serve --quick --histories 1 --interleavings 50 --inputs 200 --json",
        ))
        .unwrap();
        assert!(out.contains("Journal crash-point enumeration"), "{out}");
        assert!(out.contains("Serve-scheduler interleaving exploration"));
        assert!(out.contains("Protocol decode fuzzing"));
        assert!(out.contains("\"holds\": true"));
        assert!(out.contains("verification OK"));
        // A single-engine run emits just that engine's section.
        let one = cmd_verify(&args("verify --fuzz --quick --inputs 100 --json")).unwrap();
        assert!(one.contains("\"fuzz\""), "{one}");
        assert!(!one.contains("crash_points"));
    }

    #[test]
    fn run_small_real_execution() {
        let out = cmd_run(&args("run tfss --width 120 --height 60 --fast 1 --slow 1")).unwrap();
        assert!(out.contains("TFSS"), "{out}");
        assert!(out.contains("T_p ="));
    }

    #[test]
    fn master_and_worker_processes_cooperate() {
        // Same code path the real processes use, driven by threads:
        // the master command blocks accepting; two worker commands dial
        // in, compute, and terminate.
        let port = {
            // Grab a free port, then release it for the master command.
            let l = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
            l.local_addr().unwrap().port()
        };
        let margs = args(&format!(
            "master tfss --port {port} --workers 2 --width 120 --height 60"
        ));
        let master = std::thread::spawn(move || cmd_master(&margs).unwrap());
        std::thread::sleep(std::time::Duration::from_millis(100));
        let workers: Vec<_> = (0..2)
            .map(|i| {
                let wargs = args(&format!(
                    "worker --connect 127.0.0.1:{port} --id {i} --slowdown {} --width 120 --height 60",
                    i + 1
                ));
                std::thread::spawn(move || cmd_worker(&wargs).unwrap())
            })
            .collect();
        let mout = master.join().unwrap();
        assert!(mout.contains("120 of 120 results collected"), "{mout}");
        for w in workers {
            let wout = w.join().unwrap();
            assert!(wout.contains("iterations"), "{wout}");
        }
    }

    #[test]
    fn predict_reports_stats() {
        let out = cmd_predict(&args("predict tfss --iters 1000 --pes 4")).unwrap();
        assert!(out.contains("scheduling steps : 14"), "{out}");
        assert!(out.contains("first 113"), "{out}");
        let out = cmd_predict(&args("predict tss --iters 1000 --pes 4")).unwrap();
        assert!(out.contains("closed-form steps: 16"), "{out}");
    }

    #[test]
    fn trace_sim_writes_a_valid_chrome_trace() {
        let dir = std::env::temp_dir().join(format!("lss-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let out = cmd_trace(&args(&format!(
            "trace --scheme tfss --workload mandelbrot --width 120 --height 60 --out {}",
            path.display()
        )))
        .unwrap();
        assert!(out.contains("TFSS"), "{out}");
        assert!(out.contains("validated:"), "{out}");
        // The validate mode accepts its own output.
        let check =
            cmd_trace(&args(&format!("trace --validate {}", path.display()))).unwrap();
        assert!(check.contains("well-formed Chrome trace"), "{check}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_summary_reconciles_breakdowns() {
        let out = cmd_trace(&args(
            "trace --scheme gss --workload uniform --iters 200 --cost 10000 --format summary",
        ))
        .unwrap();
        assert!(out.contains("makespan"), "{out}");
        assert!(out.contains("T_com (trace/report)"), "{out}");
        // In the simulator the reconciliation is exact, so the two
        // halves of every cell render identically.
        for line in out.lines().filter(|l| l.contains('/') && l.contains('.')) {
            for cell in line.split_whitespace().filter(|c| c.contains('/')) {
                if let Some((a, b)) = cell.split_once('/') {
                    if a.parse::<f64>().is_ok() && b.parse::<f64>().is_ok() {
                        assert_eq!(a, b, "trace/report cells differ: {cell} in {line}");
                    }
                }
            }
        }
    }

    #[test]
    fn trace_runtime_emits_monotonic_clock() {
        let out = cmd_trace(&args(
            "trace --scheme css:8 --workload uniform --iters 60 --cost 200 --runtime \
             --fast 1 --slow 1 --format prom",
        ))
        .unwrap();
        assert!(out.contains("lss_trace_events_total"), "{out}");
        assert!(out.contains("clock=\"monotonic\"") || out.contains("monotonic"), "{out}");
    }

    #[test]
    fn trace_rejects_bad_flags() {
        assert!(cmd_trace(&args("trace --workload bogus")).is_err());
        assert!(cmd_trace(&args("trace --format bogus")).is_err());
        assert!(cmd_trace(&args("trace --validate /nonexistent/file.json")).is_err());
        assert!(cmd_trace(&args("trace --fast 0 --slow 0")).is_err());
    }

    #[test]
    fn worker_rejects_bad_address() {
        assert!(cmd_worker(&args("worker --connect nonsense --id 0")).is_err());
        assert!(cmd_worker(&args("worker --id 0")).is_err());
    }

    #[test]
    fn serve_submit_jobs_over_loopback_tcp() {
        let port = {
            let l = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
            l.local_addr().unwrap().port()
        };
        let sargs = args(&format!(
            "serve --port {port} --workers 2 --local-workers --jobs-limit 3 --batch 4"
        ));
        let server = std::thread::spawn(move || cmd_serve(&sargs).unwrap());
        std::thread::sleep(std::time::Duration::from_millis(150));
        let sout = cmd_submit(&args(&format!(
            "submit dtss --connect 127.0.0.1:{port} --iters 400 --cost 5 --count 3 --wait"
        )))
        .unwrap();
        assert!(sout.contains("submitted job 1"), "{sout}");
        assert!(sout.contains("submitted job 3"), "{sout}");
        let out = server.join().unwrap();
        assert!(out.contains("3 jobs completed"), "{out}");
        assert!(out.contains("job 1 [done]"), "{out}");
    }

    #[test]
    fn jobs_command_lists_and_drains() {
        let port = {
            let l = std::net::TcpListener::bind(("127.0.0.1", 0)).unwrap();
            l.local_addr().unwrap().port()
        };
        let sargs = args(&format!("serve --port {port} --workers 1 --local-workers"));
        let server = std::thread::spawn(move || cmd_serve(&sargs).unwrap());
        std::thread::sleep(std::time::Duration::from_millis(150));
        let connect = format!("127.0.0.1:{port}");
        cmd_submit(&args(&format!(
            "submit dtss --connect {connect} --iters 2000 --cost 5 --priority 3"
        )))
        .unwrap();
        let jout = cmd_jobs(&args(&format!("jobs --connect {connect}"))).unwrap();
        assert!(jout.contains("1 job(s)"), "{jout}");
        assert!(jout.contains('3'), "{jout}");
        let dout = cmd_jobs(&args(&format!("jobs --connect {connect} --drain"))).unwrap();
        assert!(dout.contains("drain requested"), "{dout}");
        let out = server.join().unwrap();
        assert!(out.contains("1 jobs completed"), "{out}");
    }

    #[test]
    fn submit_rejects_bad_flags() {
        assert!(cmd_submit(&args("submit dtss")).is_err(), "missing --connect");
        assert!(cmd_submit(&args("submit bogus --connect 127.0.0.1:1")).is_err());
        assert!(cmd_jobs(&args("jobs")).is_err(), "missing --connect");
    }

    #[test]
    fn dispatch_help_and_errors() {
        assert!(dispatch(&args("")).unwrap().contains("USAGE"));
        assert!(dispatch(&args("help")).unwrap().contains("USAGE"));
        assert!(dispatch(&args("schemes")).unwrap().contains("tfss"));
        assert!(dispatch(&args("frobnicate")).is_err());
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn chunks_zero_pes_is_a_clean_error() {
        let e = cmd_chunks(&args("chunks tss --pes 0")).unwrap_err();
        assert!(e.0.contains("at least one PE"), "{e}");
    }

    #[test]
    fn predict_zero_pes_is_a_clean_error() {
        assert!(cmd_predict(&args("predict tss --pes 0")).is_err());
    }
}
