//! Entry point of the `lss` binary.

use lss_cli::args::Args;
use lss_cli::commands::dispatch;

fn main() {
    let args = Args::parse(std::env::args().skip(1));
    match dispatch(&args) {
        Ok(output) => print!("{output}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
