//! Discrete-event simulation of the master–slave self-scheduling
//! protocol (§5 of the paper).
//!
//! The simulated protocol is exactly the paper's implementation:
//!
//! 1. An idle slave sends a request to the master. Every request except
//!    the first **piggy-backs the result data of the previous chunk**
//!    (§5: this overlaps computation with communication and beat
//!    collect-at-the-end in the authors' tests).
//! 2. The master serves requests in arrival order, one at a time — it
//!    is busy for the receive time of the piggy-backed payload plus a
//!    fixed per-request service time, which is what makes slaves
//!    "contend for master access".
//! 3. The reply carries the interval of iterations to execute (or a
//!    terminate notice). The slave computes at `speed / Q(t)` under its
//!    load trace, then goes to 1.
//!
//! Per-slave accounting matches the tables: wire time → `T_com`,
//! master queueing/service and terminal idling → `T_wait`, execution →
//! `T_comp`; `T_p` is the time the last slave terminates (the
//! master-observed makespan).

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use lss_core::chunk::Chunk;
use lss_core::fault::{ChaosRng, FaultPlan, LeaseConfig};
use lss_core::master::{Assignment, Master, MasterConfig};
use lss_core::power::AcpConfig;
use lss_core::SchemeKind;
use lss_metrics::breakdown::{RunReport, TimeBreakdown};
use lss_metrics::fault::{FaultEvent, FaultKind, FaultLog};
use lss_trace::{
    ClockDomain, EventKind as TraceKind, SharedSink, Trace, TraceEvent, TraceMeta,
};
use lss_workloads::Workload;

use crate::cluster::{ClusterSpec, Network};
use crate::load::LoadTrace;
use crate::time::SimTime;

/// Configuration of one simulated run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The cluster to run on.
    pub cluster: ClusterSpec,
    /// The scheduling scheme under test.
    pub scheme: SchemeKind,
    /// ACP derivation rule for the distributed schemes.
    pub acp: AcpConfig,
    /// Size of a request message (sans piggy-backed payload).
    pub request_bytes: u64,
    /// Size of a reply (chunk descriptor / terminate notice).
    pub reply_bytes: u64,
    /// How long an `Unavailable` slave waits before asking again.
    pub retry_interval: SimTime,
    /// Hard cap on simulated time — exceeding it panics (livelock
    /// guard; generous by default).
    pub max_sim_time: SimTime,
    /// Override for the distributed schemes' re-plan threshold
    /// (`None` = the paper's 0.5; `Some(1.0)` disables re-planning —
    /// the ablation baseline).
    pub replan_threshold: Option<f64>,
    /// Per-slave startup cost (process launch, MPI init) before the
    /// first request is sent, *scaled by the slave's run-queue length*
    /// — a loaded machine is proportionally slower to join. This is
    /// why, on the paper's testbed, the decreasing-chunk schemes (TSS)
    /// protect loaded PEs: their late first requests draw the smaller
    /// chunks.
    pub startup_delay: SimTime,
    /// Maximum extra per-message latency, drawn deterministically from
    /// `seed` (0 = no jitter). A real LAN's timing noise decides which
    /// PE wins races for chunks; experiments average several seeds
    /// rather than reporting one razor-edge deterministic sample.
    pub jitter: SimTime,
    /// Seed for the jitter stream.
    pub seed: u64,
    /// Per-slave chaos plans (empty = every slave healthy). When any
    /// plan injects a fault the master switches to its lease/requeue
    /// path and the report carries a [`FaultLog`].
    pub faults: Vec<FaultPlan>,
    /// Lease policy override for chaos runs (`None` = derived from the
    /// workload's mean iteration cost and the slowest PE).
    pub lease: Option<LeaseConfig>,
}

impl SimConfig {
    /// A config with the paper's message sizes and sane guards.
    pub fn new(cluster: ClusterSpec, scheme: SchemeKind) -> Self {
        SimConfig {
            cluster,
            scheme,
            acp: AcpConfig::PAPER,
            request_bytes: 32,
            reply_bytes: 32,
            retry_interval: SimTime::from_millis(250),
            max_sim_time: SimTime::from_secs_f64(1e5),
            replan_threshold: None,
            startup_delay: SimTime::from_millis(100),
            jitter: SimTime::ZERO,
            seed: 0,
            faults: Vec::new(),
            lease: None,
        }
    }

    /// Enables LAN timing noise: up to `jitter` extra latency per
    /// message, deterministic in `seed`.
    pub fn with_jitter(mut self, jitter: SimTime, seed: u64) -> Self {
        self.jitter = jitter;
        self.seed = seed;
        self
    }

    /// Injects per-slave chaos (one [`FaultPlan`] per slave).
    pub fn with_faults(mut self, faults: Vec<FaultPlan>) -> Self {
        self.faults = faults;
        self
    }

    /// Overrides the lease policy used when faults are injected.
    pub fn with_lease(mut self, lease: LeaseConfig) -> Self {
        self.lease = Some(lease);
        self
    }
}

/// SplitMix64 — cheap deterministic per-message jitter stream.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Event {
    /// A slave's request (with piggy-back) reached the master.
    RequestArrive(usize),
    /// The master finished servicing a slave's request.
    ServiceDone(usize),
    /// The master's reply reached the slave.
    ReplyArrive(usize),
    /// The slave finished computing its current chunk.
    ComputeDone(usize),
    /// An unavailable slave's back-off timer fired.
    RetryFire(usize),
    /// A computing slave's liveness heartbeat reached the master
    /// (chaos runs only).
    HeartbeatArrive(usize),
    /// The master's periodic lease audit fired (chaos runs only).
    LeaseCheck,
}

#[derive(Debug, Default, Clone)]
struct SlaveState {
    t_com: SimTime,
    t_wait: SimTime,
    t_comp: SimTime,
    /// When the in-flight request arrived at the master.
    arrival: SimTime,
    /// Piggy-backed payload bytes on the in-flight request.
    inbound_piggy: u64,
    /// Reply contents in flight towards the slave (a duplicated
    /// request draws two replies).
    pending: VecDeque<Assignment>,
    /// Chunk currently being computed.
    current_chunk: Option<Chunk>,
    finished: bool,
    finish_time: SimTime,
    /// Chunks this slave has finished computing (chaos bookkeeping).
    chunks_done: u64,
    /// Completed chunks whose results ride on upcoming requests (a
    /// duplicated request carries the same completion twice).
    piggy_chunks: VecDeque<Chunk>,
    /// Crashed or hung: emits no further events, ignores replies.
    down: bool,
    /// A heartbeat chain is already scheduled for this slave.
    hb_active: bool,
    /// The one-shot disconnect plan has already fired.
    disconnect_done: bool,
    /// Degradation onset has been logged.
    degrade_logged: bool,
}

/// One chunk's life on a PE: which iterations computed when. The
/// sequence of spans is the data behind a Gantt view of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkSpan {
    /// Slave index (`PE_{pe+1}` in table terms).
    pub pe: usize,
    /// The iterations computed.
    pub chunk: Chunk,
    /// Computation start (the reply arrived).
    pub start: SimTime,
    /// Computation end.
    pub end: SimTime,
}

/// Appends a fault event to the log and mirrors it onto the trace
/// timeline (for the kinds the traced master does not already emit).
fn log_fault(faults: &mut FaultLog, sink: &SharedSink, ev: FaultEvent) {
    if sink.enabled() {
        if let Some(t) = ev.to_trace() {
            sink.record(t);
        }
    }
    faults.push(ev);
}

/// Runs one scheduled loop execution and reports the paper's metrics.
///
/// `traces[i]` is slave `i`'s run-queue trace (use
/// [`LoadTrace::dedicated`] for the dedicated case).
///
/// # Panics
/// If `traces.len()` differs from the number of slaves, or if the
/// simulation exceeds `max_sim_time` (livelock guard).
pub fn simulate(cfg: &SimConfig, workload: &dyn Workload, traces: &[LoadTrace]) -> RunReport {
    simulate_with_timeline(cfg, workload, traces).0
}

/// Like [`simulate`], additionally returning the per-chunk compute
/// spans in assignment order — the data for a Gantt chart of the run.
pub fn simulate_with_timeline(
    cfg: &SimConfig,
    workload: &dyn Workload,
    traces: &[LoadTrace],
) -> (RunReport, Vec<ChunkSpan>) {
    let (report, spans, _) = simulate_inner(cfg, workload, traces, SharedSink::disabled());
    (report, spans)
}

/// Like [`simulate_with_timeline`], additionally recording the full
/// chunk-lifecycle event stream ([`ClockDomain::Logical`] timestamps
/// from the virtual clock). The trace's accounting deltas sum to the
/// report's `T_com/T_wait/T_comp` exactly — both sides accumulate the
/// same integer nanoseconds and convert to seconds once.
pub fn simulate_traced(
    cfg: &SimConfig,
    workload: &dyn Workload,
    traces: &[LoadTrace],
) -> (RunReport, Vec<ChunkSpan>, Trace) {
    simulate_inner(cfg, workload, traces, SharedSink::recording())
}

fn simulate_inner(
    cfg: &SimConfig,
    workload: &dyn Workload,
    traces: &[LoadTrace],
    sink: SharedSink,
) -> (RunReport, Vec<ChunkSpan>, Trace) {
    let p = cfg.cluster.num_slaves();
    assert_eq!(traces.len(), p, "need one load trace per slave");

    let plans: Vec<FaultPlan> = if cfg.faults.is_empty() {
        vec![FaultPlan::healthy(); p]
    } else {
        assert_eq!(cfg.faults.len(), p, "need one fault plan per slave");
        cfg.faults.clone()
    };
    // Chaos runs use the lease-audited master path; healthy runs keep
    // the legacy grant path bit-for-bit (simulator regression parity).
    let chaos = plans.iter().any(|f| !f.is_healthy());

    let initial_q: Vec<u32> = traces.iter().map(|t| t.q_at(SimTime::ZERO)).collect();
    let mut master = Master::new(MasterConfig {
        scheme: cfg.scheme,
        total: workload.len(),
        powers: cfg.cluster.virtual_powers(),
        initial_q,
        acp: cfg.acp,
    });
    if let Some(t) = cfg.replan_threshold {
        master.set_replan_threshold(t);
    }
    if sink.enabled() {
        // The master emits grant/dedup/lapse events itself on the
        // lease-aware (chaos) path; engine-side emission below covers
        // the healthy legacy path.
        master.set_trace_sink(Box::new(sink.clone()));
    }
    let mut faults = FaultLog::new();
    let mut rngs: Vec<ChaosRng> = plans
        .iter()
        .enumerate()
        .map(|(i, f)| ChaosRng::new(f.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        .collect();
    // Half a lease base between liveness pings, like the runtime's
    // compute-loop heartbeats.
    let lease_cfg = cfg.lease.unwrap_or_else(|| {
        let slowest = cfg
            .cluster
            .slaves
            .iter()
            .map(|s| s.speed)
            .fold(f64::INFINITY, f64::min);
        let mean_cost = if workload.is_empty() {
            0.0
        } else {
            workload.total_cost() as f64 / workload.len() as f64
        };
        LeaseConfig {
            base_ticks: 2_000_000_000,
            default_ticks_per_iter: ((mean_cost / slowest * 1e9).ceil() as u64).max(1),
            grace: 8.0,
            dead_after_ticks: 2_000_000_000,
            max_speculations: 2,
        }
    });
    let hb_every = SimTime(lease_cfg.base_ticks / 2);
    if chaos {
        master.set_lease_config(lease_cfg);
    }

    let mut slaves = vec![SlaveState::default(); p];
    let mut heap: BinaryHeap<Reverse<(SimTime, u64, Event)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let push = |heap: &mut BinaryHeap<_>, t: SimTime, e: Event, seq: &mut u64| {
        heap.push(Reverse((t, *seq, e)));
        *seq += 1;
    };
    // Deterministic per-message LAN noise in [0, jitter).
    let mut jseq = 0u64;
    let jit = |jseq: &mut u64| -> SimTime {
        *jseq += 1;
        if cfg.jitter.as_nanos() == 0 {
            SimTime::ZERO
        } else {
            SimTime(splitmix64(cfg.seed ^ *jseq) % cfg.jitter.as_nanos())
        }
    };
    // Shared-segment contention (the slow slaves' 10 Mbit hub).
    let mut net = Network::new();

    // Kick-off: every slave requests once its process has started —
    // loaded machines join later (startup shares the CPU).
    for (s, slave) in slaves.iter_mut().enumerate() {
        let q0 = traces[s].q_at(SimTime::ZERO) as u64;
        let start = SimTime(cfg.startup_delay.as_nanos() * q0);
        let (arrival, com) =
            net.transfer(&cfg.cluster.slaves[s], cfg.request_bytes, start);
        let j = jit(&mut jseq);
        slave.t_wait += start; // not yet joined — counts as idle
        slave.t_com += com + j;
        slave.inbound_piggy = 0;
        if sink.enabled() {
            sink.record(
                TraceEvent::new(start.as_nanos(), TraceKind::WorkerConnected).on_worker(s),
            );
            if start.as_nanos() > 0 {
                sink.record(
                    TraceEvent::new(start.as_nanos(), TraceKind::Wait { ns: start.as_nanos() })
                        .on_worker(s),
                );
            }
            sink.record(
                TraceEvent::new(
                    (arrival + j).as_nanos(),
                    TraceKind::Comm { ns: (com + j).as_nanos() },
                )
                .on_worker(s),
            );
        }
        push(&mut heap, arrival + j, Event::RequestArrive(s), &mut seq);
    }

    let mut master_busy = false;
    let mut master_queue: VecDeque<usize> = VecDeque::new();
    let mut timeline: Vec<ChunkSpan> = Vec::new();
    // Earliest scheduled lease audit, so grants don't flood the heap.
    let mut lease_check_at: Option<SimTime> = None;

    while let Some(Reverse((now, _, event))) = heap.pop() {
        assert!(
            now <= cfg.max_sim_time,
            "simulation exceeded {} — scheduling livelock?",
            cfg.max_sim_time
        );
        match event {
            Event::RequestArrive(s) => {
                slaves[s].arrival = now;
                master_queue.push_back(s);
                if !master_busy {
                    let s = master_queue.pop_front().expect("just pushed");
                    master_busy = true;
                    let dur = cfg.cluster.master.occupancy(slaves[s].inbound_piggy);
                    push(&mut heap, now + dur, Event::ServiceDone(s), &mut seq);
                }
            }
            Event::ServiceDone(s) => {
                let q = traces[s].q_at(now);
                let assignment = if chaos {
                    let nowns = now.as_nanos();
                    let was_dead = master.worker_is_dead(s);
                    if let Some(c) = slaves[s].piggy_chunks.pop_front() {
                        let outcome = master.record_completion(s, c, nowns);
                        if outcome.duplicate {
                            log_fault(
                                &mut faults,
                                &sink,
                                FaultEvent::new(
                                    now.as_secs_f64(),
                                    FaultKind::DuplicateDropped,
                                    "result already delivered; dropped",
                                )
                                .on_worker(s)
                                .on_chunk(c.start, c.len),
                            );
                        }
                    }
                    let spec_before = master.speculative_grants();
                    let a = master.grant_with_lease(s, q, nowns);
                    if was_dead {
                        log_fault(
                            &mut faults,
                            &sink,
                            FaultEvent::new(
                                now.as_secs_f64(),
                                FaultKind::Recovered,
                                "presumed-dead slave reported back",
                            )
                            .on_worker(s),
                        );
                    }
                    if master.speculative_grants() > spec_before {
                        if let Assignment::Chunk(c) = a {
                            log_fault(
                                &mut faults,
                                &sink,
                                FaultEvent::new(
                                    now.as_secs_f64(),
                                    FaultKind::Speculated,
                                    "speculative re-execution near end of loop",
                                )
                                .on_worker(s)
                                .on_chunk(c.start, c.len),
                            );
                        }
                    }
                    a
                } else {
                    // Healthy legacy path: the master takes no clock
                    // here, so the engine emits the grant events.
                    let plans_before = master.plans_made();
                    let a = master.handle_request(s, q);
                    if sink.enabled() {
                        let plans_after = master.plans_made();
                        if plans_after != plans_before {
                            sink.record(
                                TraceEvent::new(
                                    now.as_nanos(),
                                    TraceKind::Replanned { plan: plans_after },
                                )
                                .on_worker(s),
                            );
                        }
                        if let Assignment::Chunk(c) = a {
                            sink.record(
                                TraceEvent::new(now.as_nanos(), TraceKind::Planned)
                                    .on_chunk(c.start, c.len),
                            );
                            sink.record(
                                TraceEvent::new(
                                    now.as_nanos(),
                                    TraceKind::Granted {
                                        speculative: false,
                                        requeued: false,
                                        retransmit: false,
                                    },
                                )
                                .on_worker(s)
                                .on_chunk(c.start, c.len),
                            );
                        }
                    }
                    a
                };
                // Queueing + receive + service all count as waiting on
                // the master.
                let queued = now - slaves[s].arrival;
                slaves[s].t_wait += queued;
                let (arrival, com) = net.transfer(&cfg.cluster.slaves[s], cfg.reply_bytes, now);
                let j = jit(&mut jseq);
                slaves[s].t_com += com + j;
                if sink.enabled() {
                    if queued.as_nanos() > 0 {
                        sink.record(
                            TraceEvent::new(now.as_nanos(), TraceKind::Wait {
                                ns: queued.as_nanos(),
                            })
                            .on_worker(s),
                        );
                    }
                    sink.record(
                        TraceEvent::new((arrival + j).as_nanos(), TraceKind::Comm {
                            ns: (com + j).as_nanos(),
                        })
                        .on_worker(s),
                    );
                }
                slaves[s].pending.push_back(assignment);
                push(&mut heap, arrival + j, Event::ReplyArrive(s), &mut seq);
                if chaos {
                    if let Some(d) = master.next_lease_deadline() {
                        let t = SimTime(d.saturating_add(1));
                        if lease_check_at.is_none_or(|at| t < at || at <= now) {
                            lease_check_at = Some(t);
                            push(&mut heap, t, Event::LeaseCheck, &mut seq);
                        }
                    }
                }
                // Serve the next queued request, if any.
                if let Some(next) = master_queue.pop_front() {
                    let dur = cfg.cluster.master.occupancy(slaves[next].inbound_piggy);
                    push(&mut heap, now + dur, Event::ServiceDone(next), &mut seq);
                } else {
                    master_busy = false;
                }
            }
            Event::ReplyArrive(s) => {
                let assignment = slaves[s].pending.pop_front().expect("reply without assignment");
                // A down slave hears nothing; a busy slave drops the
                // extra reply a duplicated request drew (the lease makes
                // the re-grant idempotent, so nothing is lost).
                if slaves[s].down || (chaos && (slaves[s].current_chunk.is_some() || slaves[s].finished)) {
                    continue;
                }
                match assignment {
                    Assignment::Chunk(c) => {
                        let plan = &plans[s];
                        if plan.crash_after_chunks == Some(slaves[s].chunks_done) {
                            slaves[s].down = true;
                            log_fault(
                                &mut faults,
                                &sink,
                                FaultEvent::new(
                                    now.as_secs_f64(),
                                    FaultKind::Injected,
                                    "slave crashed on chunk receipt",
                                )
                                .on_worker(s)
                                .on_chunk(c.start, c.len),
                            );
                            continue;
                        }
                        if plan.hang_after_chunks == Some(slaves[s].chunks_done) {
                            slaves[s].down = true;
                            log_fault(
                                &mut faults,
                                &sink,
                                FaultEvent::new(
                                    now.as_secs_f64(),
                                    FaultKind::Injected,
                                    "slave hung holding the chunk",
                                )
                                .on_worker(s)
                                .on_chunk(c.start, c.len),
                            );
                            continue;
                        }
                        let factor = plan.degrade_factor(slaves[s].chunks_done) as u64;
                        if factor > 1 && !slaves[s].degrade_logged {
                            slaves[s].degrade_logged = true;
                            log_fault(
                                &mut faults,
                                &sink,
                                FaultEvent::new(
                                    now.as_secs_f64(),
                                    FaultKind::Injected,
                                    format!("slave degraded x{factor}"),
                                )
                                .on_worker(s),
                            );
                        }
                        let cost: u64 = workload.cost_range(c.start, c.len) * factor;
                        let fin = traces[s].compute_finish(now, cost, cfg.cluster.slaves[s].speed);
                        slaves[s].t_comp += fin - now;
                        slaves[s].current_chunk = Some(c);
                        timeline.push(ChunkSpan { pe: s, chunk: c, start: now, end: fin });
                        if sink.enabled() {
                            sink.record(
                                TraceEvent::new(now.as_nanos(), TraceKind::Started)
                                    .on_worker(s)
                                    .on_chunk(c.start, c.len),
                            );
                            sink.record(
                                TraceEvent::new(fin.as_nanos(), TraceKind::Comp {
                                    ns: (fin - now).as_nanos(),
                                })
                                .on_worker(s),
                            );
                        }
                        push(&mut heap, fin, Event::ComputeDone(s), &mut seq);
                        if chaos && !slaves[s].hb_active {
                            slaves[s].hb_active = true;
                            push(&mut heap, now + hb_every, Event::HeartbeatArrive(s), &mut seq);
                        }
                    }
                    Assignment::Retry => {
                        slaves[s].t_wait += cfg.retry_interval;
                        if sink.enabled() {
                            sink.record(
                                TraceEvent::new(now.as_nanos(), TraceKind::Wait {
                                    ns: cfg.retry_interval.as_nanos(),
                                })
                                .on_worker(s),
                            );
                        }
                        push(&mut heap, now + cfg.retry_interval, Event::RetryFire(s), &mut seq);
                    }
                    Assignment::Finished => {
                        slaves[s].finished = true;
                        slaves[s].finish_time = now;
                    }
                }
            }
            Event::ComputeDone(s) => {
                let c = slaves[s].current_chunk.take().expect("no chunk computed");
                slaves[s].chunks_done += 1;
                if chaos {
                    slaves[s].piggy_chunks.push_back(c);
                }
                if sink.enabled() {
                    sink.record(
                        TraceEvent::new(now.as_nanos(), TraceKind::Completed)
                            .on_worker(s)
                            .on_chunk(c.start, c.len),
                    );
                }
                let plan = &plans[s];
                // A planned mid-run disconnect: the result in flight is
                // lost with the link; the slave sits dark through the
                // outage, then rejoins with a bare request. The master
                // recovers the chunk through lease expiry + requeue.
                if let Some(d) = plan.disconnect {
                    if !slaves[s].disconnect_done && slaves[s].chunks_done >= d.after_chunks.max(1)
                    {
                        slaves[s].disconnect_done = true;
                        slaves[s].piggy_chunks.pop_back();
                        log_fault(
                            &mut faults,
                            &sink,
                            FaultEvent::new(
                                now.as_secs_f64(),
                                FaultKind::Injected,
                                "link dropped; result lost; redialling after outage",
                            )
                            .on_worker(s)
                            .on_chunk(c.start, c.len),
                        );
                        if sink.enabled() {
                            sink.record(
                                TraceEvent::new(now.as_nanos(), TraceKind::WorkerDisconnected)
                                    .on_worker(s),
                            );
                        }
                        let outage = SimTime(d.outage_ticks.max(1));
                        slaves[s].t_wait += outage;
                        let (arrival, com) =
                            net.transfer(&cfg.cluster.slaves[s], cfg.request_bytes, now + outage);
                        let j = jit(&mut jseq);
                        slaves[s].t_com += com + j;
                        slaves[s].inbound_piggy = 0;
                        if sink.enabled() {
                            sink.record(
                                TraceEvent::new((now + outage).as_nanos(), TraceKind::Wait {
                                    ns: outage.as_nanos(),
                                })
                                .on_worker(s),
                            );
                            sink.record(
                                TraceEvent::new(
                                    (now + outage).as_nanos(),
                                    TraceKind::WorkerRecovered,
                                )
                                .on_worker(s),
                            );
                            sink.record(
                                TraceEvent::new((arrival + j).as_nanos(), TraceKind::Comm {
                                    ns: (com + j).as_nanos(),
                                })
                                .on_worker(s),
                            );
                        }
                        push(&mut heap, arrival + j, Event::RequestArrive(s), &mut seq);
                        continue;
                    }
                }
                let piggy: u64 = workload.result_bytes_range(c.start, c.len);
                let (arrival, com) =
                    net.transfer(&cfg.cluster.slaves[s], cfg.request_bytes + piggy, now);
                let j = jit(&mut jseq);
                slaves[s].t_com += com + j;
                slaves[s].inbound_piggy = piggy;
                if sink.enabled() {
                    sink.record(
                        TraceEvent::new((arrival + j).as_nanos(), TraceKind::Comm {
                            ns: (com + j).as_nanos(),
                        })
                        .on_worker(s),
                    );
                }
                let mut at = arrival + j;
                if plan.net.delay_ticks > 0 {
                    at += SimTime(rngs[s].below(plan.net.delay_ticks));
                }
                if plan.net.drop_prob > 0.0 && rngs[s].chance(plan.net.drop_prob) {
                    // Lost on the wire; the slave times out and
                    // retransmits (result payload intact).
                    log_fault(
                        &mut faults,
                        &sink,
                        FaultEvent::new(
                            now.as_secs_f64(),
                            FaultKind::Injected,
                            "request dropped; retransmitted after timeout",
                        )
                        .on_worker(s),
                    );
                    slaves[s].t_wait += cfg.retry_interval;
                    if sink.enabled() {
                        sink.record(
                            TraceEvent::new(now.as_nanos(), TraceKind::Wait {
                                ns: cfg.retry_interval.as_nanos(),
                            })
                            .on_worker(s),
                        );
                    }
                    at += cfg.retry_interval;
                }
                if plan.net.dup_prob > 0.0 && rngs[s].chance(plan.net.dup_prob) {
                    // Delivered twice: the copy carries the same result
                    // payload, which the master must dedup.
                    log_fault(
                        &mut faults,
                        &sink,
                        FaultEvent::new(
                            now.as_secs_f64(),
                            FaultKind::Injected,
                            "request duplicated in flight",
                        )
                        .on_worker(s),
                    );
                    slaves[s].piggy_chunks.push_back(c);
                    push(&mut heap, at + SimTime(1), Event::RequestArrive(s), &mut seq);
                }
                push(&mut heap, at, Event::RequestArrive(s), &mut seq);
            }
            Event::RetryFire(s) => {
                let (arrival, com) =
                    net.transfer(&cfg.cluster.slaves[s], cfg.request_bytes, now);
                let j = jit(&mut jseq);
                slaves[s].t_com += com + j;
                slaves[s].inbound_piggy = 0;
                if sink.enabled() {
                    sink.record(
                        TraceEvent::new((arrival + j).as_nanos(), TraceKind::Comm {
                            ns: (com + j).as_nanos(),
                        })
                        .on_worker(s),
                    );
                }
                push(&mut heap, arrival + j, Event::RequestArrive(s), &mut seq);
            }
            Event::HeartbeatArrive(s) => {
                // Liveness ping from a computing slave; down slaves and
                // idle slaves let the chain lapse.
                if slaves[s].down || slaves[s].current_chunk.is_none() {
                    slaves[s].hb_active = false;
                } else {
                    master.note_heartbeat(s, now.as_nanos());
                    if sink.enabled() {
                        sink.record(
                            TraceEvent::new(now.as_nanos(), TraceKind::Heartbeat).on_worker(s),
                        );
                    }
                    push(&mut heap, now + hb_every, Event::HeartbeatArrive(s), &mut seq);
                }
            }
            Event::LeaseCheck => {
                lease_check_at = None;
                // NB: the traced master emits Lapsed/Requeued/WorkerDead
                // itself inside poll_leases; log_fault maps these kinds
                // to None so the timeline carries each exactly once.
                for e in master.poll_leases(now.as_nanos()) {
                    let c = e.lease.chunk;
                    log_fault(
                        &mut faults,
                        &sink,
                        FaultEvent::new(
                            now.as_secs_f64(),
                            FaultKind::LeaseExpired,
                            format!("lease lapsed on slave {}", e.lease.worker),
                        )
                        .on_worker(e.lease.worker)
                        .on_chunk(c.start, c.len),
                    );
                    if (c.start..c.end()).any(|i| !master.iteration_completed(i)) {
                        log_fault(
                            &mut faults,
                            &sink,
                            FaultEvent::new(
                                now.as_secs_f64(),
                                FaultKind::Requeued,
                                "chunk requeued for reassignment",
                            )
                            .on_worker(e.lease.worker)
                            .on_chunk(c.start, c.len),
                        );
                    }
                    if e.holder_dead {
                        log_fault(
                            &mut faults,
                            &sink,
                            FaultEvent::new(
                                now.as_secs_f64(),
                                FaultKind::WorkerDead,
                                "slave silent past the grace window; declared dead",
                            )
                            .on_worker(e.lease.worker),
                        );
                    }
                }
                if let Some(d) = master.next_lease_deadline() {
                    let t = SimTime(d.saturating_add(1));
                    if lease_check_at.is_none_or(|at| t < at) {
                        lease_check_at = Some(t);
                        push(&mut heap, t, Event::LeaseCheck, &mut seq);
                    }
                }
            }
        }
    }

    debug_assert!(
        slaves
            .iter()
            .zip(&plans)
            .all(|(s, f)| s.finished || !f.is_healthy()),
        "healthy slave never terminated"
    );
    let t_p = slaves
        .iter()
        .filter(|s| s.finished)
        .map(|s| s.finish_time)
        .max()
        .unwrap_or(SimTime::ZERO);
    // Early finishers idle until the master sees the last termination.
    for (i, s) in slaves.iter_mut().enumerate() {
        if s.finished {
            let tail = t_p.saturating_sub(s.finish_time);
            s.t_wait += tail;
            if sink.enabled() && tail.as_nanos() > 0 {
                sink.record(
                    TraceEvent::new(t_p.as_nanos(), TraceKind::Wait { ns: tail.as_nanos() })
                        .on_worker(i),
                );
            }
        }
    }

    let per_pe = slaves
        .iter()
        .map(|s| TimeBreakdown {
            t_com: s.t_com.as_secs_f64(),
            t_wait: s.t_wait.as_secs_f64(),
            t_comp: s.t_comp.as_secs_f64(),
        })
        .collect();
    let iterations = (0..p).map(|s| master.iterations_served(s)).collect();
    let report = RunReport::new(
        cfg.scheme.name(),
        per_pe,
        t_p.as_secs_f64(),
        master.total_scheduling_steps(),
        iterations,
    )
    .with_plans(master.plans_made())
    .with_faults(faults);
    let trace = sink.take(TraceMeta {
        scheme: cfg.scheme.name().to_string(),
        workers: p,
        total_iterations: workload.len(),
        clock: ClockDomain::Logical,
    });
    (report, timeline, trace)
}

/// The sequential baseline `T_1`: the whole loop on one dedicated PE of
/// the given speed, with no communication at all.
pub fn sequential_time(workload: &dyn Workload, speed: f64) -> f64 {
    assert!(speed > 0.0, "speed must be positive");
    workload.total_cost() as f64 / speed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterSpec, FAST_SPEED};
    use lss_workloads::{SyntheticWorkload, UniformLoop};

    fn uniform(iters: u64, cost: u64) -> UniformLoop {
        UniformLoop::new(iters, cost)
    }

    fn dedicated(p: usize) -> Vec<LoadTrace> {
        vec![LoadTrace::dedicated(); p]
    }

    #[test]
    fn homogeneous_css_splits_work_evenly() {
        let cluster = ClusterSpec::paper_mix(4, 0);
        let cfg = SimConfig::new(cluster, SchemeKind::Css { k: 10 });
        let w = uniform(400, 100_000);
        let r = simulate(&cfg, &w, &dedicated(4));
        let total: u64 = r.iterations.iter().sum();
        assert_eq!(total, 400);
        for &iters in &r.iterations {
            assert!((80..=120).contains(&iters), "{:?}", r.iterations);
        }
        // T_p ≈ total cost / aggregate speed, plus modest overhead.
        let ideal = 400.0 * 100_000.0 / (4.0 * FAST_SPEED);
        assert!(r.t_p > ideal && r.t_p < ideal * 1.5, "t_p {} ideal {ideal}", r.t_p);
    }

    #[test]
    fn time_accounting_is_consistent() {
        let cfg = SimConfig::new(ClusterSpec::paper_mix(2, 2), SchemeKind::Tss);
        let w = uniform(200, 50_000);
        let r = simulate(&cfg, &w, &dedicated(4));
        // After terminal-idle accounting every PE's time sums to ~T_p.
        for b in &r.per_pe {
            assert!(
                (b.total() - r.t_p).abs() < 0.05 * r.t_p + 1e-6,
                "breakdown {} vs t_p {}",
                b.total(),
                r.t_p
            );
        }
    }

    #[test]
    fn fast_pe_computes_more_under_self_scheduling() {
        let cfg = SimConfig::new(ClusterSpec::paper_mix(1, 1), SchemeKind::Css { k: 5 });
        let w = uniform(400, 100_000);
        let r = simulate(&cfg, &w, &dedicated(2));
        // Self-scheduling: the fast PE requests more often and ends up
        // with roughly speed-ratio more iterations.
        let ratio = r.iterations[0] as f64 / r.iterations[1].max(1) as f64;
        assert!(ratio > 1.8, "fast/slow iterations ratio {ratio}");
    }

    #[test]
    fn distributed_balances_better_than_simple_on_heterogeneous() {
        // Coarse tasks: the simple scheme's large equal first chunks
        // turn a slow PE into the straggler; the distributed scheme
        // scales chunks by ACP and avoids it (the Table 2 vs Table 3
        // effect).
        let w = uniform(160, 2_000_000);
        let simple = simulate(
            &SimConfig::new(ClusterSpec::paper_p8(), SchemeKind::Tss),
            &w,
            &dedicated(8),
        );
        let dist = simulate(
            &SimConfig::new(ClusterSpec::paper_p8(), SchemeKind::Dtss),
            &w,
            &dedicated(8),
        );
        assert!(
            dist.t_p < simple.t_p,
            "DTSS t_p {} !< TSS t_p {}",
            dist.t_p,
            simple.t_p
        );
        assert!(
            dist.comp_imbalance() <= simple.comp_imbalance() + 1e-9,
            "DTSS imbalance {} !<= TSS {}",
            dist.comp_imbalance(),
            simple.comp_imbalance()
        );
    }

    #[test]
    fn overload_slows_nonadaptive_more_than_adaptive() {
        let w = uniform(800, 200_000);
        let mut traces = dedicated(8);
        traces[0] = LoadTrace::paper_overloaded();
        traces[4] = LoadTrace::paper_overloaded();
        let ded_simple = simulate(
            &SimConfig::new(ClusterSpec::paper_p8(), SchemeKind::Fss),
            &w,
            &dedicated(8),
        );
        let non_simple = simulate(
            &SimConfig::new(ClusterSpec::paper_p8(), SchemeKind::Fss),
            &w,
            &traces,
        );
        let non_dist = simulate(
            &SimConfig::new(ClusterSpec::paper_p8(), SchemeKind::Dtss),
            &w,
            &traces,
        );
        assert!(non_simple.t_p > ded_simple.t_p, "overload must hurt");
        assert!(
            non_dist.t_p < non_simple.t_p,
            "DTSS {} should beat FSS {} when overloaded",
            non_dist.t_p,
            non_simple.t_p
        );
    }

    #[test]
    fn deterministic_runs() {
        let cfg = SimConfig::new(ClusterSpec::paper_p8(), SchemeKind::Tfss);
        let w = SyntheticWorkload::new((1..=300).map(|i| (i % 37 + 1) * 1000).collect());
        let a = simulate(&cfg, &w, &dedicated(8));
        let b = simulate(&cfg, &w, &dedicated(8));
        assert_eq!(a.t_p, b.t_p);
        assert_eq!(a.iterations, b.iterations);
        for (x, y) in a.per_pe.iter().zip(&b.per_pe) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn empty_workload_terminates_quickly() {
        let cfg = SimConfig::new(ClusterSpec::paper_mix(2, 0), SchemeKind::Tss);
        let w = uniform(0, 1);
        let r = simulate(&cfg, &w, &dedicated(2));
        assert_eq!(r.iterations, vec![0, 0]);
        // Startup + one request/reply round trip, nothing more.
        assert!(r.t_p < 0.5, "t_p {}", r.t_p);
    }

    #[test]
    fn single_slave_gets_everything() {
        let cfg = SimConfig::new(ClusterSpec::paper_mix(1, 0), SchemeKind::Gss { min_chunk: 1 });
        let w = uniform(100, 10_000);
        let r = simulate(&cfg, &w, &dedicated(1));
        assert_eq!(r.iterations, vec![100]);
    }

    #[test]
    fn sequential_time_is_cost_over_speed() {
        let w = uniform(10, 1000);
        assert!((sequential_time(&w, 1000.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn piggyback_shows_up_as_com_time() {
        // Huge result payloads on a slow link must dominate T_com.
        let w = SyntheticWorkload::with_result_bytes(vec![1_000; 50], 100_000);
        let cfg = SimConfig::new(ClusterSpec::paper_mix(0, 2), SchemeKind::Css { k: 5 });
        let r = simulate(&cfg, &w, &dedicated(2));
        let com: f64 = r.per_pe.iter().map(|b| b.t_com).sum();
        // 50 iterations × 100 kB at 1.25 MB/s = 4 s of wire time total.
        assert!(com > 3.0, "com {com}");
    }

    #[test]
    #[should_panic(expected = "one load trace per slave")]
    fn trace_count_checked() {
        let cfg = SimConfig::new(ClusterSpec::paper_mix(2, 0), SchemeKind::Tss);
        simulate(&cfg, &uniform(10, 10), &dedicated(1));
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use lss_core::SchemeKind;
    use lss_workloads::{SyntheticWorkload, Workload};

    #[test]
    #[ignore]
    fn debug_tss_nondedicated() {
        // Stand-in for the Mandelbrot 4000-col profile: uniform 105k.
        let w = SyntheticWorkload::with_result_bytes(vec![105_000; 4000], 4000);
        let mut traces = vec![LoadTrace::dedicated(); 8];
        traces[0] = LoadTrace::paper_overloaded();
        for t in traces.iter_mut().take(6).skip(3) {
            *t = LoadTrace::paper_overloaded();
        }
        for scheme in [SchemeKind::Tss, SchemeKind::Fss, SchemeKind::Fiss { sigma: 4 }] {
            let r = simulate(&SimConfig::new(ClusterSpec::paper_p8(), scheme), &w, &traces);
            println!("{}: t_p={:.1} iters={:?}", r.scheme, r.t_p, r.iterations);
            for (i, b) in r.per_pe.iter().enumerate() {
                println!("  PE{}: {}", i + 1, b.cell());
            }
        }
        let _ = w.total_cost();
    }
}

#[cfg(test)]
mod chaos_tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use lss_core::fault::NetFaults;
    use lss_core::SchemeKind;
    use lss_workloads::UniformLoop;

    fn dedicated(p: usize) -> Vec<LoadTrace> {
        vec![LoadTrace::dedicated(); p]
    }

    /// A tight lease: expire at 2x the predicted compute time. Healthy
    /// slaves stay safe through heartbeats (which extend the deadline),
    /// so only truly silent holders lapse.
    fn tight_lease() -> LeaseConfig {
        LeaseConfig {
            base_ticks: 2_000_000_000,
            default_ticks_per_iter: 50_000_000,
            grace: 2.0,
            dead_after_ticks: 1_000_000_000,
            max_speculations: 2,
        }
    }

    /// Every iteration appears in at least one computed span (the
    /// requeue path recovered whatever the faulty slave dropped).
    fn assert_covered(spans: &[ChunkSpan], total: u64) {
        let mut seen = vec![false; total as usize];
        for s in spans {
            for i in s.chunk.iter() {
                seen[i as usize] = true;
            }
        }
        let missing: Vec<usize> =
            seen.iter().enumerate().filter(|(_, &x)| !x).map(|(i, _)| i).collect();
        assert!(missing.is_empty(), "iterations never computed: {missing:?}");
    }

    #[test]
    fn crashed_slave_chunk_is_requeued_and_recovered() {
        let cfg = SimConfig::new(ClusterSpec::paper_mix(3, 0), SchemeKind::Tss)
            .with_faults(vec![
                FaultPlan::healthy(),
                FaultPlan::healthy(),
                FaultPlan::crash_after(1),
            ])
            .with_lease(tight_lease());
        // Enough work that the survivors are still busy when the lease
        // lapses — recovery must come from requeue, not end-of-loop
        // speculation.
        let w = UniformLoop::new(3000, 100_000);
        let (report, spans) = simulate_with_timeline(&cfg, &w, &dedicated(3));
        assert_covered(&spans, 3000);
        assert!(report.had_faults());
        assert!(
            report.faults.contains_sequence(&[FaultKind::LeaseExpired, FaultKind::Requeued]),
            "no expiry->requeue in:\n{}",
            report.faults.render()
        );
        assert!(report.faults.count(FaultKind::Injected) >= 1);
    }

    #[test]
    fn hung_slave_is_declared_dead() {
        let cfg = SimConfig::new(ClusterSpec::paper_mix(2, 1), SchemeKind::Fss)
            .with_faults(vec![
                FaultPlan::healthy(),
                FaultPlan::hang_after(0),
                FaultPlan::healthy(),
            ]);
        let w = UniformLoop::new(200, 100_000);
        let (report, spans) = simulate_with_timeline(&cfg, &w, &dedicated(3));
        assert_covered(&spans, 200);
        assert!(
            report.faults.count(FaultKind::WorkerDead) >= 1,
            "hung slave never declared dead:\n{}",
            report.faults.render()
        );
    }

    #[test]
    fn disconnected_slave_rejoins_and_its_lost_result_is_recomputed() {
        let cfg = SimConfig::new(ClusterSpec::paper_mix(2, 0), SchemeKind::Tss).with_faults(vec![
            FaultPlan::healthy(),
            // Dark long past the lease deadline, with enough remaining
            // work that the survivor hits the requeued chunk before the
            // speculative end-game.
            FaultPlan::reconnect_after(1, 60_000_000_000),
        ])
        .with_lease(tight_lease());
        let w = UniformLoop::new(4000, 100_000);
        let (report, spans) = simulate_with_timeline(&cfg, &w, &dedicated(2));
        assert_covered(&spans, 4000);
        assert!(
            report.faults.contains_sequence(&[FaultKind::LeaseExpired, FaultKind::Requeued]),
            "lost result never requeued:\n{}",
            report.faults.render()
        );
        assert!(
            report.faults.count(FaultKind::Recovered) >= 1,
            "rejoin never recorded:\n{}",
            report.faults.render()
        );
    }

    #[test]
    fn duplicated_requests_are_deduplicated() {
        let cfg = SimConfig::new(ClusterSpec::paper_mix(2, 0), SchemeKind::Css { k: 10 })
            .with_faults(vec![
                FaultPlan::healthy().with_net(NetFaults {
                    drop_prob: 0.0,
                    dup_prob: 1.0,
                    delay_ticks: 0,
                }),
                FaultPlan::healthy(),
            ]);
        let w = UniformLoop::new(100, 50_000);
        let (report, spans) = simulate_with_timeline(&cfg, &w, &dedicated(2));
        assert_covered(&spans, 100);
        assert!(
            report.faults.count(FaultKind::DuplicateDropped) >= 1,
            "no dedup recorded:\n{}",
            report.faults.render()
        );
    }

    #[test]
    fn dropped_requests_are_retransmitted_not_lost() {
        let cfg = SimConfig::new(ClusterSpec::paper_mix(2, 1), SchemeKind::Dtss).with_faults(vec![
            FaultPlan::healthy()
                .with_net(NetFaults { drop_prob: 0.4, dup_prob: 0.0, delay_ticks: 2_000_000 })
                .with_seed(7),
            FaultPlan::healthy(),
            FaultPlan::healthy(),
        ]);
        let w = UniformLoop::new(250, 80_000);
        let (_, spans) = simulate_with_timeline(&cfg, &w, &dedicated(3));
        assert_covered(&spans, 250);
    }

    #[test]
    fn degraded_slave_slows_but_nothing_is_lost() {
        let cfg = SimConfig::new(ClusterSpec::paper_mix(2, 0), SchemeKind::Tfss).with_faults(vec![
            FaultPlan::healthy(),
            FaultPlan::degrade_after(1, 4),
        ]);
        let w = UniformLoop::new(300, 100_000);
        let (report, spans) = simulate_with_timeline(&cfg, &w, &dedicated(2));
        assert_covered(&spans, 300);
        assert!(report.faults.count(FaultKind::Injected) >= 1);
        // The healthy slave absorbs the imbalance.
        assert!(report.iterations[0] > report.iterations[1], "{:?}", report.iterations);
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        let mk = || {
            SimConfig::new(ClusterSpec::paper_p8(), SchemeKind::Dtfss).with_faults(vec![
                FaultPlan::crash_after(2),
                FaultPlan::healthy()
                    .with_net(NetFaults { drop_prob: 0.2, dup_prob: 0.2, delay_ticks: 1_000_000 })
                    .with_seed(42),
                FaultPlan::hang_after(3),
                FaultPlan::degrade_after(2, 3),
                FaultPlan::healthy(),
                FaultPlan::healthy(),
                FaultPlan::healthy(),
                FaultPlan::reconnect_after(1, 3_000_000_000),
            ])
        };
        let w = UniformLoop::new(600, 60_000);
        let a = simulate(&mk(), &w, &dedicated(8));
        let b = simulate(&mk(), &w, &dedicated(8));
        assert_eq!(a.t_p, b.t_p);
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.faults.len(), b.faults.len());
    }

    #[test]
    fn healthy_runs_carry_no_fault_log() {
        let cfg = SimConfig::new(ClusterSpec::paper_mix(2, 1), SchemeKind::Tss);
        let w = UniformLoop::new(120, 50_000);
        let report = simulate(&cfg, &w, &dedicated(3));
        assert!(!report.had_faults());
        assert!(report.faults.is_empty());
    }

    #[test]
    #[should_panic(expected = "one fault plan per slave")]
    fn fault_plan_count_checked() {
        let cfg = SimConfig::new(ClusterSpec::paper_mix(2, 0), SchemeKind::Tss)
            .with_faults(vec![FaultPlan::healthy()]);
        simulate(&cfg, &UniformLoop::new(10, 10), &dedicated(2));
    }
}

#[cfg(test)]
mod traced_tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use lss_core::fault::{FaultPlan, NetFaults};
    use lss_core::SchemeKind;
    use lss_workloads::UniformLoop;

    #[test]
    fn traced_run_reconciles_with_report_exactly() {
        let cfg = SimConfig::new(ClusterSpec::paper_mix(2, 2), SchemeKind::Tfss);
        let w = UniformLoop::new(300, 40_000);
        let loads = vec![LoadTrace::dedicated(); 4];
        let (report, spans, trace) = simulate_traced(&cfg, &w, &loads);
        assert_eq!(trace.meta.workers, 4);
        assert_eq!(trace.meta.clock, ClockDomain::Logical);
        assert_eq!(trace.dropped, 0);

        // Satellite: trace-derived aggregates equal the report within
        // 1e-9 (they are in fact identical — same integer-ns sums).
        let derived = TimeBreakdown::all_from_trace(&trace);
        assert_eq!(derived.len(), report.per_pe.len());
        for (b, d) in report.per_pe.iter().zip(&derived) {
            assert!((b.t_com - d.t_com).abs() < 1e-9, "com {} vs {}", b.t_com, d.t_com);
            assert!((b.t_wait - d.t_wait).abs() < 1e-9, "wait {} vs {}", b.t_wait, d.t_wait);
            assert!((b.t_comp - d.t_comp).abs() < 1e-9, "comp {} vs {}", b.t_comp, d.t_comp);
        }

        // The trace's Started/Completed pairs reconstruct exactly the
        // ChunkSpan timeline.
        let lanes = lss_trace::gantt(&trace);
        assert_eq!(lanes.iter().map(|l| l.spans.len()).sum::<usize>(), spans.len());
        for span in &spans {
            let lane = &lanes[span.pe];
            assert!(
                lane.spans.iter().any(|s| s.chunk.start == span.chunk.start
                    && s.chunk.len == span.chunk.len
                    && s.start_ns == span.start.as_nanos()
                    && s.end_ns == span.end.as_nanos()),
                "span {span:?} missing from trace lanes"
            );
        }

        // Tracing must not perturb the simulated result.
        let (plain, plain_spans) = simulate_with_timeline(&cfg, &w, &loads);
        assert_eq!(plain.t_p, report.t_p);
        assert_eq!(plain.iterations, report.iterations);
        assert_eq!(plain_spans.len(), spans.len());
    }

    #[test]
    fn chaos_trace_reconciles_and_carries_fault_marks() {
        let cfg = SimConfig::new(ClusterSpec::paper_mix(3, 0), SchemeKind::Tss).with_faults(vec![
            FaultPlan::healthy(),
            FaultPlan::healthy()
                .with_net(NetFaults { drop_prob: 0.3, dup_prob: 0.3, delay_ticks: 1_000_000 })
                .with_seed(11),
            FaultPlan::crash_after(1),
        ]);
        let w = UniformLoop::new(900, 80_000);
        let loads = vec![LoadTrace::dedicated(); 3];
        let (report, _, trace) = simulate_traced(&cfg, &w, &loads);
        assert!(report.had_faults());
        // Injected chaos faults land on the same timeline…
        assert!(
            trace.count_kind(|k| matches!(k, lss_trace::EventKind::Fault { .. })) >= 1,
            "no injected-fault marks on the timeline"
        );
        // …and lease lapses appear exactly once (master-emitted).
        let lapses = trace.count_kind(|k| matches!(k, lss_trace::EventKind::Lapsed));
        let log_lapses = report
            .faults
            .events()
            .iter()
            .filter(|e| e.kind == lss_metrics::fault::FaultKind::LeaseExpired)
            .count();
        assert_eq!(lapses, log_lapses, "timeline lapses disagree with the fault log");
        // Accounting still reconciles under chaos.
        let derived = TimeBreakdown::all_from_trace(&trace);
        for (b, d) in report.per_pe.iter().zip(&derived) {
            assert!((b.t_com - d.t_com).abs() < 1e-9);
            assert!((b.t_wait - d.t_wait).abs() < 1e-9);
            assert!((b.t_comp - d.t_comp).abs() < 1e-9);
        }
    }
}

#[cfg(test)]
mod timeline_tests {
    use super::*;
    use crate::cluster::ClusterSpec;
    use lss_core::SchemeKind;
    use lss_workloads::UniformLoop;

    #[test]
    fn timeline_covers_every_iteration_once() {
        let cfg = SimConfig::new(ClusterSpec::paper_mix(2, 2), SchemeKind::Tfss);
        let w = UniformLoop::new(300, 40_000);
        let (report, spans) = simulate_with_timeline(&cfg, &w, &vec![LoadTrace::dedicated(); 4]);
        assert_eq!(spans.len() as u64, report.scheduling_steps);
        let mut seen = vec![false; 300];
        for s in &spans {
            assert!(s.start < s.end, "empty span {s:?}");
            assert!(s.end.as_secs_f64() <= report.t_p + 1e-9);
            for i in s.chunk.iter() {
                assert!(!seen[i as usize], "iteration {i} in two spans");
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn spans_on_one_pe_never_overlap() {
        let cfg = SimConfig::new(ClusterSpec::paper_p8(), SchemeKind::Dtss);
        let w = UniformLoop::new(500, 30_000);
        let (_, spans) = simulate_with_timeline(&cfg, &w, &vec![LoadTrace::dedicated(); 8]);
        for pe in 0..8 {
            let mut mine: Vec<_> = spans.iter().filter(|s| s.pe == pe).collect();
            mine.sort_by_key(|s| s.start);
            for w in mine.windows(2) {
                assert!(w[0].end <= w[1].start, "overlap on PE{pe}: {w:?}");
            }
        }
    }
}
