//! Simulated time: integer nanoseconds.
//!
//! Integer time keeps the event queue totally ordered and the whole
//! simulation bit-for-bit deterministic across platforms (no float
//! accumulation in the clock; floats only appear inside single-interval
//! conversions).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or duration of) simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from (non-negative, finite) seconds.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// Constructs from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Constructs from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// The value in seconds.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Nanosecond count.
    pub fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Saturating difference (useful when events race to zero).
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("negative sim time"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(SimTime::from_millis(2), SimTime::from_micros(2000));
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_millis(5);
        let b = SimTime::from_millis(3);
        assert_eq!((a + b).as_nanos(), 8_000_000);
        assert_eq!((a - b).as_nanos(), 2_000_000);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    #[should_panic]
    fn negative_subtraction_panics() {
        let _ = SimTime::from_millis(1) - SimTime::from_millis(2);
    }

    #[test]
    #[should_panic]
    fn negative_seconds_rejected() {
        SimTime::from_secs_f64(-0.1);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_millis(1));
        assert_eq!(SimTime::ZERO, SimTime::default());
    }

    #[test]
    fn display_format() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }
}
