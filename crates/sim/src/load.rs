//! Run-queue load traces — the *non-dedicated* condition.
//!
//! The DTSS model (§3.1) assumes *"a process running on a computer will
//! take an equal share of its computing resources"*: a PE whose
//! run-queue holds `Q` processes gives the parallel loop `speed / Q`.
//! `Q` always counts the loop process itself, so a dedicated PE has
//! `Q = 1` and the paper's overloaded PEs (two background
//! matrix-addition processes, §5.1) have `Q = 3`.

use crate::time::SimTime;

/// A piecewise-constant run-queue length over simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadTrace {
    /// `(from_time, q)` steps, sorted by time; first step is at 0.
    steps: Vec<(SimTime, u32)>,
}

impl LoadTrace {
    /// Dedicated PE: `Q = 1` forever.
    pub fn dedicated() -> Self {
        Self::constant(1)
    }

    /// Constant load: `Q = q` forever (`q` is clamped to ≥ 1 — the
    /// loop process itself is always in the queue).
    pub fn constant(q: u32) -> Self {
        LoadTrace {
            steps: vec![(SimTime::ZERO, q.max(1))],
        }
    }

    /// The paper's overloaded slave: the loop plus two matrix-addition
    /// hogs → `Q = 3` from the start.
    pub fn paper_overloaded() -> Self {
        Self::constant(3)
    }

    /// Builds a trace from explicit `(time, q)` steps. The steps are
    /// sorted; a step at time 0 is prepended with `Q = 1` if missing.
    pub fn from_steps(mut steps: Vec<(SimTime, u32)>) -> Self {
        steps.sort_by_key(|&(t, _)| t);
        for s in &mut steps {
            s.1 = s.1.max(1);
        }
        if steps.first().map(|&(t, _)| t) != Some(SimTime::ZERO) {
            steps.insert(0, (SimTime::ZERO, 1));
        }
        LoadTrace { steps }
    }

    /// The run-queue length at time `t`.
    pub fn q_at(&self, t: SimTime) -> u32 {
        match self.steps.binary_search_by_key(&t, |&(st, _)| st) {
            Ok(i) => self.steps[i].1,
            Err(0) => 1,
            Err(i) => self.steps[i - 1].1,
        }
    }

    /// When does a computation of `cost` basic operations finish if it
    /// starts at `start` on a PE of dedicated speed `speed`, given the
    /// equal-share rule `rate(t) = speed / Q(t)`?
    pub fn compute_finish(&self, start: SimTime, cost: u64, speed: f64) -> SimTime {
        assert!(speed > 0.0, "PE speed must be positive");
        let mut remaining = cost as f64;
        let mut now = start;
        // Index of the step governing `now`.
        let mut idx = match self.steps.binary_search_by_key(&now, |&(t, _)| t) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        loop {
            let q = self.steps[idx].1 as f64;
            let rate = speed / q; // ops per second
            let seg_end = self.steps.get(idx + 1).map(|&(t, _)| t);
            let dt_to_finish = remaining / rate; // seconds
            match seg_end {
                Some(end) if now + SimTime::from_secs_f64(dt_to_finish) > end => {
                    // Burn through the rest of this segment.
                    let seg_secs = (end - now).as_secs_f64();
                    remaining -= rate * seg_secs;
                    now = end;
                    idx += 1;
                }
                _ => {
                    return now + SimTime::from_secs_f64(dt_to_finish);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedicated_full_speed() {
        let t = LoadTrace::dedicated();
        // 1000 ops at 1000 ops/s = 1 s.
        let fin = t.compute_finish(SimTime::ZERO, 1000, 1000.0);
        assert!((fin.as_secs_f64() - 1.0).abs() < 1e-9);
        assert_eq!(t.q_at(SimTime::from_millis(500)), 1);
    }

    #[test]
    fn constant_load_divides_speed() {
        let t = LoadTrace::constant(4);
        let fin = t.compute_finish(SimTime::ZERO, 1000, 1000.0);
        assert!((fin.as_secs_f64() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn paper_overloaded_is_q3() {
        assert_eq!(LoadTrace::paper_overloaded().q_at(SimTime::ZERO), 3);
    }

    #[test]
    fn step_change_mid_computation() {
        // Q = 1 for the first second, then Q = 2.
        let t = LoadTrace::from_steps(vec![
            (SimTime::ZERO, 1),
            (SimTime::from_secs_f64(1.0), 2),
        ]);
        // 2000 ops at 1000 ops/s: 1000 done in the first second, then
        // 1000 at 500 ops/s → 2 more seconds.
        let fin = t.compute_finish(SimTime::ZERO, 2000, 1000.0);
        assert!((fin.as_secs_f64() - 3.0).abs() < 1e-9, "{fin}");
    }

    #[test]
    fn q_at_respects_steps() {
        let t = LoadTrace::from_steps(vec![
            (SimTime::ZERO, 1),
            (SimTime::from_secs_f64(5.0), 3),
            (SimTime::from_secs_f64(10.0), 1),
        ]);
        assert_eq!(t.q_at(SimTime::from_secs_f64(4.9)), 1);
        assert_eq!(t.q_at(SimTime::from_secs_f64(5.0)), 3);
        assert_eq!(t.q_at(SimTime::from_secs_f64(9.9)), 3);
        assert_eq!(t.q_at(SimTime::from_secs_f64(100.0)), 1);
    }

    #[test]
    fn start_mid_trace() {
        let t = LoadTrace::from_steps(vec![
            (SimTime::ZERO, 1),
            (SimTime::from_secs_f64(1.0), 2),
        ]);
        // Starting after the step: all at half speed.
        let fin = t.compute_finish(SimTime::from_secs_f64(2.0), 1000, 1000.0);
        assert!((fin.as_secs_f64() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_q_clamped() {
        let t = LoadTrace::constant(0);
        assert_eq!(t.q_at(SimTime::ZERO), 1);
    }

    #[test]
    fn missing_time_zero_step_prepended() {
        let t = LoadTrace::from_steps(vec![(SimTime::from_secs_f64(1.0), 5)]);
        assert_eq!(t.q_at(SimTime::ZERO), 1);
        assert_eq!(t.q_at(SimTime::from_secs_f64(2.0)), 5);
    }

    #[test]
    fn zero_cost_finishes_immediately() {
        let t = LoadTrace::dedicated();
        let start = SimTime::from_secs_f64(3.0);
        assert_eq!(t.compute_finish(start, 0, 1000.0), start);
    }
}
