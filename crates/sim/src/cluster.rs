//! Cluster hardware descriptions, with presets for the paper's testbed.
//!
//! §5.1: *"The master is a Sun UltraSPARC 10 with 440 MHz CPU speed and
//! 384 MB of physical memory. Three of the slaves are also Sun
//! UltraSPARC 10, but with 128 MB of physical memory, and the remaining
//! five slaves are Sun UltraSPARC 1 with 166 MHz CPU speed and 64 MB of
//! physical memory. The LAN bandwidth is … 10 Mbits/sec for the slow
//! slaves and 100 Mbits/sec for the fast slaves."*
//!
//! PE speed is expressed in *basic operations per second*, where one
//! basic operation is one unit of [`lss_workloads::Workload::cost`]
//! (for Mandelbrot: one escape-time iteration). The fast/slow speed
//! ratio is 440/166 ≈ 2.65 — the paper rounds it to "about 3 times
//! faster". Absolute speeds are calibrated so that the sequential
//! Mandelbrot 4000×2000 run takes on the order of a minute on a fast
//! PE, putting `T_p` in the paper's range of tens of seconds.

use crate::time::SimTime;
use lss_core::power::VirtualPower;

/// A network link between a slave and the master.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Usable bandwidth in bytes/second.
    pub bandwidth: f64,
    /// One-way message latency (propagation + protocol overhead).
    pub latency: SimTime,
}

impl LinkSpec {
    /// 100 Mbit/s Ethernet (fast slaves): 12.5 MB/s, 1 ms latency.
    pub fn fast_ethernet() -> Self {
        LinkSpec {
            bandwidth: 12.5e6,
            latency: SimTime::from_millis(1),
        }
    }

    /// 10 Mbit/s Ethernet (slow slaves): 1.25 MB/s, 1 ms latency.
    pub fn slow_ethernet() -> Self {
        LinkSpec {
            bandwidth: 1.25e6,
            latency: SimTime::from_millis(1),
        }
    }

    /// Wire time for `bytes` over this link (latency + serialization).
    pub fn transfer_time(&self, bytes: u64) -> SimTime {
        assert!(self.bandwidth > 0.0, "link bandwidth must be positive");
        self.latency + SimTime::from_secs_f64(bytes as f64 / self.bandwidth)
    }
}

/// A slave processing element.
#[derive(Debug, Clone)]
pub struct PeSpec {
    /// Human-readable name ("US10", "US1", …).
    pub name: String,
    /// Basic operations per second when dedicated.
    pub speed: f64,
    /// Relative (virtual) power — input to the distributed schemes and
    /// to weighted allocations. Consistency with `speed` is the
    /// operator's responsibility, mirroring reality (the paper: "the PE
    /// speeds are not precise").
    pub virtual_power: VirtualPower,
    /// Link to the master.
    pub link: LinkSpec,
    /// Shared-medium id: slaves with the same `Some(id)` contend for
    /// one half-duplex segment (era-accurate for 10 Mbit hubs — "the
    /// LAN bandwidth is 10 Mbits/sec for the slow slaves"); `None`
    /// means a dedicated (switched) link.
    pub segment: Option<u8>,
}

/// Calibrated speed of a fast slave (UltraSPARC 10, 440 MHz) in basic
/// operations per second — chosen so the sequential Mandelbrot
/// 4000×2000 run (`max_iter = 64`) takes ~60 s, the magnitude implied
/// by the paper's `T_p` range and speedups.
pub const FAST_SPEED: f64 = 2.0e6;
/// Fast-to-slow speed ratio (440 MHz / 166 MHz).
pub const SPEED_RATIO: f64 = 440.0 / 166.0;

impl PeSpec {
    /// A fast slave: UltraSPARC 10 class on switched 100 Mbit Ethernet.
    pub fn paper_fast() -> Self {
        PeSpec {
            name: "US10".into(),
            speed: FAST_SPEED,
            virtual_power: VirtualPower::new(SPEED_RATIO),
            link: LinkSpec::fast_ethernet(),
            segment: None,
        }
    }

    /// A slow slave: UltraSPARC 1 class on the shared 10 Mbit segment
    /// (segment 0 — all slow slaves contend for the same hub).
    pub fn paper_slow() -> Self {
        PeSpec {
            name: "US1".into(),
            speed: FAST_SPEED / SPEED_RATIO,
            virtual_power: VirtualPower::new(1.0),
            link: LinkSpec::slow_ethernet(),
            segment: Some(0),
        }
    }
}

/// Tracks shared-segment occupancy during one simulated run.
///
/// Dedicated (switched) links transfer immediately; slaves on the same
/// segment serialize — a transfer must wait for the medium, and that
/// wait is communication time from the slave's perspective (it is
/// blocked in the network stack).
#[derive(Debug, Clone, Default)]
pub struct Network {
    /// When each segment id becomes free.
    seg_free: Vec<SimTime>,
}

impl Network {
    /// A fresh network with all segments idle.
    pub fn new() -> Self {
        Network::default()
    }

    /// Schedules a transfer of `bytes` for `pe` starting no earlier
    /// than `now`. Returns `(arrival, com_time)`: when the message
    /// lands, and the total time the slave spends communicating
    /// (medium wait + wire time).
    pub fn transfer(&mut self, pe: &PeSpec, bytes: u64, now: SimTime) -> (SimTime, SimTime) {
        let wire = pe.link.transfer_time(bytes);
        match pe.segment {
            None => (now + wire, wire),
            Some(id) => {
                let id = id as usize;
                if self.seg_free.len() <= id {
                    self.seg_free.resize(id + 1, SimTime::ZERO);
                }
                let start = now.max(self.seg_free[id]);
                self.seg_free[id] = start + wire;
                let arrival = start + wire;
                (arrival, arrival - now)
            }
        }
    }
}

/// The master PE: it only schedules and collects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MasterSpec {
    /// CPU time to service one request (compute the chunk, bookkeeping,
    /// MPI receive/send overheads).
    pub service_time: SimTime,
    /// Bandwidth at which the master ingests piggy-backed result
    /// payloads (its NIC); receiving serializes with servicing, which
    /// is what makes slaves "contend for master access" (§5).
    pub rx_bandwidth: f64,
}

impl MasterSpec {
    /// The paper-calibrated master: 1 ms per request, 12.5 MB/s NIC.
    pub fn paper_master() -> Self {
        MasterSpec {
            service_time: SimTime::from_millis(1),
            rx_bandwidth: 12.5e6,
        }
    }

    /// Master busy time for one inbound message carrying `bytes` of
    /// piggy-backed payload.
    pub fn occupancy(&self, payload_bytes: u64) -> SimTime {
        self.service_time + SimTime::from_secs_f64(payload_bytes as f64 / self.rx_bandwidth)
    }
}

/// A full cluster: one master plus `p` slaves.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// The master.
    pub master: MasterSpec,
    /// The slaves, in PE order (`PE_1 … PE_p` of the tables).
    pub slaves: Vec<PeSpec>,
}

impl ClusterSpec {
    /// Builds a cluster of `fast` fast and `slow` slow slaves (fast PEs
    /// listed first, matching "PE_i for i = 1, 2, 3 are the fast PEs").
    pub fn paper_mix(fast: usize, slow: usize) -> Self {
        assert!(fast + slow >= 1, "need at least one slave");
        let mut slaves = Vec::with_capacity(fast + slow);
        for _ in 0..fast {
            slaves.push(PeSpec::paper_fast());
        }
        for _ in 0..slow {
            slaves.push(PeSpec::paper_slow());
        }
        ClusterSpec {
            master: MasterSpec::paper_master(),
            slaves,
        }
    }

    /// The Table 2/3 cluster: 3 fast + 5 slow slaves.
    pub fn paper_p8() -> Self {
        Self::paper_mix(3, 5)
    }

    /// The speedup-figure configurations (§5.1/§6.1): `p = 1` → 1 fast;
    /// `p = 2` → 1 fast + 1 slow; `p = 4` → 2 fast + 2 slow; `p = 8` →
    /// 3 fast + 5 slow. Other `p` interpolate with the same flavor
    /// (⌈p/2⌉ fast for p < 8, capped at 3 fast).
    pub fn paper_config(p: usize) -> Self {
        assert!(p >= 1, "need at least one slave");
        let fast = match p {
            1 => 1,
            2 => 1,
            3 => 2,
            4 => 2,
            _ => 3.min(p),
        };
        Self::paper_mix(fast, p - fast)
    }

    /// Number of slaves.
    pub fn num_slaves(&self) -> usize {
        self.slaves.len()
    }

    /// The virtual powers, in PE order.
    pub fn virtual_powers(&self) -> Vec<VirtualPower> {
        self.slaves.iter().map(|s| s.virtual_power).collect()
    }

    /// The speed of the fastest slave (used as the speedup baseline).
    pub fn fastest_speed(&self) -> f64 {
        self.slaves.iter().map(|s| s.speed).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_transfer_time() {
        let l = LinkSpec::slow_ethernet();
        // 1.25 MB at 1.25 MB/s = 1 s + 1 ms latency.
        let t = l.transfer_time(1_250_000);
        assert!((t.as_secs_f64() - 1.001).abs() < 1e-9);
    }

    #[test]
    fn fast_link_is_ten_times_quicker() {
        let f = LinkSpec::fast_ethernet().transfer_time(10_000_000);
        let s = LinkSpec::slow_ethernet().transfer_time(10_000_000);
        let ratio = (s.as_secs_f64() - 0.001) / (f.as_secs_f64() - 0.001);
        assert!((ratio - 10.0).abs() < 1e-6);
    }

    #[test]
    fn speed_ratio_matches_clock_ratio() {
        let fast = PeSpec::paper_fast();
        let slow = PeSpec::paper_slow();
        assert!((fast.speed / slow.speed - SPEED_RATIO).abs() < 1e-9);
        assert!((fast.virtual_power.get() - SPEED_RATIO).abs() < 1e-9);
        assert_eq!(slow.virtual_power.get(), 1.0);
    }

    #[test]
    fn paper_p8_composition() {
        let c = ClusterSpec::paper_p8();
        assert_eq!(c.num_slaves(), 8);
        assert_eq!(c.slaves.iter().filter(|s| s.name == "US10").count(), 3);
        // Fast PEs come first, as in the tables' "PE_1..PE_3 are fast".
        assert_eq!(c.slaves[0].name, "US10");
        assert_eq!(c.slaves[3].name, "US1");
    }

    #[test]
    fn figure_configs() {
        assert_eq!(ClusterSpec::paper_config(1).num_slaves(), 1);
        let p2 = ClusterSpec::paper_config(2);
        assert_eq!(p2.slaves.iter().filter(|s| s.name == "US10").count(), 1);
        let p4 = ClusterSpec::paper_config(4);
        assert_eq!(p4.slaves.iter().filter(|s| s.name == "US10").count(), 2);
        let p8 = ClusterSpec::paper_config(8);
        assert_eq!(p8.slaves.iter().filter(|s| s.name == "US10").count(), 3);
    }

    #[test]
    fn master_occupancy_includes_payload() {
        let m = MasterSpec::paper_master();
        let idle = m.occupancy(0);
        assert_eq!(idle, SimTime::from_millis(1));
        let with_data = m.occupancy(12_500_000);
        assert!((with_data.as_secs_f64() - 1.001).abs() < 1e-9);
    }

    #[test]
    fn fastest_speed_is_fast_pe() {
        let c = ClusterSpec::paper_p8();
        assert_eq!(c.fastest_speed(), FAST_SPEED);
    }
}

#[cfg(test)]
mod network_tests {
    use super::*;

    #[test]
    fn dedicated_links_never_queue() {
        let mut net = Network::new();
        let pe = PeSpec::paper_fast();
        let t0 = SimTime::ZERO;
        let (a1, c1) = net.transfer(&pe, 12_500_000, t0);
        let (a2, c2) = net.transfer(&pe, 12_500_000, t0);
        // Both "start" at t0: switched links are independent per call.
        assert_eq!(a1, a2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn shared_segment_serializes() {
        let mut net = Network::new();
        let pe = PeSpec::paper_slow();
        let t0 = SimTime::ZERO;
        // 1.25 MB at 1.25 MB/s = 1 s wire (+1 ms latency).
        let (a1, c1) = net.transfer(&pe, 1_250_000, t0);
        let (a2, c2) = net.transfer(&pe, 1_250_000, t0);
        assert!((c1.as_secs_f64() - 1.001).abs() < 1e-9);
        // Second transfer waits for the first: lands ~2 s in.
        assert!(a2 > a1);
        assert!((c2.as_secs_f64() - 2.002).abs() < 1e-9, "{c2}");
        assert!((a2.as_secs_f64() - 2.002).abs() < 1e-9);
    }

    #[test]
    fn segments_are_independent() {
        let mut net = Network::new();
        let mut a = PeSpec::paper_slow();
        let mut b = PeSpec::paper_slow();
        a.segment = Some(0);
        b.segment = Some(1);
        let (t_a, _) = net.transfer(&a, 1_250_000, SimTime::ZERO);
        let (t_b, _) = net.transfer(&b, 1_250_000, SimTime::ZERO);
        assert_eq!(t_a, t_b, "different segments must not contend");
    }

    #[test]
    fn idle_segment_frees_up() {
        let mut net = Network::new();
        let pe = PeSpec::paper_slow();
        let (_, _) = net.transfer(&pe, 1_250_000, SimTime::ZERO);
        // Much later, no queueing remains.
        let late = SimTime::from_secs_f64(100.0);
        let (arrival, com) = net.transfer(&pe, 1_250_000, late);
        assert!((com.as_secs_f64() - 1.001).abs() < 1e-9);
        assert_eq!(arrival, late + com);
    }
}
