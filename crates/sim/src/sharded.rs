//! Logical-time simulation of the *sharded* master — the grant-path
//! counterpart of [`crate::engine`].
//!
//! The classic engine models one master serializing every grant; this
//! module models the two mechanisms that remove that ceiling
//! ([`lss_shard::ShardSet`]):
//!
//! - **Sharded mode** — each of the N shards is its own grant server
//!   with its own busy clock, so up to N grants are in service at once.
//!   Work-stealing between shards happens inside the set exactly as in
//!   the real runtime.
//! - **Self-scheduling mode** — fresh chunks cost no master service at
//!   all (one atomic claim + local formula evaluation, modeled as
//!   [`ShardSimConfig::claim_ns`]); only recovered chunks fall back to
//!   the leased grant path.
//!
//! The model is deliberately lean: per-worker clocks, per-shard service
//! clocks, compute time = `cost_range × slowdown`, optional
//! crash-after-N-chunks faults (recovery flows through the set's lease
//! tables and formula-replay reclaim, driven by the simulated clock).
//! Wire time and payload sizes are out of scope here — the classic
//! engine already models them; this module isolates the *grant ceiling*
//! so `lss sim --shards N` and the `grant_ceiling` bench can compare
//! one master vs N shards vs self-calculation on equal footing.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use lss_core::fault::LeaseConfig;
use lss_core::master::Assignment;
use lss_core::SchemeKind;
use lss_shard::{GrantMode, SelfWorker, ShardSet, ShardSetConfig};
use lss_trace::{ClockDomain, SharedSink, Trace, TraceMeta};
use lss_workloads::Workload;

/// Configuration of one sharded simulation.
#[derive(Debug, Clone)]
pub struct ShardSimConfig {
    /// Scheme under test (must have a closed-form formula).
    pub scheme: SchemeKind,
    /// Number of master shards.
    pub shards: usize,
    /// Fresh-chunk grant path.
    pub mode: GrantMode,
    /// Per-worker slowdown factors (length = cluster size; 1 = fast).
    pub slowdowns: Vec<u64>,
    /// Master service time per request, in simulated ns. Each shard is
    /// an independent server with this cost.
    pub service_ns: u64,
    /// Cost of a lock-free self-claim (fetch-add + local formula), in
    /// simulated ns.
    pub claim_ns: u64,
    /// Simulated ns per unit of workload cost on a slowdown-1 worker.
    pub cost_ns: u64,
    /// Back-off before re-requesting after a retry notice.
    pub retry_ns: u64,
    /// Per-worker crash points (`Some(n)` = vanish after n chunks);
    /// empty = everyone healthy.
    pub crash_after_chunks: Vec<Option<u64>>,
    /// Lease policy for the shards (drives requeue/reclaim recovery).
    pub lease: LeaseConfig,
}

impl ShardSimConfig {
    /// A sharded-mode config over `workers` equal-speed workers.
    pub fn new(scheme: SchemeKind, shards: usize, workers: usize) -> Self {
        ShardSimConfig {
            scheme,
            shards,
            mode: GrantMode::Sharded,
            slowdowns: vec![1; workers],
            service_ns: 10_000,    // 10 µs per master interaction
            claim_ns: 100,         // one fetch-add + formula step
            cost_ns: 100,
            retry_ns: 50_000,
            crash_after_chunks: Vec::new(),
            lease: LeaseConfig {
                base_ticks: 10_000_000, // 10 simulated ms
                default_ticks_per_iter: 0,
                grace: 4.0,
                dead_after_ticks: 5_000_000,
                max_speculations: 1,
            },
        }
    }

    /// Switches to the self-scheduling grant path.
    pub fn self_sched(mut self) -> Self {
        self.mode = GrantMode::SelfSched;
        self
    }
}

/// What a sharded simulation produced.
#[derive(Debug, Clone)]
pub struct ShardSimReport {
    /// Simulated makespan (last worker terminates), ns.
    pub makespan_ns: u64,
    /// Requests that went through a shard's service queue.
    pub requests: u64,
    /// Chunks claimed over the lock-free path.
    pub self_grants: u64,
    /// Cross-shard steals.
    pub steals: u64,
    /// Iterations completed per worker.
    pub per_worker_iters: Vec<u64>,
    /// Workers that crashed (from the fault plan).
    pub crashed: Vec<usize>,
    /// Results dropped by first-result-wins dedup (speculation or
    /// reclaim racing a slow worker).
    pub duplicates: u64,
}

enum WorkerGears {
    Locked,
    SelfCalc(SelfWorker),
}

struct SimWorker {
    gears: WorkerGears,
    /// Chunk being computed, completed when the next event fires.
    current: Option<lss_core::Chunk>,
    chunks_done: u64,
    iters: u64,
    finished: bool,
    crashed: bool,
}

/// Runs one sharded loop execution on the simulated clock.
///
/// # Panics
/// On unsupported configurations (scheme without a closed-form
/// formula, empty cluster) and if the simulation livelocks.
pub fn simulate_sharded(cfg: &ShardSimConfig, workload: &dyn Workload) -> ShardSimReport {
    simulate_sharded_sink(cfg, workload, SharedSink::disabled()).0
}

/// [`simulate_sharded`] with the chunk lifecycle, shard membership,
/// steals and self-grants recorded on a logical-clock timeline.
pub fn simulate_sharded_traced(
    cfg: &ShardSimConfig,
    workload: &dyn Workload,
) -> (ShardSimReport, Trace) {
    let sink = SharedSink::recording();
    let (report, sink) = simulate_sharded_sink(cfg, workload, sink);
    let trace = sink.take(TraceMeta {
        scheme: cfg.scheme.name().to_string(),
        workers: cfg.slowdowns.len(),
        total_iterations: workload.len(),
        clock: ClockDomain::Logical,
    });
    (report, trace)
}

fn simulate_sharded_sink(
    cfg: &ShardSimConfig,
    workload: &dyn Workload,
    sink: SharedSink,
) -> (ShardSimReport, SharedSink) {
    let p = cfg.slowdowns.len();
    assert!(p >= 1, "need at least one worker");
    let set = Arc::new(
        ShardSet::new(
            ShardSetConfig {
                scheme: cfg.scheme,
                total: workload.len(),
                shards: cfg.shards,
                workers: p,
                mode: cfg.mode,
                lease: cfg.lease,
            },
            sink.clone(),
        )
        .expect("unsupported shard configuration"),
    );

    let mut workers: Vec<SimWorker> = (0..p)
        .map(|w| SimWorker {
            gears: match cfg.mode {
                GrantMode::Sharded => WorkerGears::Locked,
                GrantMode::SelfSched => WorkerGears::SelfCalc(set.self_worker(w)),
            },
            current: None,
            chunks_done: 0,
            iters: 0,
            finished: false,
            crashed: false,
        })
        .collect();
    let crash_plan = |w: usize| cfg.crash_after_chunks.get(w).copied().flatten();

    // One service clock per shard: that is the whole point.
    let mut shard_busy = vec![0u64; cfg.shards];
    let mut requests = 0u64;
    let mut duplicates = 0u64;

    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = (0..p).map(|w| Reverse((0, w))).collect();
    let mut makespan = 0u64;
    // Livelock guard: generous bound on scheduling decisions.
    let mut budget: u64 = (workload.len() + 10) * 20 + (p as u64 + cfg.shards as u64) * 10_000;

    while let Some(Reverse((t, w))) = heap.pop() {
        budget = budget.checked_sub(1).expect("sharded simulation livelocked");
        // Lease audit rides on every event (the sim master never
        // sleeps past an event anyway).
        set.poll(t);
        let worker = &mut workers[w];
        if worker.finished || worker.crashed {
            continue;
        }
        makespan = makespan.max(t);

        // A planned crash strikes *mid-compute*: the worker vanishes
        // still holding its current chunk, so recovery must flow
        // through the shard's lease table (or the self-claim reclaim).
        if worker.current.is_some() && crash_plan(w) == Some(worker.chunks_done) {
            worker.crashed = true;
            set.worker_disconnected(w, t);
            continue;
        }

        // Report the chunk whose computation just ended.
        if let Some(chunk) = worker.current.take() {
            worker.chunks_done += 1;
            worker.iters += chunk.len;
            let out = set.complete(w, chunk, t);
            if out.duplicate {
                duplicates += 1;
            }
        }

        // Hot path first: self-calculate while the formulas last.
        if let WorkerGears::SelfCalc(sw) = &mut worker.gears {
            if let Some((_, _, chunk)) = sw.next_chunk(t) {
                let cost = workload.cost_range(chunk.start, chunk.len);
                let done = t + cfg.claim_ns + cost * cfg.cost_ns * cfg.slowdowns[w];
                worker.current = Some(chunk);
                heap.push(Reverse((done, w)));
                continue;
            }
        }

        // Leased path: contend for the home shard's service clock.
        requests += 1;
        let s = set.home(w);
        let start = t.max(shard_busy[s]);
        let granted_at = start + cfg.service_ns;
        shard_busy[s] = granted_at;
        match set.grant(w, 1, granted_at) {
            Assignment::Chunk(chunk) => {
                let cost = workload.cost_range(chunk.start, chunk.len);
                let done = granted_at + cost * cfg.cost_ns * cfg.slowdowns[w];
                worker.current = Some(chunk);
                heap.push(Reverse((done, w)));
            }
            Assignment::Retry => {
                heap.push(Reverse((granted_at + cfg.retry_ns, w)));
            }
            Assignment::Finished => {
                worker.finished = true;
                makespan = makespan.max(granted_at);
            }
        }
    }

    assert!(
        set.all_complete(),
        "sharded simulation drained with lost chunks"
    );
    let report = ShardSimReport {
        makespan_ns: makespan,
        requests,
        self_grants: set.self_grants(),
        steals: set.steals(),
        per_worker_iters: workers.iter().map(|w| w.iters).collect(),
        crashed: (0..p).filter(|&w| workers[w].crashed).collect(),
        duplicates,
    };
    (report, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lss_trace::EventKind;
    use lss_workloads::UniformLoop;

    fn total(report: &ShardSimReport) -> u64 {
        report.per_worker_iters.iter().sum()
    }

    #[test]
    fn sharded_sim_completes_every_iteration() {
        let wl = UniformLoop::new(2_000, 5);
        let cfg = ShardSimConfig::new(SchemeKind::Fss, 4, 8);
        let report = simulate_sharded(&cfg, &wl);
        assert_eq!(total(&report), 2_000);
        assert!(report.makespan_ns > 0);
        assert!(report.requests > 0);
        assert_eq!(report.self_grants, 0);
        assert!(report.crashed.is_empty());
    }

    #[test]
    fn self_sched_sim_skips_the_service_queue() {
        let wl = UniformLoop::new(2_000, 5);
        let sharded = simulate_sharded(&ShardSimConfig::new(SchemeKind::Gss { min_chunk: 1 }, 1, 8), &wl);
        let cfg = ShardSimConfig::new(SchemeKind::Gss { min_chunk: 1 }, 1, 8).self_sched();
        let selfs = simulate_sharded(&cfg, &wl);
        assert_eq!(total(&selfs), 2_000);
        assert!(selfs.self_grants > 0);
        // Every fresh chunk self-calculated: the only queued requests
        // are the end-of-loop probes that return Finished.
        assert!(
            selfs.requests < sharded.requests,
            "self-sched ({}) should request less than sharded ({})",
            selfs.requests,
            sharded.requests
        );
    }

    #[test]
    fn more_shards_never_slow_the_grant_path() {
        // Tiny chunks + many workers make the single master the
        // bottleneck; four shards must not do worse.
        let wl = UniformLoop::new(4_000, 1);
        let mut one = ShardSimConfig::new(SchemeKind::Css { k: 2 }, 1, 16);
        one.service_ns = 50_000;
        one.cost_ns = 10;
        let mut four = one.clone();
        four.shards = 4;
        let r1 = simulate_sharded(&one, &wl);
        let r4 = simulate_sharded(&four, &wl);
        assert_eq!(total(&r1), 4_000);
        assert_eq!(total(&r4), 4_000);
        assert!(
            r4.makespan_ns <= r1.makespan_ns,
            "4 shards ({}) vs 1 ({})",
            r4.makespan_ns,
            r1.makespan_ns
        );
    }

    #[test]
    fn sharded_sim_recovers_a_mid_compute_crash() {
        let wl = UniformLoop::new(1_200, 5);
        let mut cfg = ShardSimConfig::new(SchemeKind::Tss, 2, 4);
        cfg.crash_after_chunks = vec![None, Some(1), None, None];
        let report = simulate_sharded(&cfg, &wl);
        assert_eq!(report.crashed, vec![1]);
        // The crashed worker's in-flight chunk was re-granted, so the
        // survivors' completions cover the whole loop (duplicates can
        // only add, never hide, iterations).
        assert!(total(&report) >= 1_200);
    }

    #[test]
    fn self_sched_sim_reclaims_a_crashed_claim() {
        let wl = UniformLoop::new(1_200, 5);
        let mut cfg = ShardSimConfig::new(SchemeKind::Fss, 2, 4).self_sched();
        cfg.crash_after_chunks = vec![None, Some(1), None, None];
        let report = simulate_sharded(&cfg, &wl);
        assert_eq!(report.crashed, vec![1]);
        assert!(report.self_grants > 0);
    }

    #[test]
    fn traced_sharded_sim_is_logical_and_carries_shard_events() {
        let wl = UniformLoop::new(600, 3);
        let cfg = ShardSimConfig::new(SchemeKind::Fss, 4, 2);
        let (report, trace) = simulate_sharded_traced(&cfg, &wl);
        assert_eq!(total(&report), 600);
        assert_eq!(trace.meta.clock, ClockDomain::Logical);
        let joined = trace.count_kind(|k| matches!(k, EventKind::ShardJoined { .. }));
        assert!(joined >= 2, "workers should announce shard membership");
        // 2 workers over 4 shards leaves shards idle from the start:
        // stealing must kick in.
        assert!(report.steals > 0);
        let stole = trace.count_kind(|k| matches!(k, EventKind::ShardStole { .. }));
        assert_eq!(stole as u64, report.steals);
    }

    #[test]
    fn traced_self_sched_sim_records_self_grants() {
        let wl = UniformLoop::new(600, 3);
        let cfg = ShardSimConfig::new(SchemeKind::Tss, 2, 3).self_sched();
        let (report, trace) = simulate_sharded_traced(&cfg, &wl);
        assert_eq!(total(&report), 600);
        let selfs = trace.count_kind(|k| matches!(k, EventKind::SelfGranted { .. }));
        assert_eq!(selfs as u64, report.self_grants);
        let json = lss_trace::to_chrome_json(&trace);
        lss_trace::validate_chrome_trace(&json).expect("chrome trace invalid");
    }
}
