//! # lss-sim — discrete-event simulation of heterogeneous clusters
//!
//! The paper's testbed was a 9-node Sun cluster (one master, three
//! 440 MHz UltraSPARC 10 and five 166 MHz UltraSPARC 1 slaves, on mixed
//! 100/10 Mbit links) running mpich over a LAN. This crate replaces
//! that hardware with a deterministic discrete-event simulator:
//!
//! - [`cluster`] describes PEs (speed in basic operations/second,
//!   virtual power), links (bandwidth + latency) and the master
//!   (per-request service time, receive bandwidth) — with presets
//!   matching the paper's machines;
//! - [`load`] models run-queue length over time (the *non-dedicated*
//!   condition: background matrix-addition processes), under the
//!   paper's equal-share assumption — a PE with run-queue `Q` computes
//!   at `speed / Q`;
//! - [`engine`] simulates the master–slave self-scheduling protocol of
//!   §5 (request → chunk reply → compute → piggy-backed result upload)
//!   for every [`lss_core::SchemeKind`], producing the per-PE
//!   `T_com / T_wait / T_comp` and `T_p` of Tables 2–3;
//! - [`tree_engine`] simulates tree scheduling's different protocol
//!   (§ 5: predefined partners, periodic result pushes to the master);
//! - [`sharded`] simulates the *sharded* master of [`lss_shard`]: N
//!   work-stealing grant servers, or lock-free worker-side chunk
//!   self-calculation, isolating the grant ceiling the single-master
//!   engine cannot escape.
//!
//! Everything a scheduling decision can depend on — task costs, PE
//! speeds, link costs, queue lengths, request interleaving — is
//! first-class simulator state, so the *shape* of the paper's results
//! (which scheme wins, how load balances, where the overhead goes) is
//! reproduced even though absolute seconds are only calibrated, not
//! measured, against 2001 hardware.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod engine;
pub mod load;
pub mod sharded;
pub mod time;
pub mod tree_engine;

pub use cluster::{ClusterSpec, LinkSpec, MasterSpec, PeSpec};
pub use engine::{simulate, simulate_traced, simulate_with_timeline, ChunkSpan, SimConfig};
pub use load::LoadTrace;
pub use sharded::{simulate_sharded, simulate_sharded_traced, ShardSimConfig, ShardSimReport};
pub use time::SimTime;
pub use tree_engine::{simulate_tree, TreeSimConfig, UnsupportedKnob};
