//! Discrete-event simulation of tree scheduling's protocol (§5).
//!
//! TreeS differs from the self-scheduling schemes in two ways the
//! simulator must honour:
//!
//! 1. **No master requests for work.** All iterations are allocated up
//!    front (equally, or weighted by virtual power); an idle slave
//!    *steals* half of a predefined partner's remaining range with a
//!    cheap partner-to-partner message exchange.
//! 2. **Periodic result pushes.** Results still end up at the master;
//!    the paper found collect-at-the-end disastrous and settled on
//!    sends "at predefined time intervals". Pushes serialize on the
//!    master's receive path, so some master contention remains —
//!    exactly the paper's observation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use lss_core::tree::TreeScheduler;
use lss_metrics::breakdown::{RunReport, TimeBreakdown};
use lss_workloads::Workload;

use crate::cluster::{ClusterSpec, Network};
use crate::load::LoadTrace;
use crate::time::SimTime;

/// Configuration of a tree-scheduling run.
#[derive(Debug, Clone)]
pub struct TreeSimConfig {
    /// The cluster to run on.
    pub cluster: ClusterSpec,
    /// `false` → equal initial allocation (the §5.1 "simple" usage);
    /// `true` → allocation proportional to virtual power (§6.1).
    pub weighted: bool,
    /// How often a slave pushes accumulated results to the master.
    pub result_push_interval: SimTime,
    /// Size of a steal request/notify message.
    pub steal_msg_bytes: u64,
    /// Back-off when a slave finds nothing to steal but work remains
    /// elsewhere (in-flight on other PEs).
    pub idle_backoff: SimTime,
    /// Livelock guard.
    pub max_sim_time: SimTime,
}

impl TreeSimConfig {
    /// Defaults matching the paper's description (1 s push interval).
    pub fn new(cluster: ClusterSpec, weighted: bool) -> Self {
        TreeSimConfig {
            cluster,
            weighted,
            result_push_interval: SimTime::from_secs_f64(1.0),
            steal_msg_bytes: 32,
            idle_backoff: SimTime::from_millis(50),
            max_sim_time: SimTime::from_secs_f64(1e5),
        }
    }

    /// Builds a tree config from a full scenario description,
    /// **rejecting** any knob the tree protocol cannot honor instead of
    /// silently dropping it. Load traces and shared segments are fine
    /// (the engine models both); fault/churn plans are not — tree
    /// scheduling has no lease/requeue path, so a crashed partner would
    /// silently strand its range.
    pub fn for_scenario(
        cluster: ClusterSpec,
        weighted: bool,
        faults: &[lss_core::fault::FaultPlan],
    ) -> Result<Self, UnsupportedKnob> {
        if let Some(w) = faults.iter().position(|f| !f.is_healthy()) {
            return Err(UnsupportedKnob::Faults { worker: w });
        }
        Ok(Self::new(cluster, weighted))
    }
}

/// A scenario knob the tree-scheduling engine cannot honor.
///
/// Returned instead of silently ignoring the field — a scenario that
/// asks for churn under TreeS is a configuration error, not a run with
/// the churn quietly dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsupportedKnob {
    /// A slave carries a non-healthy [`lss_core::fault::FaultPlan`]
    /// (crash/hang/degrade/disconnect/lossy net): the tree protocol has
    /// no lease, requeue or speculation machinery, so faults would
    /// strand iterations.
    Faults {
        /// Index of the first slave with an active fault plan.
        worker: usize,
    },
}

impl std::fmt::Display for UnsupportedKnob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnsupportedKnob::Faults { worker } => write!(
                f,
                "tree scheduling cannot honor fault/churn plans \
                 (slave {worker} has one); use a self-scheduling scheme \
                 or strip the [churn]/[faults] sections"
            ),
        }
    }
}

impl std::error::Error for UnsupportedKnob {}

#[derive(Debug, Clone, Default)]
struct SlaveState {
    t_com: SimTime,
    t_wait: SimTime,
    t_comp: SimTime,
    /// Result bytes accumulated locally since the last push.
    pending_bytes: u64,
    /// Next scheduled result push.
    next_push: SimTime,
    iterations: u64,
    finish_time: SimTime,
    done: bool,
    /// When the slave finishes its current column — a steal request
    /// directed at it is only answered then (the MPI process polls for
    /// messages between tasks; on a loaded machine that takes Q× as
    /// long, which is a real cost of tree scheduling under load).
    busy_until: SimTime,
}

/// Runs tree scheduling over the workload; reports the same metrics as
/// [`crate::engine::simulate`] so TreeS slots into Tables 2 and 3.
pub fn simulate_tree(
    cfg: &TreeSimConfig,
    workload: &dyn Workload,
    traces: &[LoadTrace],
) -> RunReport {
    let p = cfg.cluster.num_slaves();
    assert_eq!(traces.len(), p, "need one load trace per slave");

    let mut tree = if cfg.weighted {
        TreeScheduler::new_weighted(workload.len(), &cfg.cluster.virtual_powers())
    } else {
        TreeScheduler::new_equal(workload.len(), p)
    };

    let mut slaves = vec![SlaveState::default(); p];
    for s in &mut slaves {
        s.next_push = cfg.result_push_interval;
    }
    let mut steals = 0u64;
    // When the master's receive path frees up.
    let mut master_free = SimTime::ZERO;
    // Shared-segment contention (the slow slaves' 10 Mbit hub).
    let mut net = Network::new();
    // Earliest-next-action queue: (time, slave).
    let mut heap: BinaryHeap<Reverse<(SimTime, usize)>> = BinaryHeap::new();
    for s in 0..p {
        heap.push(Reverse((SimTime::ZERO, s)));
    }

    // Pushes `bytes` of results to the master starting no earlier than
    // `now`; returns when the slave is free again, updating accounting.
    let push_results = |now: SimTime,
                            s: usize,
                            slaves: &mut [SlaveState],
                            master_free: &mut SimTime,
                            net: &mut Network,
                            cluster: &ClusterSpec|
     -> SimTime {
        let bytes = slaves[s].pending_bytes;
        slaves[s].pending_bytes = 0;
        let start = now.max(*master_free);
        slaves[s].t_wait += start - now; // master contention
        let (arrival, com) = net.transfer(&cluster.slaves[s], bytes, start);
        slaves[s].t_com += com;
        *master_free = start + cluster.master.occupancy(bytes);
        arrival
    };

    while let Some(Reverse((now, s))) = heap.pop() {
        assert!(
            now <= cfg.max_sim_time,
            "tree simulation exceeded {} — livelock?",
            cfg.max_sim_time
        );
        if slaves[s].done {
            continue;
        }
        // Periodic result push takes precedence once due.
        if slaves[s].pending_bytes > 0 && now >= slaves[s].next_push {
            let free_at =
                push_results(now, s, &mut slaves, &mut master_free, &mut net, &cfg.cluster);
            slaves[s].next_push = free_at + cfg.result_push_interval;
            heap.push(Reverse((free_at, s)));
            continue;
        }
        // Work on the local range, one column (task) at a time.
        if let Some(chunk) = tree.take(s, 1) {
            debug_assert_eq!(chunk.len, 1);
            let cost = workload.cost(chunk.start);
            let fin = traces[s].compute_finish(now, cost, cfg.cluster.slaves[s].speed);
            slaves[s].t_comp += fin - now;
            slaves[s].pending_bytes += workload.result_bytes(chunk.start);
            slaves[s].iterations += 1;
            slaves[s].busy_until = fin;
            heap.push(Reverse((fin, s)));
            continue;
        }
        // Local range empty: try the tree partners.
        if let Some(st) = tree.steal(s, 1) {
            steals += 1;
            // Request + grant exchange with the partner; the victim
            // only answers once its current column is done.
            let (ask_arrives, ask_com) =
                net.transfer(&cfg.cluster.slaves[s], cfg.steal_msg_bytes, now);
            let grant_start = ask_arrives.max(slaves[st.victim].busy_until);
            let (answered, grant_com) =
                net.transfer(&cfg.cluster.slaves[st.victim], cfg.steal_msg_bytes, grant_start);
            slaves[s].t_com += ask_com + grant_com;
            slaves[s].t_wait += grant_start.saturating_sub(ask_arrives);
            heap.push(Reverse((answered, s)));
            continue;
        }
        if tree.total_remaining() > 0 {
            // Somebody still holds unstealable work — back off.
            slaves[s].t_wait += cfg.idle_backoff;
            heap.push(Reverse((now + cfg.idle_backoff, s)));
            continue;
        }
        // Nothing anywhere: flush remaining results and terminate.
        let finish = if slaves[s].pending_bytes > 0 {
            push_results(now, s, &mut slaves, &mut master_free, &mut net, &cfg.cluster)
        } else {
            now
        };
        slaves[s].done = true;
        slaves[s].finish_time = finish;
    }

    let t_p = slaves
        .iter()
        .map(|s| s.finish_time)
        .max()
        .unwrap_or(SimTime::ZERO);
    for s in &mut slaves {
        s.t_wait += t_p.saturating_sub(s.finish_time);
    }

    let per_pe = slaves
        .iter()
        .map(|s| TimeBreakdown {
            t_com: s.t_com.as_secs_f64(),
            t_wait: s.t_wait.as_secs_f64(),
            t_comp: s.t_comp.as_secs_f64(),
        })
        .collect();
    let iterations: Vec<u64> = slaves.iter().map(|s| s.iterations).collect();
    RunReport::new(
        "TreeS",
        per_pe,
        t_p.as_secs_f64(),
        p as u64 + steals,
        iterations,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lss_workloads::{SyntheticWorkload, UniformLoop};

    fn dedicated(p: usize) -> Vec<LoadTrace> {
        vec![LoadTrace::dedicated(); p]
    }

    #[test]
    fn completes_all_iterations() {
        let cfg = TreeSimConfig::new(ClusterSpec::paper_mix(2, 2), false);
        let w = UniformLoop::new(200, 50_000);
        let r = simulate_tree(&cfg, &w, &dedicated(4));
        assert_eq!(r.iterations.iter().sum::<u64>(), 200);
        assert!(r.t_p > 0.0);
    }

    #[test]
    fn stealing_rebalances_equal_allocation() {
        // Heterogeneous cluster + equal allocation: the fast PE must
        // finish its block and steal from the slow ones.
        let cfg = TreeSimConfig::new(ClusterSpec::paper_mix(1, 1), false);
        let w = UniformLoop::new(400, 100_000);
        let r = simulate_tree(&cfg, &w, &dedicated(2));
        assert!(
            r.iterations[0] > r.iterations[1],
            "fast PE should end up with more: {:?}",
            r.iterations
        );
        assert!(r.scheduling_steps > 2, "expected steals to happen");
    }

    #[test]
    fn weighted_allocation_needs_fewer_steals() {
        let w = UniformLoop::new(400, 100_000);
        let equal = simulate_tree(
            &TreeSimConfig::new(ClusterSpec::paper_p8(), false),
            &w,
            &dedicated(8),
        );
        let weighted = simulate_tree(
            &TreeSimConfig::new(ClusterSpec::paper_p8(), true),
            &w,
            &dedicated(8),
        );
        assert!(
            weighted.scheduling_steps <= equal.scheduling_steps,
            "weighted {} vs equal {}",
            weighted.scheduling_steps,
            equal.scheduling_steps
        );
        assert!(weighted.t_p <= equal.t_p * 1.05);
    }

    #[test]
    fn results_show_up_as_com() {
        let w = SyntheticWorkload::with_result_bytes(vec![50_000; 100], 50_000);
        let cfg = TreeSimConfig::new(ClusterSpec::paper_mix(0, 2), false);
        let r = simulate_tree(&cfg, &w, &dedicated(2));
        let com: f64 = r.per_pe.iter().map(|b| b.t_com).sum();
        // 100 × 50 kB = 5 MB at 1.25 MB/s = 4 s of wire time.
        assert!(com > 3.0, "com {com}");
    }

    #[test]
    fn overloaded_pe_sheds_work() {
        let w = UniformLoop::new(400, 100_000);
        let mut traces = dedicated(2);
        traces[1] = LoadTrace::paper_overloaded();
        let cfg = TreeSimConfig::new(ClusterSpec::paper_mix(2, 0), false);
        let r = simulate_tree(&cfg, &w, &traces);
        assert!(
            r.iterations[0] > r.iterations[1] * 2,
            "loaded PE kept too much: {:?}",
            r.iterations
        );
    }

    #[test]
    fn deterministic() {
        let cfg = TreeSimConfig::new(ClusterSpec::paper_p8(), true);
        let w = SyntheticWorkload::new((1..=200).map(|i| (i % 23 + 1) * 2000).collect());
        let a = simulate_tree(&cfg, &w, &dedicated(8));
        let b = simulate_tree(&cfg, &w, &dedicated(8));
        assert_eq!(a.t_p, b.t_p);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn empty_workload() {
        let cfg = TreeSimConfig::new(ClusterSpec::paper_mix(2, 0), false);
        let w = UniformLoop::new(0, 1);
        let r = simulate_tree(&cfg, &w, &dedicated(2));
        assert_eq!(r.iterations, vec![0, 0]);
    }

    #[test]
    fn breakdown_sums_to_tp() {
        let cfg = TreeSimConfig::new(ClusterSpec::paper_mix(1, 2), false);
        let w = UniformLoop::new(150, 80_000);
        let r = simulate_tree(&cfg, &w, &dedicated(3));
        for b in &r.per_pe {
            assert!(
                b.total() <= r.t_p * 1.02 + 1e-6,
                "breakdown {} exceeds t_p {}",
                b.total(),
                r.t_p
            );
        }
    }
}
