//! The *available computing power* (ACP) model of §3.1 and §5.2.
//!
//! Terminology (paper, §3.1):
//!
//! - `V_i` — the **virtual power** of PE `P_i` (`V_i = 1` for the
//!   slowest PE). The paper's §5.2(II) improvement allows fractional
//!   values (e.g. `V = 3.4`), which we adopt as the native
//!   representation ([`VirtualPower`] wraps an `f64`).
//! - `Q_i` — the number of processes in `P_i`'s run-queue, reflecting
//!   its total load. The parallel-loop process itself counts, so
//!   `Q_i >= 1` whenever the loop is running.
//! - `A_i` — the **available computing power**. Original DTSS used
//!   `A_i = ⌊V_i / Q_i⌋`, which collapses to zero for any loaded PE
//!   that is not proportionally fast (§5.2(I)'s starvation example:
//!   `V_1 = 1, Q_1 = 2` and `V_2 = 3, Q_2 = 3` both give `A = 0` and the
//!   computation can never start). The paper's fix — which this module
//!   implements — is decimal division scaled by an integer constant:
//!   `A_i = ⌊scale · V_i / Q_i⌋` with `scale = 10` (or 100).
//! - `A = Σ A_i` — total available power; the distributed schemes run
//!   the underlying simple scheme with "`p` = `A`" virtual processors.
//! - `A_min` — an availability threshold (§5.2(I)): a PE whose `A_i`
//!   falls below it is declared unavailable and receives no work.

/// The relative (virtual) computing power `V_i` of a PE.
///
/// By convention the slowest machine in the cluster has power `1.0`;
/// a machine three times faster has power `3.0`. Fractional values are
/// allowed per §5.2(II).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct VirtualPower(f64);

impl VirtualPower {
    /// Creates a virtual power; panics on non-finite or non-positive input.
    pub fn new(v: f64) -> Self {
        assert!(v.is_finite() && v > 0.0, "virtual power must be positive and finite, got {v}");
        VirtualPower(v)
    }

    /// The raw ratio.
    pub fn get(&self) -> f64 {
        self.0
    }
}

impl From<f64> for VirtualPower {
    fn from(v: f64) -> Self {
        VirtualPower::new(v)
    }
}

/// Integer available-computing-power `A_i = ⌊scale · V_i / Q_i⌋`.
///
/// `Acp(0)` means the PE is (currently) unavailable for the loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Acp(pub u32);

impl Acp {
    /// Whether this PE can be assigned work.
    pub fn is_available(&self) -> bool {
        self.0 > 0
    }

    /// The raw integer value.
    pub fn get(&self) -> u32 {
        self.0
    }
}

/// How ACP values are derived from `(V_i, Q_i)` pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AcpConfig {
    /// Multiplier applied before flooring (`10` in the paper's §5.2(I)
    /// proposal; `1` recovers the original, starvation-prone DTSS rule).
    pub scale: u32,
    /// Minimum `A_i` for a PE to be considered available. With the
    /// paper's example (`scale = 10`, `A_min = 6`) only machines with
    /// per-process share ≥ 0.6 of a slow PE participate.
    pub a_min: u32,
}

impl AcpConfig {
    /// The paper's recommended configuration: scale 10, no threshold.
    pub const PAPER: AcpConfig = AcpConfig { scale: 10, a_min: 0 };

    /// The original (pre-fix) DTSS rule: integer division, no scaling.
    pub const ORIGINAL_DTSS: AcpConfig = AcpConfig { scale: 1, a_min: 0 };

    /// Creates a config with the given scale and availability threshold.
    pub fn new(scale: u32, a_min: u32) -> Self {
        assert!(scale >= 1, "ACP scale must be at least 1");
        AcpConfig { scale, a_min }
    }

    /// Computes `A_i` from virtual power and run-queue length.
    ///
    /// `q` is clamped to at least 1 (the loop process itself is always
    /// in the run-queue once the computation has started). A result
    /// below `a_min` is reported as `Acp(0)` — unavailable — per the
    /// §5.2(I) threshold policy.
    pub fn acp(&self, v: VirtualPower, q: u32) -> Acp {
        let q = q.max(1);
        let a_dec = v.get() / q as f64;
        let a = (self.scale as f64 * a_dec).floor() as u32;
        if a < self.a_min.max(1) {
            // Below the availability threshold (or literally zero).
            if a >= 1 && self.a_min <= 1 {
                Acp(a)
            } else {
                Acp(0)
            }
        } else {
            Acp(a)
        }
    }
}

impl Default for AcpConfig {
    fn default() -> Self {
        AcpConfig::PAPER
    }
}

/// A worker's power state as the master sees it: static virtual power
/// plus the latest reported run-queue length and derived ACP.
#[derive(Debug, Clone, Copy)]
pub struct WorkerPower {
    /// Static relative speed of the machine.
    pub virtual_power: VirtualPower,
    /// Last reported run-queue length.
    pub run_queue: u32,
    /// Derived available computing power.
    pub acp: Acp,
}

impl WorkerPower {
    /// Creates the state for a dedicated worker (`Q_i = 1`).
    pub fn dedicated(v: VirtualPower, cfg: &AcpConfig) -> Self {
        WorkerPower {
            virtual_power: v,
            run_queue: 1,
            acp: cfg.acp(v, 1),
        }
    }

    /// Updates the run-queue length, recomputing the ACP.
    /// Returns `true` if the ACP value changed.
    pub fn report_queue(&mut self, q: u32, cfg: &AcpConfig) -> bool {
        self.run_queue = q.max(1);
        let new = cfg.acp(self.virtual_power, self.run_queue);
        let changed = new != self.acp;
        self.acp = new;
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_5_2_i_fix() {
        // §5.2(I): V1 = 1, Q1 = 2; V2 = 3, Q2 = 4 (after the loop joins
        // P2's queue of 3). Original rule starves; scaled rule gives
        // A1 = 5, A2 = 7, A = 12.
        let orig = AcpConfig::ORIGINAL_DTSS;
        assert_eq!(orig.acp(VirtualPower::new(1.0), 2), Acp(0));
        // floor(3/4) = 0 with integer division:
        assert_eq!(orig.acp(VirtualPower::new(3.0), 4), Acp(0));

        let fixed = AcpConfig::PAPER;
        assert_eq!(fixed.acp(VirtualPower::new(1.0), 2), Acp(5));
        assert_eq!(fixed.acp(VirtualPower::new(3.0), 4), Acp(7));
    }

    #[test]
    fn paper_example_5_2_ii_fractional_power() {
        // §5.2(II): V2 = 3.4, Q = 4 → A2 = floor(0.85 * 10) = 8, where
        // integer virtual powers would under-estimate it as 7.
        let cfg = AcpConfig::PAPER;
        assert_eq!(cfg.acp(VirtualPower::new(3.4), 4), Acp(8));
        assert_eq!(cfg.acp(VirtualPower::new(3.0), 4), Acp(7));
    }

    #[test]
    fn a_min_threshold_declares_unavailable() {
        // §5.2(I): with A_min = 6, the slow loaded machine (A = 5) is
        // declared not available; the faster one (A = 7) still serves.
        let cfg = AcpConfig::new(10, 6);
        assert_eq!(cfg.acp(VirtualPower::new(1.0), 2), Acp(0));
        assert_eq!(cfg.acp(VirtualPower::new(3.0), 4), Acp(7));
    }

    #[test]
    fn dedicated_worker_gets_full_power() {
        let cfg = AcpConfig::PAPER;
        let w = WorkerPower::dedicated(VirtualPower::new(2.0), &cfg);
        assert_eq!(w.acp, Acp(20));
        assert_eq!(w.run_queue, 1);
    }

    #[test]
    fn extra_process_halves_power() {
        // §3.1's example: V_i = 2 with one extra process behaves like
        // the slowest dedicated processor (A = 2/2 = 1, scaled: 10).
        let cfg = AcpConfig::PAPER;
        let mut w = WorkerPower::dedicated(VirtualPower::new(2.0), &cfg);
        let changed = w.report_queue(2, &cfg);
        assert!(changed);
        assert_eq!(w.acp, Acp(10));
        let unchanged = w.report_queue(2, &cfg);
        assert!(!unchanged);
    }

    #[test]
    fn run_queue_zero_clamped_to_one() {
        let cfg = AcpConfig::PAPER;
        assert_eq!(cfg.acp(VirtualPower::new(1.0), 0), cfg.acp(VirtualPower::new(1.0), 1));
    }

    #[test]
    #[should_panic]
    fn negative_power_rejected() {
        VirtualPower::new(-1.0);
    }

    #[test]
    #[should_panic]
    fn zero_scale_rejected() {
        AcpConfig::new(0, 0);
    }

    #[test]
    fn scale_100_gives_finer_resolution() {
        let cfg = AcpConfig::new(100, 0);
        // V = 1.26, Q = 3 → 0.42 → 42; scale 10 would give 4 (0.4).
        assert_eq!(cfg.acp(VirtualPower::new(1.26), 3), Acp(42));
    }
}
