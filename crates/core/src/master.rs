//! The transport-independent master of the master–slave model (§2.2).
//!
//! Idle slaves send a request (optionally piggy-backing their previous
//! result and their current run-queue length); the master answers with
//! an iteration interval. [`Master`] encapsulates *which* interval,
//! uniformly over every scheme family in the paper:
//!
//! - **simple** schemes ([`crate::scheme`]) ignore who is asking,
//! - **weighted factoring** scales by static per-worker weights,
//! - **distributed** schemes ([`crate::distributed`]) use the reported
//!   run-queue lengths (the ACP model) and re-plan on load changes.
//!
//! Both the discrete-event simulator (`lss-sim`) and the real threaded
//! runtime (`lss-runtime`) drive this same state machine, so a scheme's
//! behaviour is identical under simulation and real execution.

use crate::chunk::{Chunk, ChunkDispenser};
use crate::distributed::{DistKind, DistributedScheduler, Grant, WorkerId};
use crate::power::{AcpConfig, VirtualPower};
use crate::scheme::{
    ChunkSelfSched, ChunkSizer, FactoringSelfSched, FixedIncreaseSelfSched, GuidedSelfSched,
    PureSelfSched, StaticSched, TrapezoidFactoringSelfSched, TrapezoidSelfSched,
    WeightedFactoring,
};

/// Every scheduling scheme in the paper, by name.
///
/// The first block are the *simple* schemes of §2 (they treat all PEs
/// as equals); `Wf` is the static-weight baseline; the `D*` block are
/// the *distributed* schemes of §3/§6 (ACP-aware and adaptive).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchemeKind {
    /// Static block scheduling (`S`).
    Static,
    /// Pure self-scheduling (`SS`), chunk size 1.
    Pure,
    /// Chunk self-scheduling with fixed size `k`.
    Css {
        /// The fixed chunk size.
        k: u64,
    },
    /// Guided self-scheduling with a minimum chunk size (1 = plain GSS).
    Gss {
        /// Minimum chunk size (`GSS(k)`).
        min_chunk: u64,
    },
    /// Trapezoid self-scheduling.
    Tss,
    /// Trapezoid self-scheduling with explicit first/last chunk sizes
    /// (the paper's `L > 1` remedy for the many final synchronizations).
    TssWith {
        /// First chunk size `F`.
        first: u64,
        /// Last chunk size `L`.
        last: u64,
    },
    /// Factoring self-scheduling (α = 2).
    Fss,
    /// Factoring self-scheduling with Hummel et al.'s *computed* α,
    /// derived from the iteration-cost distribution.
    FssAdaptive {
        /// Mean iteration cost `μ`.
        mean_cost: f64,
        /// Standard deviation `σ` of iteration costs.
        std_dev: f64,
    },
    /// Fixed-increase self-scheduling with `σ` stages.
    Fiss {
        /// Planned number of stages.
        sigma: u32,
    },
    /// Trapezoid-factoring self-scheduling — the paper's new scheme.
    Tfss,
    /// Weighted factoring (static weights; *not* distributed per §6).
    Wf,
    /// Distributed trapezoid self-scheduling.
    Dtss,
    /// Distributed factoring self-scheduling.
    Dfss,
    /// Distributed fixed-increase self-scheduling with `σ` stages.
    Dfiss {
        /// Planned number of stages.
        sigma: u32,
    },
    /// Distributed trapezoid-factoring self-scheduling.
    Dtfss,
}

impl SchemeKind {
    /// Display name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            SchemeKind::Static => "S",
            SchemeKind::Pure => "SS",
            SchemeKind::Css { .. } => "CSS",
            SchemeKind::Gss { .. } => "GSS",
            SchemeKind::Tss => "TSS",
            SchemeKind::TssWith { .. } => "TSS",
            SchemeKind::Fss => "FSS",
            SchemeKind::FssAdaptive { .. } => "FSS*",
            SchemeKind::Fiss { .. } => "FISS",
            SchemeKind::Tfss => "TFSS",
            SchemeKind::Wf => "WF",
            SchemeKind::Dtss => "DTSS",
            SchemeKind::Dfss => "DFSS",
            SchemeKind::Dfiss { .. } => "DFISS",
            SchemeKind::Dtfss => "DTFSS",
        }
    }

    /// Whether the scheme uses run-time load information (§6's
    /// definition of *distributed*).
    pub fn is_distributed(&self) -> bool {
        matches!(
            self,
            SchemeKind::Dtss | SchemeKind::Dfss | SchemeKind::Dfiss { .. } | SchemeKind::Dtfss
        )
    }

    /// The adaptive simple schemes evaluated in Table 2 of the paper.
    /// FISS uses `σ = 3` — the stage count of the paper's own Table 1
    /// example (`50 83 117` with `X = 5`).
    pub fn table2_schemes() -> Vec<SchemeKind> {
        vec![
            SchemeKind::Tss,
            SchemeKind::Fss,
            SchemeKind::Fiss { sigma: 3 },
            SchemeKind::Tfss,
        ]
    }

    /// The distributed schemes evaluated in Table 3 of the paper.
    pub fn table3_schemes() -> Vec<SchemeKind> {
        vec![
            SchemeKind::Dtss,
            SchemeKind::Dfss,
            SchemeKind::Dfiss { sigma: 3 },
            SchemeKind::Dtfss,
        ]
    }
}

/// The master's answer to a slave request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assignment {
    /// An interval of iterations to execute.
    Chunk(Chunk),
    /// The worker is currently unavailable (ACP 0 / below threshold);
    /// it should re-check its load and ask again.
    Retry,
    /// No work remains — terminate.
    Finished,
}

/// Configuration for a [`Master`].
#[derive(Debug, Clone)]
pub struct MasterConfig {
    /// Which scheduling scheme to run.
    pub scheme: SchemeKind,
    /// Total number of loop iterations `I`.
    pub total: u64,
    /// Virtual power of each worker (length = number of slaves `p`).
    pub powers: Vec<VirtualPower>,
    /// Initial run-queue length of each worker (1 = dedicated).
    pub initial_q: Vec<u32>,
    /// ACP derivation rule.
    pub acp: AcpConfig,
}

impl MasterConfig {
    /// Config for a dedicated cluster of `p` equal workers — what the
    /// simple schemes assume.
    pub fn homogeneous(scheme: SchemeKind, total: u64, p: usize) -> Self {
        MasterConfig {
            scheme,
            total,
            powers: vec![VirtualPower::new(1.0); p],
            initial_q: vec![1; p],
            acp: AcpConfig::PAPER,
        }
    }

    /// Config for a dedicated heterogeneous cluster.
    pub fn heterogeneous(scheme: SchemeKind, total: u64, powers: Vec<VirtualPower>) -> Self {
        let q = vec![1; powers.len()];
        MasterConfig {
            scheme,
            total,
            powers,
            initial_q: q,
            acp: AcpConfig::PAPER,
        }
    }
}

enum MasterInner {
    Simple(ChunkDispenser<Box<dyn ChunkSizer + Send>>),
    Wf(WeightedFactoring),
    Dist(DistributedScheduler),
}

/// The master state machine: owns the scheme, serves requests, and
/// keeps per-worker accounting.
pub struct Master {
    inner: MasterInner,
    scheme: SchemeKind,
    /// Iterations granted to each worker so far.
    served: Vec<u64>,
    /// Chunks granted to each worker so far.
    chunks_granted: Vec<u64>,
    total: u64,
    /// Chunks returned by [`Master::requeue`] (e.g. a worker died
    /// holding them); served before fresh scheme chunks.
    requeued: std::collections::VecDeque<Chunk>,
}

impl Master {
    /// Builds the master for the given configuration.
    ///
    /// # Panics
    /// On inconsistent configuration (no workers, mismatched lengths).
    pub fn new(cfg: MasterConfig) -> Self {
        let p = cfg.powers.len();
        assert!(p >= 1, "need at least one worker");
        assert_eq!(p, cfg.initial_q.len(), "powers/initial_q length mismatch");
        let p32 = u32::try_from(p).expect("worker count fits u32");
        let inner = match cfg.scheme {
            SchemeKind::Static => Self::simple(cfg.total, StaticSched::new(cfg.total, p32)),
            SchemeKind::Pure => Self::simple(cfg.total, PureSelfSched::new()),
            SchemeKind::Css { k } => Self::simple(cfg.total, ChunkSelfSched::new(k)),
            SchemeKind::Gss { min_chunk } => {
                Self::simple(cfg.total, GuidedSelfSched::with_min_chunk(p32, min_chunk))
            }
            SchemeKind::Tss => Self::simple(cfg.total, TrapezoidSelfSched::new(cfg.total, p32)),
            SchemeKind::TssWith { first, last } => {
                Self::simple(cfg.total, TrapezoidSelfSched::with_bounds(cfg.total, first, last))
            }
            SchemeKind::Fss => Self::simple(cfg.total, FactoringSelfSched::new(p32)),
            SchemeKind::FssAdaptive { mean_cost, std_dev } => {
                Self::simple(cfg.total, FactoringSelfSched::adaptive(p32, mean_cost, std_dev))
            }
            SchemeKind::Fiss { sigma } => {
                Self::simple(cfg.total, FixedIncreaseSelfSched::new(cfg.total, p32, sigma))
            }
            SchemeKind::Tfss => {
                Self::simple(cfg.total, TrapezoidFactoringSelfSched::new(cfg.total, p32))
            }
            SchemeKind::Wf => {
                let weights: Vec<f64> = cfg.powers.iter().map(|v| v.get()).collect();
                MasterInner::Wf(WeightedFactoring::new(cfg.total, &weights))
            }
            SchemeKind::Dtss => MasterInner::Dist(DistributedScheduler::new(
                DistKind::Dtss,
                cfg.total,
                &cfg.powers,
                &cfg.initial_q,
                cfg.acp,
            )),
            SchemeKind::Dfss => MasterInner::Dist(DistributedScheduler::new(
                DistKind::Dfss,
                cfg.total,
                &cfg.powers,
                &cfg.initial_q,
                cfg.acp,
            )),
            SchemeKind::Dfiss { sigma } => MasterInner::Dist(DistributedScheduler::new(
                DistKind::Dfiss { sigma },
                cfg.total,
                &cfg.powers,
                &cfg.initial_q,
                cfg.acp,
            )),
            SchemeKind::Dtfss => MasterInner::Dist(DistributedScheduler::new(
                DistKind::Dtfss,
                cfg.total,
                &cfg.powers,
                &cfg.initial_q,
                cfg.acp,
            )),
        };
        Master {
            inner,
            scheme: cfg.scheme,
            served: vec![0; p],
            chunks_granted: vec![0; p],
            total: cfg.total,
            requeued: std::collections::VecDeque::new(),
        }
    }

    fn simple<S: ChunkSizer + Send + 'static>(total: u64, sizer: S) -> MasterInner {
        MasterInner::Simple(ChunkDispenser::new(total, Box::new(sizer)))
    }

    /// How many plans the distributed scheduler has made (0 for
    /// non-distributed schemes; 1 means only the initial plan).
    pub fn plans_made(&self) -> u32 {
        match &self.inner {
            MasterInner::Dist(d) => d.plans_made(),
            _ => 0,
        }
    }

    /// Adjusts the distributed re-plan threshold (fraction of changed
    /// ACPs that triggers recomputation; ≥ 1.0 disables re-planning).
    /// No-op for non-distributed schemes.
    pub fn set_replan_threshold(&mut self, t: f64) {
        if let MasterInner::Dist(d) = &mut self.inner {
            d.set_replan_threshold(t);
        }
    }

    /// Serves one slave request. `q` is the worker's freshly reported
    /// run-queue length (ignored by non-distributed schemes, exactly as
    /// in the paper where simple schemes treat all PEs alike).
    pub fn handle_request(&mut self, worker: WorkerId, q: u32) -> Assignment {
        assert!(worker < self.served.len(), "unknown worker {worker}");
        // Re-granted work (from failed workers) takes priority: it is
        // the oldest unfinished part of the loop.
        if let Some(chunk) = self.requeued.pop_front() {
            self.served[worker] += chunk.len;
            self.chunks_granted[worker] += 1;
            return Assignment::Chunk(chunk);
        }
        let assignment = match &mut self.inner {
            MasterInner::Simple(d) => match d.next_chunk() {
                Some(c) => Assignment::Chunk(c),
                None => Assignment::Finished,
            },
            MasterInner::Wf(wf) => match wf.next_chunk(worker) {
                Some(c) => Assignment::Chunk(c),
                None => Assignment::Finished,
            },
            MasterInner::Dist(d) => match d.request(worker, q) {
                Grant::Chunk(c) => Assignment::Chunk(c),
                Grant::Unavailable => Assignment::Retry,
                Grant::Finished => Assignment::Finished,
            },
        };
        if let Assignment::Chunk(c) = assignment {
            self.served[worker] += c.len;
            self.chunks_granted[worker] += 1;
        }
        assignment
    }

    /// Returns a granted chunk to the pool — used when the worker
    /// holding it is discovered dead. It will be re-granted (to any
    /// worker) before fresh scheme chunks.
    pub fn requeue(&mut self, chunk: Chunk) {
        assert!(chunk.end() <= self.total, "requeued chunk out of range");
        self.requeued.push_back(chunk);
    }

    /// Iterations not yet handed out (including requeued ones).
    pub fn remaining(&self) -> u64 {
        let fresh = match &self.inner {
            MasterInner::Simple(d) => d.remaining(),
            MasterInner::Wf(wf) => wf.remaining(),
            MasterInner::Dist(d) => d.remaining(),
        };
        fresh + self.requeued.iter().map(|c| c.len).sum::<u64>()
    }

    /// Whether every iteration has been assigned.
    pub fn is_finished(&self) -> bool {
        self.remaining() == 0
    }

    /// The scheme this master runs.
    pub fn scheme(&self) -> SchemeKind {
        self.scheme
    }

    /// Total loop size `I`.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Iterations granted to `worker` so far.
    pub fn iterations_served(&self, worker: WorkerId) -> u64 {
        self.served[worker]
    }

    /// Chunks granted to `worker` so far.
    pub fn chunks_served(&self, worker: WorkerId) -> u64 {
        self.chunks_granted[worker]
    }

    /// Total number of scheduling steps (master round-trips) so far.
    pub fn total_scheduling_steps(&self) -> u64 {
        self.chunks_granted.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::validate_tiling;

    fn drain(master: &mut Master, p: usize) -> Vec<Chunk> {
        let mut chunks = Vec::new();
        let mut w = 0;
        loop {
            match master.handle_request(w % p, 1) {
                Assignment::Chunk(c) => chunks.push(c),
                Assignment::Retry => {}
                Assignment::Finished => break,
            }
            w += 1;
        }
        chunks
    }

    #[test]
    fn every_scheme_tiles_the_loop() {
        let schemes = [
            SchemeKind::Static,
            SchemeKind::Pure,
            SchemeKind::Css { k: 7 },
            SchemeKind::Gss { min_chunk: 1 },
            SchemeKind::Tss,
            SchemeKind::Fss,
            SchemeKind::Fiss { sigma: 3 },
            SchemeKind::Tfss,
            SchemeKind::Wf,
            SchemeKind::Dtss,
            SchemeKind::Dfss,
            SchemeKind::Dfiss { sigma: 3 },
            SchemeKind::Dtfss,
        ];
        for scheme in schemes {
            let mut m = Master::new(MasterConfig::homogeneous(scheme, 1000, 4));
            let chunks = drain(&mut m, 4);
            validate_tiling(&chunks, 1000)
                .unwrap_or_else(|e| panic!("{}: {e}", scheme.name()));
            assert!(m.is_finished());
            assert_eq!(m.total_scheduling_steps(), chunks.len() as u64);
        }
    }

    #[test]
    fn simple_schemes_ignore_reported_load() {
        let mut a = Master::new(MasterConfig::homogeneous(SchemeKind::Tss, 1000, 4));
        let mut b = Master::new(MasterConfig::homogeneous(SchemeKind::Tss, 1000, 4));
        let ca = a.handle_request(0, 1);
        let cb = b.handle_request(0, 99);
        assert_eq!(ca, cb);
    }

    #[test]
    fn distributed_schemes_respond_to_load() {
        let cfg = MasterConfig::heterogeneous(
            SchemeKind::Dtss,
            10_000,
            vec![VirtualPower::new(1.0), VirtualPower::new(1.0)],
        );
        let mut m = Master::new(cfg);
        let c_loaded = match m.handle_request(0, 5) {
            Assignment::Chunk(c) => c.len,
            a => panic!("{a:?}"),
        };
        let c_free = match m.handle_request(1, 1) {
            Assignment::Chunk(c) => c.len,
            a => panic!("{a:?}"),
        };
        assert!(c_free > c_loaded, "free {c_free} vs loaded {c_loaded}");
    }

    #[test]
    fn per_worker_accounting_sums_to_total() {
        let mut m = Master::new(MasterConfig::homogeneous(SchemeKind::Fss, 5000, 8));
        let _ = drain(&mut m, 8);
        let sum: u64 = (0..8).map(|w| m.iterations_served(w)).sum();
        assert_eq!(sum, 5000);
    }

    #[test]
    fn scheme_names_match_paper() {
        assert_eq!(SchemeKind::Tfss.name(), "TFSS");
        assert_eq!(SchemeKind::Dtfss.name(), "DTFSS");
        assert!(!SchemeKind::Wf.is_distributed());
        assert!(SchemeKind::Dfiss { sigma: 3 }.is_distributed());
    }

    #[test]
    fn retry_surfaces_unavailability() {
        let cfg = MasterConfig {
            scheme: SchemeKind::Dfss,
            total: 100,
            powers: vec![VirtualPower::new(1.0), VirtualPower::new(1.0)],
            initial_q: vec![1, 1],
            acp: AcpConfig::PAPER,
        };
        let mut m = Master::new(cfg);
        assert_eq!(m.handle_request(1, 1000), Assignment::Retry);
        assert!(matches!(m.handle_request(0, 1), Assignment::Chunk(_)));
    }
}

#[cfg(test)]
mod requeue_tests {
    use super::*;
    use crate::chunk::Chunk;

    #[test]
    fn requeued_chunk_served_first() {
        let mut m = Master::new(MasterConfig::homogeneous(SchemeKind::Css { k: 10 }, 100, 2));
        let first = match m.handle_request(0, 1) {
            Assignment::Chunk(c) => c,
            a => panic!("{a:?}"),
        };
        // Worker 0 dies holding `first`; it goes back to the pool.
        m.requeue(first);
        assert_eq!(m.remaining(), 100);
        // The next requester gets exactly that chunk again.
        match m.handle_request(1, 1) {
            Assignment::Chunk(c) => assert_eq!(c, first),
            a => panic!("{a:?}"),
        }
    }

    #[test]
    fn requeue_extends_a_finished_loop() {
        let mut m = Master::new(MasterConfig::homogeneous(SchemeKind::Css { k: 100 }, 100, 1));
        let c = match m.handle_request(0, 1) {
            Assignment::Chunk(c) => c,
            a => panic!("{a:?}"),
        };
        assert!(m.is_finished());
        m.requeue(c);
        assert!(!m.is_finished());
        assert_eq!(m.remaining(), 100);
        assert!(matches!(m.handle_request(0, 1), Assignment::Chunk(_)));
        assert!(m.is_finished());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn requeue_rejects_foreign_chunks() {
        let mut m = Master::new(MasterConfig::homogeneous(SchemeKind::Tss, 100, 2));
        m.requeue(Chunk::new(90, 20));
    }
}
