//! The transport-independent master of the master–slave model (§2.2).
//!
//! Idle slaves send a request (optionally piggy-backing their previous
//! result and their current run-queue length); the master answers with
//! an iteration interval. [`Master`] encapsulates *which* interval,
//! uniformly over every scheme family in the paper:
//!
//! - **simple** schemes ([`crate::scheme`]) ignore who is asking,
//! - **weighted factoring** scales by static per-worker weights,
//! - **distributed** schemes ([`crate::distributed`]) use the reported
//!   run-queue lengths (the ACP model) and re-plan on load changes.
//!
//! Both the discrete-event simulator (`lss-sim`) and the real threaded
//! runtime (`lss-runtime`) drive this same state machine, so a scheme's
//! behaviour is identical under simulation and real execution.

use crate::chunk::{Chunk, ChunkDispenser};
use crate::distributed::{DistKind, DistributedScheduler, Grant, WorkerId};
use crate::fault::{ExpiredLease, LeaseConfig, LeaseTable};
use crate::power::{AcpConfig, VirtualPower};
use crate::scheme::{
    ChunkSelfSched, ChunkSizer, FactoringSelfSched, FixedIncreaseSelfSched, GuidedSelfSched,
    PureSelfSched, StaticSched, TrapezoidFactoringSelfSched, TrapezoidSelfSched,
    WeightedFactoring,
};
use lss_trace::{EventKind, NoopSink, TraceEvent, TraceSink};

/// Every scheduling scheme in the paper, by name.
///
/// The first block are the *simple* schemes of §2 (they treat all PEs
/// as equals); `Wf` is the static-weight baseline; the `D*` block are
/// the *distributed* schemes of §3/§6 (ACP-aware and adaptive).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SchemeKind {
    /// Static block scheduling (`S`).
    Static,
    /// Pure self-scheduling (`SS`), chunk size 1.
    Pure,
    /// Chunk self-scheduling with fixed size `k`.
    Css {
        /// The fixed chunk size.
        k: u64,
    },
    /// Guided self-scheduling with a minimum chunk size (1 = plain GSS).
    Gss {
        /// Minimum chunk size (`GSS(k)`).
        min_chunk: u64,
    },
    /// Trapezoid self-scheduling.
    Tss,
    /// Trapezoid self-scheduling with explicit first/last chunk sizes
    /// (the paper's `L > 1` remedy for the many final synchronizations).
    TssWith {
        /// First chunk size `F`.
        first: u64,
        /// Last chunk size `L`.
        last: u64,
    },
    /// Factoring self-scheduling (α = 2).
    Fss,
    /// Factoring self-scheduling with Hummel et al.'s *computed* α,
    /// derived from the iteration-cost distribution.
    FssAdaptive {
        /// Mean iteration cost `μ`.
        mean_cost: f64,
        /// Standard deviation `σ` of iteration costs.
        std_dev: f64,
    },
    /// Fixed-increase self-scheduling with `σ` stages.
    Fiss {
        /// Planned number of stages.
        sigma: u32,
    },
    /// Trapezoid-factoring self-scheduling — the paper's new scheme.
    Tfss,
    /// Weighted factoring (static weights; *not* distributed per §6).
    Wf,
    /// Distributed trapezoid self-scheduling.
    Dtss,
    /// Distributed factoring self-scheduling.
    Dfss,
    /// Distributed fixed-increase self-scheduling with `σ` stages.
    Dfiss {
        /// Planned number of stages.
        sigma: u32,
    },
    /// Distributed trapezoid-factoring self-scheduling.
    Dtfss,
}

impl SchemeKind {
    /// Display name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            SchemeKind::Static => "S",
            SchemeKind::Pure => "SS",
            SchemeKind::Css { .. } => "CSS",
            SchemeKind::Gss { .. } => "GSS",
            SchemeKind::Tss => "TSS",
            SchemeKind::TssWith { .. } => "TSS",
            SchemeKind::Fss => "FSS",
            SchemeKind::FssAdaptive { .. } => "FSS*",
            SchemeKind::Fiss { .. } => "FISS",
            SchemeKind::Tfss => "TFSS",
            SchemeKind::Wf => "WF",
            SchemeKind::Dtss => "DTSS",
            SchemeKind::Dfss => "DFSS",
            SchemeKind::Dfiss { .. } => "DFISS",
            SchemeKind::Dtfss => "DTFSS",
        }
    }

    /// Whether the scheme uses run-time load information (§6's
    /// definition of *distributed*).
    pub fn is_distributed(&self) -> bool {
        matches!(
            self,
            SchemeKind::Dtss | SchemeKind::Dfss | SchemeKind::Dfiss { .. } | SchemeKind::Dtfss
        )
    }

    /// Instantiates the scheme's *pure formula* as a boxed sizer over a
    /// loop of `total` iterations and `p` workers — the replicable part
    /// a master shard or a self-scheduling worker can evaluate locally
    /// (the certifier proves replicas match the production dispenser).
    /// Returns `None` for schemes whose chunk sizes depend on *who* is
    /// asking (WF's static weights, the distributed schemes' ACP
    /// state), which cannot be replicated as one shared formula.
    pub fn formula_sizer(&self, total: u64, p: u32) -> Option<Box<dyn ChunkSizer + Send>> {
        Some(match *self {
            SchemeKind::Static => Box::new(StaticSched::new(total, p)),
            SchemeKind::Pure => Box::new(PureSelfSched::new()),
            SchemeKind::Css { k } => Box::new(ChunkSelfSched::new(k)),
            SchemeKind::Gss { min_chunk } => {
                Box::new(GuidedSelfSched::with_min_chunk(p, min_chunk))
            }
            SchemeKind::Tss => Box::new(TrapezoidSelfSched::new(total, p)),
            SchemeKind::TssWith { first, last } => {
                Box::new(TrapezoidSelfSched::with_bounds(total, first, last))
            }
            SchemeKind::Fss => Box::new(FactoringSelfSched::new(p)),
            SchemeKind::FssAdaptive { mean_cost, std_dev } => {
                Box::new(FactoringSelfSched::adaptive(p, mean_cost, std_dev))
            }
            SchemeKind::Fiss { sigma } => {
                Box::new(FixedIncreaseSelfSched::new(total, p, sigma))
            }
            SchemeKind::Tfss => Box::new(TrapezoidFactoringSelfSched::new(total, p)),
            SchemeKind::Wf
            | SchemeKind::Dtss
            | SchemeKind::Dfss
            | SchemeKind::Dfiss { .. }
            | SchemeKind::Dtfss => return None,
        })
    }

    /// The adaptive simple schemes evaluated in Table 2 of the paper.
    /// FISS uses `σ = 3` — the stage count of the paper's own Table 1
    /// example (`50 83 117` with `X = 5`).
    pub fn table2_schemes() -> Vec<SchemeKind> {
        vec![
            SchemeKind::Tss,
            SchemeKind::Fss,
            SchemeKind::Fiss { sigma: 3 },
            SchemeKind::Tfss,
        ]
    }

    /// The distributed schemes evaluated in Table 3 of the paper.
    pub fn table3_schemes() -> Vec<SchemeKind> {
        vec![
            SchemeKind::Dtss,
            SchemeKind::Dfss,
            SchemeKind::Dfiss { sigma: 3 },
            SchemeKind::Dtfss,
        ]
    }
}

/// The master's answer to a slave request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assignment {
    /// An interval of iterations to execute.
    Chunk(Chunk),
    /// The worker is currently unavailable (ACP 0 / below threshold);
    /// it should re-check its load and ask again.
    Retry,
    /// No work remains — terminate.
    Finished,
}

/// Configuration for a [`Master`].
#[derive(Debug, Clone)]
pub struct MasterConfig {
    /// Which scheduling scheme to run.
    pub scheme: SchemeKind,
    /// Total number of loop iterations `I`.
    pub total: u64,
    /// Virtual power of each worker (length = number of slaves `p`).
    pub powers: Vec<VirtualPower>,
    /// Initial run-queue length of each worker (1 = dedicated).
    pub initial_q: Vec<u32>,
    /// ACP derivation rule.
    pub acp: AcpConfig,
}

impl MasterConfig {
    /// Config for a dedicated cluster of `p` equal workers — what the
    /// simple schemes assume.
    pub fn homogeneous(scheme: SchemeKind, total: u64, p: usize) -> Self {
        MasterConfig {
            scheme,
            total,
            powers: vec![VirtualPower::new(1.0); p],
            initial_q: vec![1; p],
            acp: AcpConfig::PAPER,
        }
    }

    /// Config for a dedicated heterogeneous cluster.
    pub fn heterogeneous(scheme: SchemeKind, total: u64, powers: Vec<VirtualPower>) -> Self {
        let q = vec![1; powers.len()];
        MasterConfig {
            scheme,
            total,
            powers,
            initial_q: q,
            acp: AcpConfig::PAPER,
        }
    }
}

enum MasterInner {
    Simple(ChunkDispenser<Box<dyn ChunkSizer + Send>>),
    Wf(WeightedFactoring),
    Dist(DistributedScheduler),
}

/// What [`Master::record_completion`] did with a reported result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompletionOutcome {
    /// Iterations of the chunk that were completed for the *first*
    /// time by this report.
    pub newly_completed: u64,
    /// Whether any part of the chunk had already been completed by an
    /// earlier report (a speculative copy or a retransmitted result);
    /// those iterations are deduplicated, not double-counted.
    pub duplicate: bool,
}

/// The master state machine: owns the scheme, serves requests, and
/// keeps per-worker accounting.
pub struct Master {
    inner: MasterInner,
    scheme: SchemeKind,
    /// Iterations granted to each worker so far.
    served: Vec<u64>,
    /// Chunks granted to each worker so far.
    chunks_granted: Vec<u64>,
    total: u64,
    /// Chunks returned by [`Master::requeue`] (e.g. a worker died
    /// holding them); served before fresh scheme chunks.
    requeued: std::collections::VecDeque<Chunk>,
    /// Chunk leases plus per-worker liveness (fault-tolerant path).
    leases: LeaseTable,
    /// Completion bitmap over `[0, total)`: first-result-wins dedup.
    completed: Vec<u64>,
    /// Number of set bits in `completed`.
    completed_count: u64,
    /// Speculative grants handed out (re-executions of leased chunks).
    speculated: u64,
    /// Lifecycle event sink for the lease-aware (timestamped) path;
    /// [`NoopSink`] unless installed via [`Master::set_trace_sink`].
    trace: Box<dyn TraceSink + Send>,
}

impl Master {
    /// Builds the master for the given configuration.
    ///
    /// # Panics
    /// On inconsistent configuration (no workers, mismatched lengths).
    pub fn new(cfg: MasterConfig) -> Self {
        let p = cfg.powers.len();
        assert!(p >= 1, "need at least one worker");
        assert_eq!(p, cfg.initial_q.len(), "powers/initial_q length mismatch");
        let p32 = u32::try_from(p).expect("worker count fits u32");
        let inner = if let Some(sizer) = cfg.scheme.formula_sizer(cfg.total, p32) {
            MasterInner::Simple(ChunkDispenser::new(cfg.total, sizer))
        } else {
            match cfg.scheme {
            SchemeKind::Wf => {
                let weights: Vec<f64> = cfg.powers.iter().map(|v| v.get()).collect();
                MasterInner::Wf(WeightedFactoring::new(cfg.total, &weights))
            }
            SchemeKind::Dtss => MasterInner::Dist(DistributedScheduler::new(
                DistKind::Dtss,
                cfg.total,
                &cfg.powers,
                &cfg.initial_q,
                cfg.acp,
            )),
            SchemeKind::Dfss => MasterInner::Dist(DistributedScheduler::new(
                DistKind::Dfss,
                cfg.total,
                &cfg.powers,
                &cfg.initial_q,
                cfg.acp,
            )),
            SchemeKind::Dfiss { sigma } => MasterInner::Dist(DistributedScheduler::new(
                DistKind::Dfiss { sigma },
                cfg.total,
                &cfg.powers,
                &cfg.initial_q,
                cfg.acp,
            )),
            SchemeKind::Dtfss => MasterInner::Dist(DistributedScheduler::new(
                DistKind::Dtfss,
                cfg.total,
                &cfg.powers,
                &cfg.initial_q,
                cfg.acp,
            )),
            // Every non-WF, non-distributed scheme has a formula sizer
            // and was handled above.
            _ => unreachable!("scheme without formula sizer must be WF or distributed"),
            }
        };
        Master {
            inner,
            scheme: cfg.scheme,
            served: vec![0; p],
            chunks_granted: vec![0; p],
            total: cfg.total,
            requeued: std::collections::VecDeque::new(),
            leases: LeaseTable::new(p, LeaseConfig::RUNTIME_DEFAULT),
            completed: vec![0u64; (cfg.total as usize).div_ceil(64)],
            completed_count: 0,
            speculated: 0,
            trace: Box::new(NoopSink),
        }
    }

    /// Installs a trace sink. The master emits chunk-lifecycle events
    /// (`planned`, `granted`, `deduped`, `lapsed`, `requeued`,
    /// `worker-dead`, `replanned`) on the *timestamped* lease-aware
    /// path only — [`Master::handle_request`] takes no clock, so
    /// engines driving it emit their own grant events instead.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink + Send>) {
        self.trace = sink;
    }

    fn trace_granted(
        &mut self,
        now: u64,
        worker: WorkerId,
        chunk: Chunk,
        speculative: bool,
        requeued: bool,
        retransmit: bool,
    ) {
        if self.trace.enabled() {
            self.trace.record(
                TraceEvent::new(now, EventKind::Granted { speculative, requeued, retransmit })
                    .on_worker(worker)
                    .on_chunk(chunk.start, chunk.len),
            );
        }
    }

    /// How many plans the distributed scheduler has made (0 for
    /// non-distributed schemes; 1 means only the initial plan).
    pub fn plans_made(&self) -> u32 {
        match &self.inner {
            MasterInner::Dist(d) => d.plans_made(),
            _ => 0,
        }
    }

    /// Adjusts the distributed re-plan threshold (fraction of changed
    /// ACPs that triggers recomputation; ≥ 1.0 disables re-planning).
    /// No-op for non-distributed schemes.
    pub fn set_replan_threshold(&mut self, t: f64) {
        if let MasterInner::Dist(d) = &mut self.inner {
            d.set_replan_threshold(t);
        }
    }

    /// Serves one slave request. `q` is the worker's freshly reported
    /// run-queue length (ignored by non-distributed schemes, exactly as
    /// in the paper where simple schemes treat all PEs alike).
    pub fn handle_request(&mut self, worker: WorkerId, q: u32) -> Assignment {
        assert!(worker < self.served.len(), "unknown worker {worker}");
        // Re-granted work (from failed workers) takes priority: it is
        // the oldest unfinished part of the loop.
        if let Some(chunk) = self.requeued.pop_front() {
            self.served[worker] += chunk.len;
            self.chunks_granted[worker] += 1;
            return Assignment::Chunk(chunk);
        }
        let assignment = match &mut self.inner {
            MasterInner::Simple(d) => match d.next_chunk() {
                Some(c) => Assignment::Chunk(c),
                None => Assignment::Finished,
            },
            MasterInner::Wf(wf) => match wf.next_chunk(worker) {
                Some(c) => Assignment::Chunk(c),
                None => Assignment::Finished,
            },
            MasterInner::Dist(d) => match d.request(worker, q) {
                Grant::Chunk(c) => Assignment::Chunk(c),
                Grant::Unavailable => Assignment::Retry,
                Grant::Finished => Assignment::Finished,
            },
        };
        if let Assignment::Chunk(c) = assignment {
            self.served[worker] += c.len;
            self.chunks_granted[worker] += 1;
        }
        assignment
    }

    /// Returns a granted chunk to the pool — used when the worker
    /// holding it is discovered dead. It will be re-granted (to any
    /// worker) before fresh scheme chunks.
    pub fn requeue(&mut self, chunk: Chunk) {
        assert!(chunk.end() <= self.total, "requeued chunk out of range");
        self.requeued.push_back(chunk);
    }

    /// Iterations not yet handed out (including requeued ones).
    pub fn remaining(&self) -> u64 {
        let fresh = match &self.inner {
            MasterInner::Simple(d) => d.remaining(),
            MasterInner::Wf(wf) => wf.remaining(),
            MasterInner::Dist(d) => d.remaining(),
        };
        fresh + self.requeued.iter().map(|c| c.len).sum::<u64>()
    }

    /// Whether every iteration has been assigned.
    pub fn is_finished(&self) -> bool {
        self.remaining() == 0
    }

    /// The scheme this master runs.
    pub fn scheme(&self) -> SchemeKind {
        self.scheme
    }

    /// Total loop size `I`.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Iterations granted to `worker` so far.
    pub fn iterations_served(&self, worker: WorkerId) -> u64 {
        self.served[worker]
    }

    /// Chunks granted to `worker` so far.
    pub fn chunks_served(&self, worker: WorkerId) -> u64 {
        self.chunks_granted[worker]
    }

    /// Total number of scheduling steps (master round-trips) so far.
    pub fn total_scheduling_steps(&self) -> u64 {
        self.chunks_granted.iter().sum()
    }

    // ------------------------------------------------------------------
    // Fault-tolerant path: chunk leases, dedup, speculation.
    //
    // `handle_request` above is the paper's original fail-free protocol
    // and stays untouched; the methods below are the lease-aware variant
    // both engines use when faults are possible. Time is an abstract
    // `u64` tick count supplied by the caller (see [`crate::fault`]).
    // ------------------------------------------------------------------

    /// Replaces the lease policy (defaults to
    /// [`LeaseConfig::RUNTIME_DEFAULT`]).
    pub fn set_lease_config(&mut self, cfg: LeaseConfig) {
        self.leases.set_config(cfg);
    }

    /// Read access to the lease table (deadlines, liveness).
    pub fn lease_table(&self) -> &LeaseTable {
        &self.leases
    }

    /// The earliest outstanding lease deadline — the caller's next
    /// wake-up time for [`Master::poll_leases`].
    pub fn next_lease_deadline(&self) -> Option<u64> {
        self.leases.next_deadline()
    }

    /// Serves one request on the lease-aware path.
    ///
    /// Differences from [`Master::handle_request`]:
    /// - every grant is recorded as a lease expiring at a deadline
    ///   derived from the chunk size and the worker's observed pace;
    /// - a worker that still holds a lease is re-sent the *same* chunk
    ///   (its previous reply was lost in flight) without double
    ///   accounting — grants are idempotent;
    /// - requeued chunks whose iterations have all since been completed
    ///   (a speculative copy won) are silently dropped;
    /// - when the scheme is exhausted but leases are still outstanding,
    ///   an idle worker may be handed a *speculative* copy of a leased
    ///   chunk (first result wins) instead of `Finished`;
    /// - `Finished` is only returned once **every** iteration has been
    ///   completed, not merely assigned.
    pub fn grant_with_lease(&mut self, worker: WorkerId, q: u32, now: u64) -> Assignment {
        assert!(worker < self.served.len(), "unknown worker {worker}");
        self.leases.heard_from(worker, now);

        // Lost-reply retransmit: the worker still owes us this chunk.
        if let Some(held) = self.leases.held_by(worker) {
            if !self.chunk_fully_complete(held) {
                self.leases.grant(worker, held, now, q, false);
                self.trace_granted(now, worker, held, false, false, true);
                return Assignment::Chunk(held);
            }
            // A speculative copy already finished it; release and fall
            // through to a fresh grant.
            self.leases.revoke(worker);
        }

        // Re-granted work first — oldest unfinished part of the loop.
        while let Some(chunk) = self.requeued.pop_front() {
            if self.chunk_fully_complete(chunk) {
                continue;
            }
            self.served[worker] += chunk.len;
            self.chunks_granted[worker] += 1;
            self.leases.grant(worker, chunk, now, q, false);
            self.trace_granted(now, worker, chunk, false, true, false);
            return Assignment::Chunk(chunk);
        }

        let assignment = loop {
            let plans_before = self.plans_made();
            let assignment = match &mut self.inner {
                MasterInner::Simple(d) => match d.next_chunk() {
                    Some(c) => Assignment::Chunk(c),
                    None => Assignment::Finished,
                },
                MasterInner::Wf(wf) => match wf.next_chunk(worker) {
                    Some(c) => Assignment::Chunk(c),
                    None => Assignment::Finished,
                },
                MasterInner::Dist(d) => match d.request(worker, q) {
                    Grant::Chunk(c) => Assignment::Chunk(c),
                    Grant::Unavailable => Assignment::Retry,
                    Grant::Finished => Assignment::Finished,
                },
            };
            let plans_after = self.plans_made();
            if plans_after != plans_before && self.trace.enabled() {
                self.trace.record(
                    TraceEvent::new(now, EventKind::Replanned { plan: plans_after })
                        .on_worker(worker),
                );
            }
            // A fresh chunk every iteration of which was seeded from a
            // recovered bitmap is done work; dispense the next one.
            match assignment {
                Assignment::Chunk(c) if self.chunk_fully_complete(c) => continue,
                other => break other,
            }
        };
        match assignment {
            Assignment::Chunk(c) => {
                self.served[worker] += c.len;
                self.chunks_granted[worker] += 1;
                self.leases.grant(worker, c, now, q, false);
                if self.trace.enabled() {
                    self.trace.record(
                        TraceEvent::new(now, EventKind::Planned).on_chunk(c.start, c.len),
                    );
                }
                self.trace_granted(now, worker, c, false, false, false);
                Assignment::Chunk(c)
            }
            Assignment::Retry => Assignment::Retry,
            Assignment::Finished => {
                if self.all_complete() {
                    return Assignment::Finished;
                }
                // End-of-loop: everything is assigned but not all of it
                // has come back. Put this idle worker on a speculative
                // copy of the most-overdue outstanding chunk.
                if let Some(c) = self.leases.speculation_candidate(worker, now) {
                    self.speculated += 1;
                    self.leases.grant(worker, c, now, q, true);
                    self.trace_granted(now, worker, c, true, false, false);
                    return Assignment::Chunk(c);
                }
                // Nothing to speculate on (cap reached, or the worker
                // itself holds the straggler): ask again later.
                Assignment::Retry
            }
        }
    }

    /// Records a completed chunk reported by `worker`, with
    /// first-result-wins dedup against the completion bitmap.
    pub fn record_completion(&mut self, worker: WorkerId, chunk: Chunk, now: u64) -> CompletionOutcome {
        self.record_completion_ranges(worker, chunk, now).0
    }

    /// Like [`Master::record_completion`], but also returns the maximal
    /// sub-ranges of `chunk` completed for the *first* time by this
    /// report. A caller proving exact-partition coverage (the serving
    /// layer's per-job traces) emits one `Completed` event per returned
    /// range, so partial overlap with earlier results — possible when a
    /// master was re-seeded from a recovered bitmap — never produces
    /// overlapping or missing completion intervals.
    pub fn record_completion_ranges(
        &mut self,
        worker: WorkerId,
        chunk: Chunk,
        now: u64,
    ) -> (CompletionOutcome, Vec<Chunk>) {
        assert!(chunk.end() <= self.total, "completed chunk out of range");
        self.leases.complete(worker, chunk, now);
        let (newly, ranges) = self.mark_completed_ranges(chunk);
        let duplicate = newly < chunk.len;
        if duplicate && self.trace.enabled() {
            self.trace.record(
                TraceEvent::new(now, EventKind::Deduped)
                    .on_worker(worker)
                    .on_chunk(chunk.start, chunk.len),
            );
        }
        (CompletionOutcome { newly_completed: newly, duplicate }, ranges)
    }

    /// Marks `chunk` complete with no lease or trace bookkeeping — the
    /// recovery path, seeding a freshly built master from completion
    /// records journaled before a crash. The scheme will still dispense
    /// the full `[0, total)` tiling; grants covering seeded iterations
    /// are absorbed by the same first-result-wins dedup that handles
    /// speculative copies, and fully seeded chunks are skipped. Returns
    /// how many of the iterations were newly marked.
    pub fn seed_completed(&mut self, chunk: Chunk) -> u64 {
        assert!(chunk.end() <= self.total, "seeded chunk out of range");
        self.mark_completed(chunk)
    }

    /// The completion bitmap as 64-bit words, bit `i % 64` of word
    /// `i / 64` set when iteration `i` has completed. This is what a
    /// checkpoint persists and [`Master::seed_completed`] restores.
    pub fn completed_words(&self) -> &[u64] {
        &self.completed
    }

    /// Notes a heartbeat from `worker`: refreshes liveness and extends
    /// its lease deadline.
    pub fn note_heartbeat(&mut self, worker: WorkerId, now: u64) {
        self.leases.heartbeat(worker, now);
    }

    /// Expires overdue leases at `now`. Each expired chunk whose
    /// iterations are still incomplete is requeued; holders that have
    /// also gone silent past the grace window are flagged dead (see
    /// [`LeaseTable::is_dead`]). Returns what expired so the caller can
    /// log fault events.
    pub fn poll_leases(&mut self, now: u64) -> Vec<ExpiredLease> {
        let expired = self.leases.expire(now);
        for e in &expired {
            let c = e.lease.chunk;
            if self.trace.enabled() {
                self.trace.record(
                    TraceEvent::new(now, EventKind::Lapsed)
                        .on_worker(e.lease.worker)
                        .on_chunk(c.start, c.len),
                );
                if e.holder_dead {
                    self.trace
                        .record(TraceEvent::new(now, EventKind::WorkerDead).on_worker(e.lease.worker));
                }
            }
            if !self.chunk_fully_complete(c) {
                self.requeued.push_back(c);
                if self.trace.enabled() {
                    self.trace.record(
                        TraceEvent::new(now, EventKind::Requeued)
                            .on_worker(e.lease.worker)
                            .on_chunk(c.start, c.len),
                    );
                }
            }
        }
        expired
    }

    /// Handles an observed disconnect of `worker`: revokes its lease,
    /// requeues the chunk it held (if still incomplete) and marks the
    /// worker dead until it is heard from again. Returns the requeued
    /// chunk, if any.
    pub fn worker_disconnected(&mut self, worker: WorkerId) -> Option<Chunk> {
        self.leases.mark_dead(worker);
        let chunk = self.leases.revoke(worker)?;
        if self.chunk_fully_complete(chunk) {
            return None;
        }
        self.requeued.push_back(chunk);
        Some(chunk)
    }

    /// Whether `worker` is currently considered dead (disconnected, or
    /// lease-expired and silent). Any sign of life clears the flag.
    pub fn worker_is_dead(&self, worker: WorkerId) -> bool {
        self.leases.is_dead(worker)
    }

    /// Iterations completed (each counted once, regardless of how many
    /// copies were executed).
    pub fn iterations_completed(&self) -> u64 {
        self.completed_count
    }

    /// Whether every iteration in `[0, total)` has been completed at
    /// least once — the fault-tolerant termination condition.
    pub fn all_complete(&self) -> bool {
        self.completed_count == self.total
    }

    /// Speculative (duplicate) grants handed out so far.
    pub fn speculative_grants(&self) -> u64 {
        self.speculated
    }

    /// Whether iteration `i` has been completed.
    pub fn iteration_completed(&self, i: u64) -> bool {
        debug_assert!(i < self.total);
        self.completed[(i / 64) as usize] & (1u64 << (i % 64)) != 0
    }

    fn chunk_fully_complete(&self, chunk: Chunk) -> bool {
        // Wordwise: compare 64 iterations per step instead of one —
        // big chunks at cluster scale make the per-bit walk visible.
        let (start, end) = (chunk.start, chunk.end());
        let mut i = start;
        while i < end {
            let word = (i / 64) as usize;
            let lo = i % 64;
            let span = (64 - lo).min(end - i);
            let mask = if span == 64 { u64::MAX } else { ((1u64 << span) - 1) << lo };
            if self.completed[word] & mask != mask {
                return false;
            }
            i += span;
        }
        true
    }

    fn mark_completed(&mut self, chunk: Chunk) -> u64 {
        self.mark_completed_ranges(chunk).0
    }

    /// Whether no iteration of `chunk` is completed yet (wordwise).
    fn chunk_fully_incomplete(&self, chunk: Chunk) -> bool {
        let (start, end) = (chunk.start, chunk.end());
        let mut i = start;
        while i < end {
            let word = (i / 64) as usize;
            let lo = i % 64;
            let span = (64 - lo).min(end - i);
            let mask = if span == 64 { u64::MAX } else { ((1u64 << span) - 1) << lo };
            if self.completed[word] & mask != 0 {
                return false;
            }
            i += span;
        }
        true
    }

    fn mark_completed_ranges(&mut self, chunk: Chunk) -> (u64, Vec<Chunk>) {
        // Fast path — the overwhelmingly common case is a chunk with no
        // prior completions (overlap only happens after speculation or
        // duplicated messages): set whole words at a time.
        if chunk.len > 0 && self.chunk_fully_incomplete(chunk) {
            let (start, end) = (chunk.start, chunk.end());
            let mut i = start;
            while i < end {
                let word = (i / 64) as usize;
                let lo = i % 64;
                let span = (64 - lo).min(end - i);
                let mask = if span == 64 { u64::MAX } else { ((1u64 << span) - 1) << lo };
                self.completed[word] |= mask;
                i += span;
            }
            self.completed_count += chunk.len;
            return (chunk.len, vec![chunk]);
        }
        let mut newly = 0;
        let mut ranges: Vec<Chunk> = Vec::new();
        let mut run_start: Option<u64> = None;
        for i in chunk.start..chunk.end() {
            let (word, bit) = ((i / 64) as usize, i % 64);
            if self.completed[word] & (1u64 << bit) == 0 {
                self.completed[word] |= 1u64 << bit;
                newly += 1;
                run_start.get_or_insert(i);
            } else if let Some(s) = run_start.take() {
                ranges.push(Chunk::new(s, i - s));
            }
        }
        if let Some(s) = run_start {
            ranges.push(Chunk::new(s, chunk.end() - s));
        }
        self.completed_count += newly;
        (newly, ranges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::validate_tiling;

    fn drain(master: &mut Master, p: usize) -> Vec<Chunk> {
        let mut chunks = Vec::new();
        let mut w = 0;
        loop {
            match master.handle_request(w % p, 1) {
                Assignment::Chunk(c) => chunks.push(c),
                Assignment::Retry => {}
                Assignment::Finished => break,
            }
            w += 1;
        }
        chunks
    }

    #[test]
    fn every_scheme_tiles_the_loop() {
        let schemes = [
            SchemeKind::Static,
            SchemeKind::Pure,
            SchemeKind::Css { k: 7 },
            SchemeKind::Gss { min_chunk: 1 },
            SchemeKind::Tss,
            SchemeKind::Fss,
            SchemeKind::Fiss { sigma: 3 },
            SchemeKind::Tfss,
            SchemeKind::Wf,
            SchemeKind::Dtss,
            SchemeKind::Dfss,
            SchemeKind::Dfiss { sigma: 3 },
            SchemeKind::Dtfss,
        ];
        for scheme in schemes {
            let mut m = Master::new(MasterConfig::homogeneous(scheme, 1000, 4));
            let chunks = drain(&mut m, 4);
            validate_tiling(&chunks, 1000)
                .unwrap_or_else(|e| panic!("{}: {e}", scheme.name()));
            assert!(m.is_finished());
            assert_eq!(m.total_scheduling_steps(), chunks.len() as u64);
        }
    }

    #[test]
    fn simple_schemes_ignore_reported_load() {
        let mut a = Master::new(MasterConfig::homogeneous(SchemeKind::Tss, 1000, 4));
        let mut b = Master::new(MasterConfig::homogeneous(SchemeKind::Tss, 1000, 4));
        let ca = a.handle_request(0, 1);
        let cb = b.handle_request(0, 99);
        assert_eq!(ca, cb);
    }

    #[test]
    fn distributed_schemes_respond_to_load() {
        let cfg = MasterConfig::heterogeneous(
            SchemeKind::Dtss,
            10_000,
            vec![VirtualPower::new(1.0), VirtualPower::new(1.0)],
        );
        let mut m = Master::new(cfg);
        let c_loaded = match m.handle_request(0, 5) {
            Assignment::Chunk(c) => c.len,
            a => panic!("{a:?}"),
        };
        let c_free = match m.handle_request(1, 1) {
            Assignment::Chunk(c) => c.len,
            a => panic!("{a:?}"),
        };
        assert!(c_free > c_loaded, "free {c_free} vs loaded {c_loaded}");
    }

    #[test]
    fn per_worker_accounting_sums_to_total() {
        let mut m = Master::new(MasterConfig::homogeneous(SchemeKind::Fss, 5000, 8));
        let _ = drain(&mut m, 8);
        let sum: u64 = (0..8).map(|w| m.iterations_served(w)).sum();
        assert_eq!(sum, 5000);
    }

    #[test]
    fn scheme_names_match_paper() {
        assert_eq!(SchemeKind::Tfss.name(), "TFSS");
        assert_eq!(SchemeKind::Dtfss.name(), "DTFSS");
        assert!(!SchemeKind::Wf.is_distributed());
        assert!(SchemeKind::Dfiss { sigma: 3 }.is_distributed());
    }

    #[test]
    fn retry_surfaces_unavailability() {
        let cfg = MasterConfig {
            scheme: SchemeKind::Dfss,
            total: 100,
            powers: vec![VirtualPower::new(1.0), VirtualPower::new(1.0)],
            initial_q: vec![1, 1],
            acp: AcpConfig::PAPER,
        };
        let mut m = Master::new(cfg);
        assert_eq!(m.handle_request(1, 1000), Assignment::Retry);
        assert!(matches!(m.handle_request(0, 1), Assignment::Chunk(_)));
    }
}

#[cfg(test)]
mod requeue_tests {
    use super::*;
    use crate::chunk::Chunk;

    #[test]
    fn requeued_chunk_served_first() {
        let mut m = Master::new(MasterConfig::homogeneous(SchemeKind::Css { k: 10 }, 100, 2));
        let first = match m.handle_request(0, 1) {
            Assignment::Chunk(c) => c,
            a => panic!("{a:?}"),
        };
        // Worker 0 dies holding `first`; it goes back to the pool.
        m.requeue(first);
        assert_eq!(m.remaining(), 100);
        // The next requester gets exactly that chunk again.
        match m.handle_request(1, 1) {
            Assignment::Chunk(c) => assert_eq!(c, first),
            a => panic!("{a:?}"),
        }
    }

    #[test]
    fn requeue_extends_a_finished_loop() {
        let mut m = Master::new(MasterConfig::homogeneous(SchemeKind::Css { k: 100 }, 100, 1));
        let c = match m.handle_request(0, 1) {
            Assignment::Chunk(c) => c,
            a => panic!("{a:?}"),
        };
        assert!(m.is_finished());
        m.requeue(c);
        assert!(!m.is_finished());
        assert_eq!(m.remaining(), 100);
        assert!(matches!(m.handle_request(0, 1), Assignment::Chunk(_)));
        assert!(m.is_finished());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn requeue_rejects_foreign_chunks() {
        let mut m = Master::new(MasterConfig::homogeneous(SchemeKind::Tss, 100, 2));
        m.requeue(Chunk::new(90, 20));
    }
}

#[cfg(test)]
mod lease_tests {
    use super::*;
    use crate::fault::LeaseConfig;

    const TIGHT: LeaseConfig = LeaseConfig {
        base_ticks: 100,
        default_ticks_per_iter: 0,
        grace: 2.0,
        dead_after_ticks: 50,
        max_speculations: 2,
    };

    fn master(scheme: SchemeKind, total: u64, p: usize) -> Master {
        let mut m = Master::new(MasterConfig::homogeneous(scheme, total, p));
        m.set_lease_config(TIGHT);
        m
    }

    fn chunk_of(a: Assignment) -> Chunk {
        match a {
            Assignment::Chunk(c) => c,
            other => panic!("expected chunk, got {other:?}"),
        }
    }

    #[test]
    fn lease_expiry_requeues_and_another_worker_finishes() {
        let mut m = master(SchemeKind::Css { k: 50 }, 100, 2);
        let c0 = chunk_of(m.grant_with_lease(0, 1, 0));
        // Worker 0 goes silent; its lease lapses and the chunk requeues.
        let expired = m.poll_leases(500);
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].lease.chunk, c0);
        assert!(expired[0].holder_dead);
        assert!(m.worker_is_dead(0));
        // Worker 1 picks up the requeued chunk first.
        let c1 = chunk_of(m.grant_with_lease(1, 1, 600));
        assert_eq!(c1, c0);
        let out = m.record_completion(1, c1, 700);
        assert_eq!(out.newly_completed, 50);
        assert!(!out.duplicate);
        // Drain the rest through worker 1.
        loop {
            match m.grant_with_lease(1, 1, 800) {
                Assignment::Chunk(c) => {
                    m.record_completion(1, c, 900);
                }
                Assignment::Retry => {}
                Assignment::Finished => break,
            }
        }
        assert!(m.all_complete());
        assert_eq!(m.iterations_completed(), 100);
    }

    #[test]
    fn duplicate_results_are_deduplicated() {
        let mut m = master(SchemeKind::Css { k: 10 }, 20, 2);
        let c = chunk_of(m.grant_with_lease(0, 1, 0));
        let first = m.record_completion(0, c, 10);
        assert_eq!(first.newly_completed, 10);
        let again = m.record_completion(1, c, 20);
        assert_eq!(again.newly_completed, 0);
        assert!(again.duplicate);
        assert_eq!(m.iterations_completed(), 10);
    }

    #[test]
    fn retransmit_regrants_the_same_chunk_without_double_accounting() {
        let mut m = master(SchemeKind::Css { k: 10 }, 40, 1);
        let c = chunk_of(m.grant_with_lease(0, 1, 0));
        let served = m.iterations_served(0);
        let steps = m.total_scheduling_steps();
        // The reply got lost; the worker asks again without a result.
        let c2 = chunk_of(m.grant_with_lease(0, 1, 5));
        assert_eq!(c2, c);
        assert_eq!(m.iterations_served(0), served);
        assert_eq!(m.total_scheduling_steps(), steps);
    }

    #[test]
    fn end_of_loop_speculation_first_result_wins() {
        let mut m = master(SchemeKind::Css { k: 50 }, 100, 2);
        let c0 = chunk_of(m.grant_with_lease(0, 1, 0));
        let c1 = chunk_of(m.grant_with_lease(1, 1, 0));
        m.record_completion(1, c1, 50);
        // Scheme is exhausted; worker 1 is idle while worker 0 still
        // holds c0 → worker 1 gets a speculative copy of c0.
        let spec = chunk_of(m.grant_with_lease(1, 1, 60));
        assert_eq!(spec, c0);
        assert_eq!(m.speculative_grants(), 1);
        // The speculative copy lands first...
        let out = m.record_completion(1, spec, 80);
        assert_eq!(out.newly_completed, 50);
        // ...then the original straggler reports: pure duplicate.
        let dup = m.record_completion(0, c0, 90);
        assert_eq!(dup.newly_completed, 0);
        assert!(dup.duplicate);
        assert!(m.all_complete());
        assert_eq!(m.grant_with_lease(0, 1, 95), Assignment::Finished);
        assert_eq!(m.grant_with_lease(1, 1, 95), Assignment::Finished);
    }

    #[test]
    fn disconnect_revokes_and_requeues() {
        let mut m = master(SchemeKind::Css { k: 25 }, 100, 2);
        let c0 = chunk_of(m.grant_with_lease(0, 1, 0));
        assert_eq!(m.worker_disconnected(0), Some(c0));
        assert!(m.worker_is_dead(0));
        // The requeued chunk goes to the next requester.
        assert_eq!(chunk_of(m.grant_with_lease(1, 1, 10)), c0);
        // The worker reconnecting (any sign of life) clears the flag.
        let _ = m.grant_with_lease(0, 1, 20);
        assert!(!m.worker_is_dead(0));
    }

    #[test]
    fn requeued_chunk_already_completed_by_speculation_is_dropped() {
        let mut m = master(SchemeKind::Css { k: 50 }, 100, 3);
        let c0 = chunk_of(m.grant_with_lease(0, 1, 0));
        let c1 = chunk_of(m.grant_with_lease(1, 1, 0));
        m.record_completion(1, c1, 10);
        // Worker 1 speculates on c0 (past the age gate at half of c0's
        // lease window) and wins.
        let spec = chunk_of(m.grant_with_lease(1, 1, 60));
        assert_eq!(spec, c0);
        m.record_completion(1, spec, 70);
        // Worker 0's lease now lapses; c0 must NOT be requeued (done).
        let _ = m.poll_leases(10_000);
        assert_eq!(m.grant_with_lease(2, 1, 10_001), Assignment::Finished);
        assert!(m.all_complete());
    }

    #[test]
    fn finished_only_after_all_iterations_complete() {
        let mut m = master(SchemeKind::Css { k: 100 }, 100, 2);
        let c = chunk_of(m.grant_with_lease(0, 1, 0));
        // All work is assigned, but worker 1 cannot be told Finished.
        // Before the holder has burned half its lease the age gate
        // keeps the idle worker on Retry; after that it gets a
        // speculative copy of the outstanding chunk.
        assert_eq!(m.grant_with_lease(1, 1, 10), Assignment::Retry);
        let spec = chunk_of(m.grant_with_lease(1, 1, 60));
        assert_eq!(spec, c);
        m.record_completion(0, c, 80);
        assert!(m.all_complete());
        assert_eq!(m.grant_with_lease(1, 1, 90), Assignment::Finished);
    }

    #[test]
    fn lease_path_tiles_the_loop_for_every_scheme() {
        for scheme in [
            SchemeKind::Static,
            SchemeKind::Pure,
            SchemeKind::Css { k: 7 },
            SchemeKind::Gss { min_chunk: 1 },
            SchemeKind::Tss,
            SchemeKind::Fss,
            SchemeKind::Fiss { sigma: 3 },
            SchemeKind::Tfss,
            SchemeKind::Wf,
            SchemeKind::Dtss,
            SchemeKind::Dfss,
            SchemeKind::Dfiss { sigma: 3 },
            SchemeKind::Dtfss,
        ] {
            let mut m = master(scheme, 500, 4);
            let mut now = 0u64;
            let mut finished = [false; 4];
            while !finished.iter().all(|f| *f) {
                for (w, done) in finished.iter_mut().enumerate() {
                    if *done {
                        continue;
                    }
                    now += 1;
                    match m.grant_with_lease(w, 1, now) {
                        Assignment::Chunk(c) => {
                            now += 1;
                            m.record_completion(w, c, now);
                        }
                        Assignment::Retry => {}
                        Assignment::Finished => *done = true,
                    }
                }
            }
            assert!(m.all_complete(), "{}", scheme.name());
            assert_eq!(m.iterations_completed(), 500, "{}", scheme.name());
        }
    }
}
