//! Distributed self-scheduling: DTSS (§3.1) and the paper's new
//! distributed schemes DFSS, DFISS, DTFSS (§6).
//!
//! The paper's definition of *distributed* (§6): a scheme that uses,
//! for load balancing, (a) the initial computing power of the PEs
//! **and** (b) run-time information about how many processes each PE is
//! running — i.e. the [ACP model](crate::power). Every simple scheme of
//! §2 becomes a centralized master–slave *distributed* scheme by:
//!
//! 1. running the simple scheme's chunk formula with "`p = A`" virtual
//!    processors (the total available power), and
//! 2. giving PE `j` a share of each stage proportional to `A_j / A`,
//!    i.e. `C_j^k = SC_k · A_j / A` where `SC_k` is the stage total, and
//! 3. **re-planning** — recomputing the scheme parameters with `I :=
//!    remaining iterations` — whenever more than half of the reported
//!    `A_i` values have changed since the current plan was made
//!    (master step 2(c) of the DTSS algorithm).
//!
//! DTSS itself is not stage-structured: each request from PE `j`
//! consumes the next `A_j` *virtual* TSS chunks in closed form,
//! `C = A_j · (F - D·(S + (A_j - 1)/2))` where `S` is the number of
//! virtual chunks consumed so far.
//!
//! ### A note on two formula details
//!
//! - With `A` in the hundreds (ACP scale × cluster power), the integer
//!   decrement `D = ⌊(F-L)/(N-1)⌋` of plain TSS truncates to zero; we
//!   keep `D` real-valued and floor only the final chunk size, which is
//!   the only reading under which DTSS's closed form is non-degenerate.
//! - §6 prints DFSS's stage total as `⌊2R/A⌋`. Dimensional analysis
//!   (the per-PE shares `C_j = SC_k·A_j/A` must sum to `SC_k`, and DFSS
//!   must degenerate to FSS's "half of remaining" on a homogeneous
//!   dedicated cluster) shows this is a typo for `R/2`; we implement
//!   `SC_k = round(R_k / α)` with `α = 2`, matching FSS.

use crate::chunk::Chunk;
use crate::power::{Acp, AcpConfig, VirtualPower, WorkerPower};
use crate::scheme::TrapezoidSelfSched;

/// Identifies a slave PE (dense index, assigned at registration).
pub type WorkerId = usize;

/// Which distributed scheme a [`DistributedScheduler`] runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DistKind {
    /// Distributed trapezoid self-scheduling (Xu & Chronopoulos).
    Dtss,
    /// Distributed factoring self-scheduling (this paper).
    Dfss,
    /// Distributed fixed-increase self-scheduling (this paper);
    /// `sigma` is the stage count, `X = sigma + 2` as suggested.
    Dfiss {
        /// Number of planned stages `σ` (≥ 2).
        sigma: u32,
    },
    /// Distributed trapezoid-factoring self-scheduling (this paper).
    Dtfss,
}

impl DistKind {
    /// Display name used in tables and reports.
    pub fn name(&self) -> &'static str {
        match self {
            DistKind::Dtss => "DTSS",
            DistKind::Dfss => "DFSS",
            DistKind::Dfiss { .. } => "DFISS",
            DistKind::Dtfss => "DTFSS",
        }
    }
}

/// What the master answers to a slave's request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Grant {
    /// Work to do.
    Chunk(Chunk),
    /// The worker's ACP is zero (below threshold) — it should recompute
    /// its run-queue and ask again later (slave algorithm step 1).
    Unavailable,
    /// No iterations remain; the worker may terminate.
    Finished,
}

/// Plan state for the scheme kinds.
#[derive(Debug, Clone)]
enum Plan {
    /// DTSS closed form over virtual chunks.
    Dtss {
        f: f64,
        d: f64,
        /// Virtual chunks consumed so far (`S_{i-1}` in the paper).
        s_consumed: u64,
    },
    /// Stage-structured schemes: deterministic stage totals `SC_k`.
    Stages {
        /// `SC_k` values, extended lazily.
        totals: Vec<u64>,
        rule: StageRule,
        /// Next stage index for every worker.
        worker_stage: Vec<usize>,
    },
}

/// How the lazy `SC_k` sequence is extended.
#[derive(Debug, Clone)]
enum StageRule {
    /// DFSS: `SC_k = round(R_{i-1}/2)` — half of the iterations
    /// actually remaining when the stage opens (the paper's `R_{i-1}`
    /// is live master state, so per-request rounding deficits are
    /// absorbed instead of accumulating into a singleton tail).
    HalveRemaining,
    /// DFISS: `SC_k = SC_0 + round(k·B)` for the planned `σ` stages,
    /// continuing the linear growth if rounding leaves work.
    LinearIncrease { sc0: u64, bump: f64 },
    /// DTFSS: groups of `A` consecutive TSS(`A`) formula chunks; once
    /// exhausted, halve-remaining (factoring) finishes the tail.
    TssGroups { groups: Vec<u64> },
}

/// The master-side scheduler for the distributed schemes.
///
/// Drive it with [`DistributedScheduler::request`]: each call carries
/// the requesting worker's freshly reported run-queue length (the
/// paper's slaves piggy-back `A_i` on every request) and returns a
/// [`Grant`]. Re-planning happens automatically inside `request` when
/// more than `replan_threshold` of the workers changed their ACP.
/// # Example
///
/// ```
/// use lss_core::distributed::{DistKind, DistributedScheduler, Grant};
/// use lss_core::power::{AcpConfig, VirtualPower};
///
/// // One fast (2.65×) and one slow worker, dedicated.
/// let powers = [VirtualPower::new(2.65), VirtualPower::new(1.0)];
/// let mut dtss =
///     DistributedScheduler::dedicated(DistKind::Dtss, 1000, &powers, AcpConfig::PAPER);
/// let (fast, slow) = match (dtss.request(0, 1), dtss.request(1, 1)) {
///     (Grant::Chunk(a), Grant::Chunk(b)) => (a.len, b.len),
///     other => panic!("{other:?}"),
/// };
/// assert!(fast > 2 * slow, "the fast PE draws a ~2.65× chunk");
/// ```
#[derive(Debug, Clone)]
pub struct DistributedScheduler {
    kind: DistKind,
    cfg: AcpConfig,
    next_start: u64,
    remaining: u64,
    workers: Vec<WorkerPower>,
    /// ACP of each worker *at plan time* (the ACPSA).
    acpsa: Vec<Acp>,
    /// Total available power at plan time.
    total_acp: u64,
    plan: Plan,
    /// Re-plan when `changed_workers > replan_threshold · p`.
    replan_threshold: f64,
    /// Number of workers whose current ACP differs from the ACPSA —
    /// maintained incrementally so `request` never rescans all `p`
    /// workers (the scan made distributed schemes O(p²) per run, which
    /// is what kept the simulator from carrying 10k+ PEs).
    diverged: usize,
    /// Count of plans made (1 = initial); exposed for tests/ablations.
    plans_made: u32,
}

impl DistributedScheduler {
    /// Creates a scheduler once all workers have reported in (master
    /// step 1(a)): `powers[i]` and `initial_q[i]` describe worker `i`.
    ///
    /// # Panics
    /// If the worker lists are empty or of different lengths, or if no
    /// worker has positive ACP (the §5.2 starvation scenario — under
    /// [`AcpConfig::PAPER`] this cannot happen for finite loads).
    pub fn new(
        kind: DistKind,
        total: u64,
        powers: &[VirtualPower],
        initial_q: &[u32],
        cfg: AcpConfig,
    ) -> Self {
        assert!(!powers.is_empty(), "need at least one worker");
        assert_eq!(powers.len(), initial_q.len(), "powers/queues length mismatch");
        let workers: Vec<WorkerPower> = powers
            .iter()
            .zip(initial_q)
            .map(|(&v, &q)| {
                let mut w = WorkerPower::dedicated(v, &cfg);
                w.report_queue(q, &cfg);
                w
            })
            .collect();
        let mut sched = DistributedScheduler {
            kind,
            cfg,
            next_start: 0,
            remaining: total,
            acpsa: Vec::new(),
            total_acp: 0,
            plan: Plan::Dtss { f: 0.0, d: 0.0, s_consumed: 0 },
            workers,
            replan_threshold: 0.5,
            plans_made: 0,
            diverged: 0,
        };
        sched.replan();
        assert!(
            sched.total_acp > 0,
            "no worker has positive available computing power; \
             with AcpConfig::ORIGINAL_DTSS this is the §5.2(I) starvation bug"
        );
        sched
    }

    /// Convenience constructor for a dedicated cluster (`Q_i = 1`).
    pub fn dedicated(kind: DistKind, total: u64, powers: &[VirtualPower], cfg: AcpConfig) -> Self {
        let q = vec![1u32; powers.len()];
        Self::new(kind, total, powers, &q, cfg)
    }

    /// Iterations not yet handed out.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Whether the loop is fully assigned.
    pub fn is_finished(&self) -> bool {
        self.remaining == 0
    }

    /// Number of registered workers.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Current ACP of a worker (after its last report).
    pub fn worker_acp(&self, w: WorkerId) -> Acp {
        self.workers[w].acp
    }

    /// Total available power recorded in the current plan.
    pub fn planned_total_acp(&self) -> u64 {
        self.total_acp
    }

    /// How many plans have been made (1 = just the initial one).
    pub fn plans_made(&self) -> u32 {
        self.plans_made
    }

    /// Sets the fraction of changed ACPs that triggers a re-plan
    /// (default 0.5, the paper's "more than half"). A value `>= 1.0`
    /// disables re-planning — the ablation baseline.
    pub fn set_replan_threshold(&mut self, t: f64) {
        self.replan_threshold = t;
    }

    /// Initial service order: worker ids sorted by ACP, decreasing
    /// (master step 1(a) sorts the ACPSA and queues requests that way).
    pub fn initial_request_order(&self) -> Vec<WorkerId> {
        let mut ids: Vec<WorkerId> = (0..self.workers.len()).collect();
        ids.sort_by(|&a, &b| self.workers[b].acp.cmp(&self.workers[a].acp).then(a.cmp(&b)));
        ids
    }

    /// A slave's request: it reports its current run-queue length `q`
    /// (from which the master derives `A_i`) and receives a [`Grant`].
    pub fn request(&mut self, worker: WorkerId, q: u32) -> Grant {
        assert!(worker < self.workers.len(), "unknown worker {worker}");
        if self.remaining == 0 {
            return Grant::Finished;
        }
        let was_diverged = self.workers[worker].acp != self.acpsa[worker];
        self.workers[worker].report_queue(q, &self.cfg);
        let acp = self.workers[worker].acp;
        let is_diverged = acp != self.acpsa[worker];
        match (was_diverged, is_diverged) {
            (false, true) => self.diverged += 1,
            (true, false) => self.diverged -= 1,
            _ => {}
        }
        if !acp.is_available() {
            return Grant::Unavailable;
        }
        self.maybe_replan();
        let proposed = self.chunk_for(worker, acp);
        let len = proposed.clamp(1, self.remaining);
        let chunk = Chunk::new(self.next_start, len);
        self.next_start += len;
        self.remaining -= len;
        Grant::Chunk(chunk)
    }

    /// Master step 2(c): re-plan if more than the threshold fraction of
    /// ACPs changed since the ACPSA was recorded.
    fn maybe_replan(&mut self) {
        if (self.diverged as f64) > self.replan_threshold * self.workers.len() as f64 {
            self.replan();
        }
    }

    /// (Re)computes the plan with `I :=` remaining iterations and the
    /// currently reported ACPs (master step 1(b)).
    fn replan(&mut self) {
        self.acpsa = self.workers.iter().map(|w| w.acp).collect();
        self.diverged = 0;
        self.total_acp = self.acpsa.iter().map(|a| a.get() as u64).sum();
        let i = self.remaining;
        let a = self.total_acp.max(1);
        self.plans_made += 1;
        self.plan = match self.kind {
            DistKind::Dtss => {
                // TSS with p = A: F = I/(2A), L = 1; N = 2I/(F+L);
                // D = (F-L)/(N-1), kept real-valued (see module docs).
                let f = (i as f64 / (2.0 * a as f64)).max(1.0);
                let n = (2.0 * i as f64 / (f + 1.0)).max(2.0);
                let d = (f - 1.0) / (n - 1.0);
                Plan::Dtss { f, d, s_consumed: 0 }
            }
            DistKind::Dfss => Plan::Stages {
                totals: Vec::new(),
                rule: StageRule::HalveRemaining,
                worker_stage: vec![0; self.workers.len()],
            },
            DistKind::Dfiss { sigma } => {
                let sigma = sigma.max(2);
                let x = sigma + 2;
                // Stage-level parameters (paper §6, modification 1(b)):
                // SC_0 = ⌊I/X⌋, B = ⌈2I(1-σ/X)/(σ(σ-1))⌉ — we keep B
                // real-valued and round per stage, as in simple FISS.
                let sc0 = (i / x as u64).max(1);
                let bump = 2.0 * i as f64 * (1.0 - sigma as f64 / x as f64)
                    / (sigma as f64 * (sigma as f64 - 1.0));
                Plan::Stages {
                    totals: Vec::new(),
                    rule: StageRule::LinearIncrease { sc0, bump },
                    worker_stage: vec![0; self.workers.len()],
                }
            }
            DistKind::Dtfss => {
                // TSS with p = A virtual processors, grouped A-at-a-time.
                let a32 = u32::try_from(a.min(u32::MAX as u64)).expect("clamped");
                let tss = TrapezoidSelfSched::new(i, a32.max(1));
                let seq = tss.formula_sequence();
                let groups: Vec<u64> = seq
                    .chunks(a as usize)
                    .map(|g| g.iter().sum::<u64>())
                    .collect();
                Plan::Stages {
                    totals: Vec::new(),
                    rule: StageRule::TssGroups { groups },
                    worker_stage: vec![0; self.workers.len()],
                }
            }
        };
    }

    /// Stage total `SC_k`, extending the lazy sequence as needed.
    /// `remaining` is the live remaining-iterations count — the
    /// paper's `R_{i-1}` — consulted when a new stage opens.
    fn stage_total(totals: &mut Vec<u64>, rule: &StageRule, k: usize, remaining: u64) -> u64 {
        while totals.len() <= k {
            let next = match rule {
                StageRule::HalveRemaining => {
                    ((remaining as f64 / 2.0).round() as u64).clamp(1, remaining.max(1))
                }
                StageRule::LinearIncrease { sc0, bump } => {
                    let k = totals.len() as f64;
                    ((*sc0 as f64 + k * *bump).round() as u64).max(1)
                }
                StageRule::TssGroups { groups } => match groups.get(totals.len()) {
                    Some(&g) => g,
                    // Formula exhausted: factoring-style halving of
                    // whatever actually remains.
                    None => ((remaining as f64 / 2.0).round() as u64).clamp(1, remaining.max(1)),
                },
            };
            totals.push(next);
        }
        totals[k]
    }

    /// Chunk proposal for `worker` holding power `acp` under the
    /// current plan (before global clamping).
    fn chunk_for(&mut self, worker: WorkerId, acp: Acp) -> u64 {
        let a_i = acp.get() as f64;
        let a_total = self.total_acp.max(1) as f64;
        let remaining = self.remaining;
        match &mut self.plan {
            Plan::Dtss { f, d, s_consumed } => {
                // C = A_i · (F - D·(S_{i-1} + (A_i - 1)/2))
                let s = *s_consumed as f64;
                let c = a_i * (*f - *d * (s + (a_i - 1.0) / 2.0));
                *s_consumed += acp.get() as u64;
                c.floor().max(1.0) as u64
            }
            Plan::Stages { totals, rule, worker_stage } => {
                let k = worker_stage[worker];
                worker_stage[worker] += 1;
                let sc_k = Self::stage_total(totals, rule, k, remaining);
                ((sc_k as f64 * a_i / a_total).round() as u64).max(1)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::validate_tiling;

    fn powers(v: &[f64]) -> Vec<VirtualPower> {
        v.iter().map(|&x| VirtualPower::new(x)).collect()
    }

    /// Round-robin drain; returns per-worker totals and the chunk list.
    fn drain_rr(sched: &mut DistributedScheduler, queues: &[u32]) -> (Vec<u64>, Vec<Chunk>) {
        let p = sched.num_workers();
        let mut totals = vec![0u64; p];
        let mut chunks = Vec::new();
        let mut w = 0usize;
        let mut idle_rounds = 0;
        loop {
            match sched.request(w % p, queues[w % p]) {
                Grant::Chunk(c) => {
                    totals[w % p] += c.len;
                    chunks.push(c);
                    idle_rounds = 0;
                }
                Grant::Unavailable => {
                    idle_rounds += 1;
                    assert!(idle_rounds <= p, "all workers unavailable");
                }
                Grant::Finished => break,
            }
            w += 1;
        }
        (totals, chunks)
    }

    #[test]
    fn dtss_dedicated_tiles_exactly() {
        let mut s = DistributedScheduler::dedicated(
            DistKind::Dtss,
            10_000,
            &powers(&[3.0, 3.0, 3.0, 1.0, 1.0, 1.0, 1.0, 1.0]),
            AcpConfig::PAPER,
        );
        let (_, chunks) = drain_rr(&mut s, &[1; 8]);
        validate_tiling(&chunks, 10_000).unwrap();
    }

    #[test]
    fn all_kinds_tile_exactly() {
        for kind in [
            DistKind::Dtss,
            DistKind::Dfss,
            DistKind::Dfiss { sigma: 4 },
            DistKind::Dtfss,
        ] {
            for total in [1u64, 17, 1000, 12_345] {
                let mut s = DistributedScheduler::dedicated(
                    kind,
                    total,
                    &powers(&[2.0, 1.0, 1.5]),
                    AcpConfig::PAPER,
                );
                let (_, chunks) = drain_rr(&mut s, &[1; 3]);
                validate_tiling(&chunks, total)
                    .unwrap_or_else(|e| panic!("{} I={total}: {e}", kind.name()));
            }
        }
    }

    #[test]
    fn faster_workers_get_proportional_shares() {
        for kind in [
            DistKind::Dtss,
            DistKind::Dfss,
            DistKind::Dfiss { sigma: 4 },
            DistKind::Dtfss,
        ] {
            let mut s = DistributedScheduler::dedicated(
                kind,
                100_000,
                &powers(&[3.0, 1.0]),
                AcpConfig::PAPER,
            );
            let (totals, _) = drain_rr(&mut s, &[1, 1]);
            let ratio = totals[0] as f64 / totals[1].max(1) as f64;
            assert!(
                (1.8..5.0).contains(&ratio),
                "{}: fast/slow ratio {ratio} not ≈ 3 ({totals:?})",
                kind.name()
            );
        }
    }

    #[test]
    fn dtss_first_chunk_matches_closed_form() {
        // Single worker, V = 1, dedicated: A = 10, F = I/(2·10).
        let mut s = DistributedScheduler::dedicated(
            DistKind::Dtss,
            1000,
            &powers(&[1.0]),
            AcpConfig::PAPER,
        );
        // F = 50, N = 2000/51 ≈ 39.2, D = 49/38.2 ≈ 1.28.
        // C = 10·(50 - 1.28·(0 + 4.5)) ≈ 10·44.2 ≈ 442.
        match s.request(0, 1) {
            Grant::Chunk(c) => assert!((400..=480).contains(&c.len), "got {}", c.len),
            g => panic!("expected chunk, got {g:?}"),
        }
    }

    #[test]
    fn dtss_chunks_decrease_over_time() {
        let mut s = DistributedScheduler::dedicated(
            DistKind::Dtss,
            100_000,
            &powers(&[1.0, 1.0, 1.0, 1.0]),
            AcpConfig::PAPER,
        );
        let (_, chunks) = drain_rr(&mut s, &[1; 4]);
        let sizes: Vec<u64> = chunks.iter().map(|c| c.len).collect();
        // Monotone non-increasing except the final clamped chunk.
        for w in sizes[..sizes.len() - 1].windows(2) {
            assert!(w[0] >= w[1], "sizes increased: {sizes:?}");
        }
    }

    #[test]
    fn overloaded_worker_gets_less_dfss() {
        // Equal powers but worker 1 has Q = 2 → half the ACP.
        let mut s = DistributedScheduler::new(
            DistKind::Dfss,
            50_000,
            &powers(&[1.0, 1.0]),
            &[1, 2],
            AcpConfig::PAPER,
        );
        let (totals, _) = drain_rr(&mut s, &[1, 2]);
        assert!(
            totals[0] > totals[1] * 3 / 2,
            "loaded worker should receive much less: {totals:?}"
        );
    }

    #[test]
    fn unavailable_worker_is_skipped_not_finished() {
        // Worker 1's queue of 100 pushes its ACP to 0 under scale 10.
        let cfg = AcpConfig::PAPER;
        let mut s =
            DistributedScheduler::new(DistKind::Dfss, 100, &powers(&[1.0, 1.0]), &[1, 100], cfg);
        assert_eq!(s.request(1, 100), Grant::Unavailable);
        assert!(matches!(s.request(0, 1), Grant::Chunk(_)));
    }

    #[test]
    #[should_panic(expected = "starvation")]
    fn original_dtss_rule_starves() {
        // §5.2(I): V = (1, 3), Q = (2, 4) → integer ACPs are both 0.
        DistributedScheduler::new(
            DistKind::Dtss,
            1000,
            &powers(&[1.0, 3.0]),
            &[2, 4],
            AcpConfig::ORIGINAL_DTSS,
        );
    }

    #[test]
    fn scaled_rule_survives_the_starvation_case() {
        let s = DistributedScheduler::new(
            DistKind::Dtss,
            1000,
            &powers(&[1.0, 3.0]),
            &[2, 4],
            AcpConfig::PAPER,
        );
        // A_1 = 5, A_2 = 7 → A = 12, exactly the paper's numbers.
        assert_eq!(s.planned_total_acp(), 12);
    }

    #[test]
    fn replan_triggers_when_majority_changes() {
        let mut s = DistributedScheduler::dedicated(
            DistKind::Dtss,
            100_000,
            &powers(&[1.0, 1.0, 1.0, 1.0]),
            AcpConfig::PAPER,
        );
        assert_eq!(s.plans_made(), 1);
        // Three of four workers report doubled queues → 3 > 0.5·4.
        let _ = s.request(0, 2);
        let _ = s.request(1, 2);
        let _ = s.request(2, 2);
        assert!(s.plans_made() >= 2, "expected a re-plan");
    }

    #[test]
    fn replan_disabled_by_threshold() {
        let mut s = DistributedScheduler::dedicated(
            DistKind::Dtss,
            100_000,
            &powers(&[1.0, 1.0]),
            AcpConfig::PAPER,
        );
        s.set_replan_threshold(1.0);
        let _ = s.request(0, 4);
        let _ = s.request(1, 4);
        assert_eq!(s.plans_made(), 1);
    }

    #[test]
    fn initial_order_sorts_by_power() {
        let s = DistributedScheduler::dedicated(
            DistKind::Dtss,
            1000,
            &powers(&[1.0, 3.0, 2.0]),
            AcpConfig::PAPER,
        );
        assert_eq!(s.initial_request_order(), vec![1, 2, 0]);
    }

    #[test]
    fn dfss_homogeneous_first_stage_is_half() {
        // Homogeneous dedicated DFSS must look like FSS: first stage
        // hands out ~half the iterations across the workers.
        let mut s = DistributedScheduler::dedicated(
            DistKind::Dfss,
            1000,
            &powers(&[1.0, 1.0, 1.0, 1.0]),
            AcpConfig::PAPER,
        );
        let mut first_stage = 0u64;
        for w in 0..4 {
            if let Grant::Chunk(c) = s.request(w, 1) {
                first_stage += c.len;
            }
        }
        assert!((400..=600).contains(&first_stage), "first stage {first_stage}");
    }

    #[test]
    fn finished_is_sticky() {
        let mut s = DistributedScheduler::dedicated(
            DistKind::Dfss,
            10,
            &powers(&[1.0]),
            AcpConfig::PAPER,
        );
        while !matches!(s.request(0, 1), Grant::Finished) {}
        assert_eq!(s.request(0, 1), Grant::Finished);
        assert!(s.is_finished());
    }
}
