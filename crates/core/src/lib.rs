//! # lss-core — loop self-scheduling schemes for heterogeneous clusters
//!
//! This crate implements the scheduling algorithms from
//! *"A Class of Loop Self-Scheduling for Heterogeneous Clusters"*
//! (Chronopoulos, Andonie, Benche, Grosu — IEEE CLUSTER 2001), together
//! with every scheme the paper builds on or compares against:
//!
//! - **Simple self-scheduling schemes** (designed for homogeneous
//!   machines, §2 of the paper): static ([`scheme::StaticSched`]), pure
//!   self-scheduling ([`scheme::PureSelfSched`]), chunk
//!   ([`scheme::ChunkSelfSched`]), guided ([`scheme::GuidedSelfSched`]),
//!   trapezoid ([`scheme::TrapezoidSelfSched`]), factoring
//!   ([`scheme::FactoringSelfSched`]), fixed-increase
//!   ([`scheme::FixedIncreaseSelfSched`]), and the paper's new
//!   **trapezoid-factoring** scheme ([`scheme::TrapezoidFactoringSelfSched`]).
//! - **Weighted factoring** ([`scheme::WeightedFactoring`]) — a
//!   heterogeneity-aware but *non-adaptive* baseline (§6 explicitly
//!   classifies it as "not distributed").
//! - **Distributed schemes** (§3 & §6): DTSS, DFSS, DFISS, DTFSS via
//!   [`distributed::DistributedScheduler`], using the *available
//!   computing power* (ACP) model of [`power`], including the paper's
//!   §5.2 improvements (fractional ACP scaled by 10, fractional virtual
//!   powers, availability threshold).
//! - **Tree scheduling** ([`tree`]) — the decentralized baseline of
//!   Kim & Purtilo used in the paper's evaluation.
//!
//! The [`master::Master`] state machine ties a scheme to the
//! master–slave request/reply protocol in a transport-independent way;
//! it is driven both by the discrete-event simulator (`lss-sim`) and by
//! the real threaded runtime (`lss-runtime`).
//!
//! ## Quick example
//!
//! ```
//! use lss_core::scheme::{ChunkSizer, TrapezoidFactoringSelfSched};
//! use lss_core::chunk::ChunkDispenser;
//!
//! // The paper's running example: I = 1000 iterations, p = 4 PEs.
//! let tfss = TrapezoidFactoringSelfSched::new(1000, 4);
//! let sizes: Vec<u64> = ChunkDispenser::new(1000, tfss).map(|c| c.len).collect();
//! // First stage: four chunks of 113 (Table 1 of the paper).
//! assert_eq!(&sizes[..4], &[113, 113, 113, 113]);
//! assert_eq!(sizes.iter().sum::<u64>(), 1000);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
pub mod chunk;
pub mod distributed;
pub mod fault;
pub mod master;
pub mod power;
pub mod scheme;
pub mod share;
pub mod tree;

pub use chunk::{Chunk, ChunkDispenser};
pub use fault::{ChaosRng, FaultPlan, LeaseConfig, LeaseTable, NetFaults};
pub use master::{Assignment, CompletionOutcome, Master, MasterConfig, SchemeKind};
pub use power::{Acp, AcpConfig, VirtualPower, WorkerPower};
