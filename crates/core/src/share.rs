//! Fair-share partitioning of available computing power across jobs.
//!
//! The serving layer multiplexes many concurrent loop jobs over one
//! heterogeneous worker pool. Each worker still has a single available
//! computing power `A_i = ⌊scale · V_i / Q_i⌋` (§5.2); what is new is
//! that `A_i` must be *split* between the active jobs in proportion to
//! their priority weights, so a priority-4 job receives four times the
//! computing power of a priority-1 job on every worker.
//!
//! Two pieces live here, both pure and replayable:
//!
//! - [`partition_acp`] — integer apportionment of one `A_i` across job
//!   weights by the largest-remainder method (exact quota rounding, so
//!   the shares always sum to `A_i` and never drift by more than one
//!   unit from the real-valued proportional split);
//! - [`ReplanTrigger`] — the DTSS re-plan rule lifted to the service:
//!   re-partition only when more than a threshold fraction (default
//!   one half, the paper's §5.2 trigger) of the per-worker `A_i` have
//!   changed since the last partition, so a single load blip does not
//!   thrash every job's share.

/// Splits an integer capacity `acp` across `weights` proportionally,
/// using the largest-remainder (Hamilton) method.
///
/// Returns one share per weight, summing exactly to `acp`. Zero
/// weights receive zero. Ties in the remainders are broken by position
/// (earlier entries win), which keeps the result deterministic.
///
/// An empty weight list, an all-zero weight list, or `acp == 0` yields
/// all-zero shares.
pub fn partition_acp(acp: u32, weights: &[u64]) -> Vec<u32> {
    let total_w: u64 = weights.iter().sum();
    if total_w == 0 || acp == 0 {
        return vec![0; weights.len()];
    }
    // Integer quotas plus remainders scaled by total_w (avoids floats:
    // quota_j = acp * w_j / total_w, remainder_j = acp * w_j mod total_w).
    let mut shares: Vec<u32> = Vec::with_capacity(weights.len());
    let mut remainders: Vec<(u64, usize)> = Vec::with_capacity(weights.len());
    let mut assigned: u32 = 0;
    for (j, &w) in weights.iter().enumerate() {
        let num = u64::from(acp) * w;
        let q = (num / total_w) as u32;
        shares.push(q);
        assigned += q;
        remainders.push((num % total_w, j));
    }
    // Hand the leftover units to the largest remainders.
    let mut leftover = acp - assigned;
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    for (rem, j) in remainders {
        if leftover == 0 {
            break;
        }
        if rem == 0 && weights[j] == 0 {
            continue; // never give capacity to a zero-weight job
        }
        shares[j] += 1;
        leftover -= 1;
    }
    shares
}

/// The DTSS re-plan rule applied to per-worker ACP observations.
///
/// The service records each worker's freshly derived `A_i` via
/// [`ReplanTrigger::observe`]; [`ReplanTrigger::should_replan`] fires
/// when more than `threshold` (a fraction, default `0.5`) of the
/// workers' values differ from those captured at the last
/// [`ReplanTrigger::commit`]. Forced re-partitions (job arrived or
/// finished) simply call `commit` with the current observations.
#[derive(Debug, Clone)]
pub struct ReplanTrigger {
    /// `A_i` captured at the last commit.
    committed: Vec<u32>,
    /// Latest observation per worker.
    current: Vec<u32>,
    /// Fraction of workers whose `A_i` must change to trigger.
    threshold: f64,
    /// Partitions committed so far.
    replans: u32,
}

impl ReplanTrigger {
    /// The paper's §5.2 trigger: more than half the values changed.
    pub const DEFAULT_THRESHOLD: f64 = 0.5;

    /// A trigger over `p` workers with the default threshold. All
    /// observations start at 0 (unknown).
    pub fn new(p: usize) -> Self {
        Self::with_threshold(p, Self::DEFAULT_THRESHOLD)
    }

    /// A trigger with an explicit change-fraction threshold. A
    /// threshold `>= 1.0` never fires on its own (forced commits only).
    pub fn with_threshold(p: usize, threshold: f64) -> Self {
        assert!(p >= 1, "need at least one worker");
        assert!(threshold >= 0.0 && threshold.is_finite(), "bad threshold {threshold}");
        ReplanTrigger {
            committed: vec![0; p],
            current: vec![0; p],
            threshold,
            replans: 0,
        }
    }

    /// Records `worker`'s freshly derived `A_i`.
    pub fn observe(&mut self, worker: usize, acp: u32) {
        self.current[worker] = acp;
    }

    /// The latest observation for `worker`.
    pub fn acp(&self, worker: usize) -> u32 {
        self.current[worker]
    }

    /// Number of workers whose observation differs from the committed
    /// snapshot.
    pub fn changed(&self) -> usize {
        self.committed
            .iter()
            .zip(&self.current)
            .filter(|(a, b)| a != b)
            .count()
    }

    /// Whether enough `A_i` changed to warrant a re-partition: strictly
    /// more than `threshold · p` workers differ from the snapshot.
    pub fn should_replan(&self) -> bool {
        (self.changed() as f64) > self.threshold * self.committed.len() as f64
    }

    /// Accepts the current observations as the new baseline and counts
    /// a re-partition.
    pub fn commit(&mut self) {
        self.committed.copy_from_slice(&self.current);
        self.replans += 1;
    }

    /// Partitions committed so far (the initial partition counts).
    pub fn replans(&self) -> u32 {
        self.replans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_sums_exactly_and_tracks_weights() {
        for acp in [1u32, 7, 10, 33, 100] {
            for weights in [vec![1u64], vec![1, 1], vec![1, 2, 4], vec![5, 3, 2, 7]] {
                let shares = partition_acp(acp, &weights);
                assert_eq!(shares.iter().sum::<u32>(), acp, "acp={acp} w={weights:?}");
                // Largest-remainder stays within one unit of the quota.
                let tw: u64 = weights.iter().sum();
                for (j, &s) in shares.iter().enumerate() {
                    let quota = u64::from(acp) as f64 * weights[j] as f64 / tw as f64;
                    assert!(
                        (f64::from(s) - quota).abs() <= 1.0,
                        "share {s} vs quota {quota} (acp={acp} w={weights:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn partition_degenerate_inputs() {
        assert_eq!(partition_acp(10, &[]), Vec::<u32>::new());
        assert_eq!(partition_acp(10, &[0, 0]), vec![0, 0]);
        assert_eq!(partition_acp(0, &[1, 2]), vec![0, 0]);
        // Zero-weight jobs get nothing even when units are left over.
        assert_eq!(partition_acp(3, &[1, 0, 1]), vec![2, 0, 1]);
    }

    #[test]
    fn partition_is_deterministic_on_ties() {
        // Equal weights, capacity not divisible: earlier jobs win the
        // remainder units, every time.
        assert_eq!(partition_acp(5, &[1, 1, 1]), vec![2, 2, 1]);
        assert_eq!(partition_acp(5, &[1, 1, 1]), vec![2, 2, 1]);
    }

    #[test]
    fn replan_fires_past_half() {
        let mut t = ReplanTrigger::new(4);
        for w in 0..4 {
            t.observe(w, 10);
        }
        t.commit();
        assert_eq!(t.replans(), 1);
        assert!(!t.should_replan());
        // Two of four changed: exactly half, not MORE than half.
        t.observe(0, 5);
        t.observe(1, 5);
        assert_eq!(t.changed(), 2);
        assert!(!t.should_replan());
        // Third change crosses the trigger.
        t.observe(2, 7);
        assert!(t.should_replan());
        t.commit();
        assert!(!t.should_replan());
        assert_eq!(t.acp(0), 5);
    }

    #[test]
    fn threshold_one_never_self_fires() {
        let mut t = ReplanTrigger::with_threshold(2, 1.0);
        t.observe(0, 3);
        t.observe(1, 9);
        assert!(!t.should_replan());
    }
}
