//! Fault model shared by the simulator and the real runtime.
//!
//! The paper's master–slave protocol assumes slaves never fail: DTSS
//! handles *slow* workers through the ACP model, but a crashed, hung or
//! partitioned worker strands its chunk forever. This module adds the
//! two pieces both execution engines share:
//!
//! - [`FaultPlan`] — a declarative chaos-injection plan for one worker
//!   (crash-after-N, hang, degradation, disconnect/reconnect, lossy
//!   messaging), driven by a seeded deterministic RNG ([`ChaosRng`]) so
//!   every chaos experiment is replayable;
//! - [`LeaseTable`] — chunk *leases*: every outstanding chunk carries a
//!   deadline derived from its size and the holder's observed pace
//!   (ACP-style estimate). Expired leases are requeued; near the end of
//!   the loop still-outstanding chunks may additionally be
//!   *speculatively* re-executed by idle workers, with first-result-wins
//!   dedup preserving exactly-once iteration accounting (the
//!   [`crate::master::Master`] owns the completion bitmap).
//!
//! Time is an abstract `u64` tick count (both engines use nanoseconds:
//! the runtime from a wall-clock epoch, the simulator from its virtual
//! clock), keeping `lss-core` free of any clock dependency.

use crate::chunk::Chunk;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

/// SplitMix64 — small, seedable, replayable chaos/jitter stream.
#[derive(Debug, Clone)]
pub struct ChaosRng {
    state: u64,
}

impl ChaosRng {
    /// A stream seeded with `seed` (same seed ⇒ same decisions).
    pub fn new(seed: u64) -> Self {
        ChaosRng { state: seed }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        (self.next_u64() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }

    /// Uniform draw from `[0, bound)`; 0 when `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// Message-level fault injection: what a flaky network does to the
/// request/reply stream of one worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetFaults {
    /// Probability that an outbound message is silently lost.
    pub drop_prob: f64,
    /// Probability that an outbound message is delivered twice.
    pub dup_prob: f64,
    /// Maximum extra delivery delay in ticks (uniform in `[0, delay)`).
    pub delay_ticks: u64,
}

impl NetFaults {
    /// A perfectly reliable network.
    pub const NONE: NetFaults = NetFaults { drop_prob: 0.0, dup_prob: 0.0, delay_ticks: 0 };

    /// Whether any knob is active.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0 || self.dup_prob > 0.0 || self.delay_ticks > 0
    }
}

impl Default for NetFaults {
    fn default() -> Self {
        NetFaults::NONE
    }
}

/// Performance degradation: from chunk `after_chunks` on, every
/// iteration takes `factor` times longer (a thermal throttle, a noisy
/// neighbour, a failing disk — anything that slows but does not kill).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Degradation {
    /// Chunks computed at full speed before the slowdown sets in.
    pub after_chunks: u64,
    /// Slowdown multiplier (≥ 1).
    pub factor: u32,
}

/// A planned mid-run disconnect: after `after_chunks` chunks the worker
/// drops its transport, stays dark for `outage_ticks`, then reconnects
/// (the runtime redials with backoff; the simulator re-registers).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisconnectPlan {
    /// Chunks completed before the link drops.
    pub after_chunks: u64,
    /// How long the worker stays dark before redialling.
    pub outage_ticks: u64,
}

/// Everything that can go wrong with one worker — the generalization of
/// the old `WorkerSpec::failing_after` crash knob.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Crash (vanish without reporting) after computing this many
    /// chunks. `Some(0)` crashes on receipt of the first chunk.
    pub crash_after_chunks: Option<u64>,
    /// Hang after being *granted* this many chunks: accept the chunk,
    /// never reply, never heartbeat — the stalled-worker pathology a
    /// clean TCP disconnect does not produce.
    pub hang_after_chunks: Option<u64>,
    /// Slow down ×factor after N chunks.
    pub degrade: Option<Degradation>,
    /// Drop the link mid-run and reconnect after an outage.
    pub disconnect: Option<DisconnectPlan>,
    /// Lossy-network behaviour for this worker's messages.
    pub net: NetFaults,
    /// Seed for all randomized decisions of this plan.
    pub seed: u64,
}

impl FaultPlan {
    /// A worker with no faults at all.
    pub fn healthy() -> Self {
        FaultPlan {
            crash_after_chunks: None,
            hang_after_chunks: None,
            degrade: None,
            disconnect: None,
            net: NetFaults::NONE,
            seed: 0,
        }
    }

    /// Crash after `n` computed chunks.
    pub fn crash_after(n: u64) -> Self {
        FaultPlan { crash_after_chunks: Some(n), ..Self::healthy() }
    }

    /// Hang (accept chunk, never reply) after `n` granted chunks.
    pub fn hang_after(n: u64) -> Self {
        FaultPlan { hang_after_chunks: Some(n), ..Self::healthy() }
    }

    /// Degrade ×`factor` after `n` chunks.
    pub fn degrade_after(n: u64, factor: u32) -> Self {
        assert!(factor >= 1, "degradation factor must be ≥ 1");
        FaultPlan {
            degrade: Some(Degradation { after_chunks: n, factor }),
            ..Self::healthy()
        }
    }

    /// Disconnect after `n` chunks, stay dark `outage_ticks`, redial.
    pub fn reconnect_after(n: u64, outage_ticks: u64) -> Self {
        FaultPlan {
            disconnect: Some(DisconnectPlan { after_chunks: n, outage_ticks }),
            ..Self::healthy()
        }
    }

    /// Adds lossy-network behaviour.
    pub fn with_net(mut self, net: NetFaults) -> Self {
        self.net = net;
        self
    }

    /// Sets the seed for randomized decisions.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether this plan injects anything at all.
    pub fn is_healthy(&self) -> bool {
        self.crash_after_chunks.is_none()
            && self.hang_after_chunks.is_none()
            && self.degrade.is_none()
            && self.disconnect.is_none()
            && !self.net.is_active()
    }

    /// The effective compute multiplier at chunk number `chunk_idx`
    /// (0-based): 1 before degradation kicks in, `factor` after.
    pub fn degrade_factor(&self, chunk_idx: u64) -> u32 {
        match self.degrade {
            Some(d) if chunk_idx >= d.after_chunks => d.factor.max(1),
            _ => 1,
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::healthy()
    }
}

/// Lease policy: how deadlines are derived and when a silent worker is
/// declared dead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeaseConfig {
    /// Fixed floor added to every lease (covers transport latency and
    /// the first chunk, before any pace estimate exists).
    pub base_ticks: u64,
    /// Pace assumed for a worker with no completed chunk yet, in ticks
    /// per iteration (0 = rely on `base_ticks` alone).
    pub default_ticks_per_iter: u64,
    /// Safety multiplier on the estimated compute time: a lease expires
    /// only when the worker is `grace` times slower than its own
    /// history predicts.
    pub grace: f64,
    /// After a lease expires, the worker is declared *dead* (and no
    /// longer waited for) if it stays completely silent — no request,
    /// result or heartbeat — for this many further ticks.
    pub dead_after_ticks: u64,
    /// Upper bound on concurrent speculative copies of one chunk.
    pub max_speculations: u32,
}

impl LeaseConfig {
    /// Generous defaults for real-time execution (ticks = nanoseconds):
    /// 5 s floor, 8× pace grace, dead 2 s after lease expiry.
    pub const RUNTIME_DEFAULT: LeaseConfig = LeaseConfig {
        base_ticks: 5_000_000_000,
        default_ticks_per_iter: 0,
        grace: 8.0,
        dead_after_ticks: 2_000_000_000,
        max_speculations: 2,
    };
}

impl Default for LeaseConfig {
    fn default() -> Self {
        Self::RUNTIME_DEFAULT
    }
}

/// One outstanding chunk grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// The worker holding the grant.
    pub worker: usize,
    /// The granted chunk.
    pub chunk: Chunk,
    /// When the grant was made.
    pub granted_at: u64,
    /// When it expires.
    pub deadline: u64,
    /// Whether this grant is a speculative re-execution of a chunk
    /// already outstanding elsewhere.
    pub speculative: bool,
}

/// What [`LeaseTable::expire`] found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExpiredLease {
    /// The lapsed lease.
    pub lease: Lease,
    /// Whether the holder is now declared dead (silent past the grace
    /// window) rather than merely suspect.
    pub holder_dead: bool,
}

/// Per-worker lease bookkeeping plus an ACP-style pace estimator.
///
/// The table never decides *scheduling* — it only answers "which grants
/// have outlived their deadline" and "what would a sensible deadline
/// be"; the [`crate::master::Master`] folds the answers into its
/// requeue pool and completion bitmap.
#[derive(Debug, Clone)]
pub struct LeaseTable {
    cfg: LeaseConfig,
    /// Outstanding grant per worker (a worker holds at most one chunk).
    leases: Vec<Option<Lease>>,
    /// EWMA of observed ticks per iteration, per worker.
    pace: Vec<Option<f64>>,
    /// Last tick each worker was heard from (request/result/heartbeat).
    last_heard: Vec<u64>,
    /// Workers declared dead (lease expired + silence past grace).
    dead: Vec<bool>,
    /// Speculative copies in flight per chunk start (sparse, tiny).
    spec_counts: Vec<(u64, u32)>,
    /// Min-heap of `(deadline, worker)` for every deadline ever
    /// assigned; entries are *lazy* (superseded by re-grants and
    /// heartbeats) and pruned whenever the top goes stale, so
    /// [`LeaseTable::next_deadline`] is a peek and
    /// [`LeaseTable::expire`] pops only what actually lapsed — with
    /// 10k workers the old full-table scans dominated chaos runs.
    deadlines: BinaryHeap<Reverse<(u64, usize)>>,
    /// Exact ordered index of *non-speculative* outstanding leases,
    /// keyed `(deadline, worker)`. Unlike `deadlines` this set is kept
    /// precisely in step with every grant/complete/revoke/expire/
    /// heartbeat, so [`LeaseTable::speculation_candidate`] walks it in
    /// deadline order and stops at the first eligible lease instead of
    /// scanning all `p` workers on every idle request in the drain
    /// phase. `(deadline, worker)` ordering reproduces the old scan's
    /// tie-break bit-exactly: earliest deadline first, lowest worker
    /// index among equals.
    spec_queue: BTreeSet<(u64, usize)>,
    /// Count of outstanding leases (kept in step with `leases`).
    outstanding: usize,
}

impl LeaseTable {
    /// A table for `p` workers.
    pub fn new(p: usize, cfg: LeaseConfig) -> Self {
        LeaseTable {
            cfg,
            leases: vec![None; p],
            pace: vec![None; p],
            last_heard: vec![0; p],
            dead: vec![false; p],
            spec_counts: Vec::new(),
            deadlines: BinaryHeap::new(),
            spec_queue: BTreeSet::new(),
            outstanding: 0,
        }
    }

    /// Removes a lease's entry from the speculation queue (no-op for
    /// speculative grants, which are never candidates themselves).
    fn queue_remove(&mut self, lease: &Lease) {
        if !lease.speculative {
            self.spec_queue.remove(&(lease.deadline, lease.worker));
        }
    }

    /// Drops stale heap tops (deadlines superseded by a re-grant,
    /// heartbeat or release) so the top entry, if any, is live.
    fn prune_deadlines(&mut self) {
        while let Some(&Reverse((d, w))) = self.deadlines.peek() {
            match self.leases[w] {
                Some(l) if l.deadline == d => break,
                _ => {
                    self.deadlines.pop();
                }
            }
        }
    }

    /// The active policy.
    pub fn config(&self) -> &LeaseConfig {
        &self.cfg
    }

    /// Replaces the policy (tests and the simulator tighten deadlines).
    pub fn set_config(&mut self, cfg: LeaseConfig) {
        self.cfg = cfg;
    }

    /// Deadline for granting `chunk` to `worker` at `now`, given the
    /// worker's reported run-queue length `q` (a loaded machine is
    /// proportionally slower, so its lease is proportionally longer).
    fn deadline_for(&self, worker: usize, chunk: Chunk, now: u64, q: u32) -> u64 {
        let per_iter = self.pace[worker]
            .unwrap_or(self.cfg.default_ticks_per_iter as f64)
            .max(0.0);
        let est = per_iter * chunk.len as f64 * q.max(1) as f64 * self.cfg.grace;
        now.saturating_add(self.cfg.base_ticks)
            .saturating_add(est as u64)
    }

    /// Records a grant. Returns the chunk of a *different* previously
    /// outstanding lease of this worker, if any — the caller must
    /// requeue it (it can only exist when a reply was lost in flight).
    pub fn grant(
        &mut self,
        worker: usize,
        chunk: Chunk,
        now: u64,
        q: u32,
        speculative: bool,
    ) -> Option<Chunk> {
        self.heard_from(worker, now);
        let deadline = self.deadline_for(worker, chunk, now, q);
        let old = self.leases[worker].replace(Lease {
            worker,
            chunk,
            granted_at: now,
            deadline,
            speculative,
        });
        if let Some(prev) = old {
            self.queue_remove(&prev);
        } else {
            self.outstanding += 1;
        }
        if !speculative {
            self.spec_queue.insert((deadline, worker));
        }
        self.deadlines.push(Reverse((deadline, worker)));
        self.prune_deadlines();
        if speculative {
            self.bump_spec(chunk.start);
        }
        match old {
            Some(l) if l.chunk != chunk => Some(l.chunk),
            _ => None,
        }
    }

    /// The chunk `worker` currently holds, if any.
    pub fn held_by(&self, worker: usize) -> Option<Chunk> {
        self.leases[worker].map(|l| l.chunk)
    }

    /// The full outstanding lease of `worker`, if any — grant time and
    /// deadline included, so callers can score per-chunk latency.
    pub fn lease_of(&self, worker: usize) -> Option<&Lease> {
        self.leases.get(worker).and_then(|l| l.as_ref())
    }

    /// Clears `worker`'s lease (chunk completed or worker gone) and
    /// updates the pace estimate when a completion time is available.
    pub fn complete(&mut self, worker: usize, chunk: Chunk, now: u64) {
        self.heard_from(worker, now);
        if let Some(l) = self.leases[worker] {
            if l.chunk == chunk {
                self.leases[worker] = None;
                self.outstanding -= 1;
                self.queue_remove(&l);
                self.prune_deadlines();
                if l.speculative {
                    self.drop_spec(chunk.start);
                }
                if chunk.len > 0 && now > l.granted_at {
                    let obs = (now - l.granted_at) as f64 / chunk.len as f64;
                    let blended = match self.pace[worker] {
                        Some(old) => 0.5 * old + 0.5 * obs,
                        None => obs,
                    };
                    self.pace[worker] = Some(blended);
                }
            }
        }
    }

    /// Drops `worker`'s lease without a completion (disconnect path);
    /// returns the chunk it held.
    pub fn revoke(&mut self, worker: usize) -> Option<Chunk> {
        let l = self.leases[worker].take()?;
        self.outstanding -= 1;
        self.queue_remove(&l);
        self.prune_deadlines();
        if l.speculative {
            self.drop_spec(l.chunk.start);
        }
        Some(l.chunk)
    }

    /// Notes a sign of life (request, piggy-backed result, heartbeat).
    /// A heartbeat also pushes the worker's lease deadline out to at
    /// least `now + base_ticks` — progress reports buy time.
    pub fn heard_from(&mut self, worker: usize, now: u64) {
        self.last_heard[worker] = self.last_heard[worker].max(now);
        self.dead[worker] = false;
    }

    /// Extends `worker`'s lease on a heartbeat.
    pub fn heartbeat(&mut self, worker: usize, now: u64) {
        self.heard_from(worker, now);
        if let Some(l) = &mut self.leases[worker] {
            let extended = l.deadline.max(now.saturating_add(self.cfg.base_ticks));
            if extended != l.deadline {
                if !l.speculative {
                    self.spec_queue.remove(&(l.deadline, worker));
                    self.spec_queue.insert((extended, worker));
                }
                l.deadline = extended;
                self.deadlines.push(Reverse((extended, worker)));
            }
        }
        self.prune_deadlines();
    }

    /// Expires overdue leases at `now`, removing them from the table.
    /// The caller requeues each returned chunk. A holder silent for
    /// `dead_after_ticks` past its deadline is also flagged dead.
    pub fn expire(&mut self, now: u64) -> Vec<ExpiredLease> {
        // Pop every heap entry at or past `now`; an entry is live only
        // if the worker still holds a lease with that exact deadline
        // (re-grants and heartbeats leave superseded entries behind).
        let mut lapsed: Vec<Lease> = Vec::new();
        while let Some(&Reverse((d, w))) = self.deadlines.peek() {
            if d > now {
                break;
            }
            self.deadlines.pop();
            match self.leases[w] {
                Some(l) if l.deadline == d => {
                    self.leases[w] = None;
                    self.outstanding -= 1;
                    self.queue_remove(&l);
                    lapsed.push(l);
                }
                _ => {}
            }
        }
        self.prune_deadlines();
        // Worker-index order, exactly as the old full-table scan
        // returned them — requeue order is part of determinism.
        lapsed.sort_by_key(|l| l.worker);
        let mut out = Vec::new();
        for l in lapsed {
            let w = l.worker;
            if l.speculative {
                self.drop_spec(l.chunk.start);
            }
            let silent_for = now.saturating_sub(self.last_heard[w].max(l.granted_at));
            let holder_dead = silent_for >= self.cfg.dead_after_ticks;
            if holder_dead {
                self.dead[w] = true;
            }
            out.push(ExpiredLease { lease: l, holder_dead });
        }
        out
    }

    /// Declares a worker dead outright (observed disconnect).
    pub fn mark_dead(&mut self, worker: usize) {
        self.dead[worker] = true;
    }

    /// Whether `worker` has been declared dead.
    pub fn is_dead(&self, worker: usize) -> bool {
        self.dead[worker]
    }

    /// The earliest deadline among outstanding leases, if any — the
    /// master's next wake-up time.
    pub fn next_deadline(&self) -> Option<u64> {
        // Every mutation prunes the heap, so the top entry (if any) is
        // always a live lease's current deadline.
        self.deadlines.peek().map(|&Reverse((d, _))| d)
    }

    /// Whether any lease is outstanding.
    pub fn any_outstanding(&self) -> bool {
        self.outstanding > 0
    }

    /// Picks a chunk for speculative re-execution by `idle_worker`: the
    /// outstanding lease with the earliest deadline that is held by a
    /// *different* worker, has consumed more than half of its lease
    /// window (an *age gate* — a chunk granted a moment ago is not yet
    /// suspect, so fail-free runs never speculate), and has fewer than
    /// `max_speculations` copies in flight. Near the end of the loop
    /// this is what keeps one straggler from gating completion.
    ///
    /// Walks `spec_queue` in `(deadline, worker)` order and returns on
    /// the first eligible lease, replacing the old full scan over all
    /// `p` workers per idle request — the last O(p)-per-call hot spot
    /// in the drain phase. The ordering makes the answer identical to
    /// the scan's `min_by_key(deadline)` with its first-match (lowest
    /// worker index) tie-break.
    pub fn speculation_candidate(&self, idle_worker: usize, now: u64) -> Option<Chunk> {
        for &(_, w) in &self.spec_queue {
            let Some(l) = self.leases[w] else { continue };
            if l.worker == idle_worker {
                continue;
            }
            if now < l.granted_at + (l.deadline.saturating_sub(l.granted_at)) / 2 {
                continue;
            }
            if self.spec_count(l.chunk.start) >= self.cfg.max_speculations {
                continue;
            }
            return Some(l.chunk);
        }
        None
    }

    fn spec_count(&self, start: u64) -> u32 {
        self.spec_counts
            .iter()
            .find(|(s, _)| *s == start)
            .map_or(0, |(_, c)| *c)
    }

    fn bump_spec(&mut self, start: u64) {
        match self.spec_counts.iter_mut().find(|(s, _)| *s == start) {
            Some((_, c)) => *c += 1,
            None => self.spec_counts.push((start, 1)),
        }
    }

    fn drop_spec(&mut self, start: u64) {
        if let Some(i) = self.spec_counts.iter().position(|(s, _)| *s == start) {
            self.spec_counts[i].1 = self.spec_counts[i].1.saturating_sub(1);
            if self.spec_counts[i].1 == 0 {
                self.spec_counts.swap_remove(i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TIGHT: LeaseConfig = LeaseConfig {
        base_ticks: 100,
        default_ticks_per_iter: 0,
        grace: 2.0,
        dead_after_ticks: 50,
        max_speculations: 1,
    };

    #[test]
    fn chaos_rng_is_deterministic_and_fair() {
        let mut a = ChaosRng::new(9);
        let mut b = ChaosRng::new(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut rng = ChaosRng::new(1);
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "{hits}");
        assert!(!ChaosRng::new(2).chance(0.0));
        assert!(ChaosRng::new(2).chance(1.0));
    }

    #[test]
    fn lease_expires_and_flags_dead() {
        let mut t = LeaseTable::new(2, TIGHT);
        let c = Chunk::new(0, 10);
        assert_eq!(t.grant(0, c, 0, 1, false), None);
        assert!(t.expire(99).is_empty());
        let exp = t.expire(200);
        assert_eq!(exp.len(), 1);
        assert_eq!(exp[0].lease.chunk, c);
        assert!(exp[0].holder_dead, "silent for 200 > 50 past deadline");
        assert!(t.is_dead(0));
        assert!(!t.any_outstanding());
    }

    #[test]
    fn heartbeat_extends_lease_and_defers_death() {
        let mut t = LeaseTable::new(1, TIGHT);
        t.grant(0, Chunk::new(0, 4), 0, 1, false);
        t.heartbeat(0, 90); // deadline pushed to ≥ 190
        assert!(t.expire(150).is_empty(), "heartbeat bought time past 100");
        let exp = t.expire(195);
        assert_eq!(exp.len(), 1);
        // Last heard at 90, silent for 105 ≥ 50 past grace: dead.
        assert!(exp[0].holder_dead);
    }

    #[test]
    fn completion_trains_pace_and_scales_deadlines() {
        let mut t = LeaseTable::new(1, TIGHT);
        t.grant(0, Chunk::new(0, 10), 0, 1, false);
        t.complete(0, Chunk::new(0, 10), 1000); // 100 ticks/iter
        t.grant(0, Chunk::new(10, 10), 1000, 1, false);
        // deadline = 1000 + base 100 + 100·10·2.0 = 3100.
        assert!(t.expire(3000).is_empty());
        assert_eq!(t.expire(3200).len(), 1);
    }

    #[test]
    fn loaded_workers_get_longer_leases() {
        let mut t = LeaseTable::new(2, TIGHT);
        t.grant(0, Chunk::new(0, 10), 0, 1, false);
        t.complete(0, Chunk::new(0, 10), 1000);
        t.grant(0, Chunk::new(10, 10), 1000, 3, false); // q = 3 → 3× window
        assert!(t.expire(5000).is_empty());
        assert_eq!(t.expire(8000).len(), 1);
    }

    #[test]
    fn regrant_of_a_different_chunk_returns_the_old_one() {
        let mut t = LeaseTable::new(1, TIGHT);
        let a = Chunk::new(0, 5);
        let b = Chunk::new(5, 5);
        assert_eq!(t.grant(0, a, 0, 1, false), None);
        // Same chunk again (lost-reply retransmit): nothing to requeue.
        assert_eq!(t.grant(0, a, 10, 1, false), None);
        // Different chunk: the old grant must be surfaced for requeue.
        assert_eq!(t.grant(0, b, 20, 1, false), Some(a));
    }

    #[test]
    fn speculation_candidate_respects_cap_ownership_and_age() {
        let mut t = LeaseTable::new(3, TIGHT);
        let c = Chunk::new(0, 8);
        t.grant(0, c, 0, 1, false); // deadline 100, midpoint 50
        // The holder itself is never offered its own chunk.
        assert_eq!(t.speculation_candidate(0, 60), None);
        // Too young: the holder has not burned half its lease yet.
        assert_eq!(t.speculation_candidate(1, 10), None);
        assert_eq!(t.speculation_candidate(1, 60), Some(c));
        t.grant(1, c, 5, 1, true);
        // Cap is 1 concurrent speculation: no further copies.
        assert_eq!(t.speculation_candidate(2, 60), None);
        // The speculative copy completing frees the slot again.
        t.complete(1, c, 50);
        assert_eq!(t.speculation_candidate(2, 60), Some(c));
    }

    /// The old O(p) implementation, kept as the reference oracle for
    /// the incremental `spec_queue` walk.
    fn reference_candidate(t: &LeaseTable, idle_worker: usize, now: u64) -> Option<Chunk> {
        t.leases
            .iter()
            .flatten()
            .filter(|l| l.worker != idle_worker && !l.speculative)
            .filter(|l| now >= l.granted_at + (l.deadline.saturating_sub(l.granted_at)) / 2)
            .filter(|l| t.spec_count(l.chunk.start) < t.cfg.max_speculations)
            .min_by_key(|l| l.deadline)
            .map(|l| l.chunk)
    }

    #[test]
    fn speculation_queue_matches_the_reference_scan() {
        let p = 8;
        let mut t = LeaseTable::new(p, TIGHT);
        let mut rng = ChaosRng::new(0x5bec_0001);
        let mut now = 0u64;
        for step in 0..4_000u64 {
            now += 1 + rng.below(40);
            let w = rng.below(p as u64) as usize;
            match rng.below(6) {
                0 | 1 => {
                    let start = rng.below(16) * 8;
                    let spec = rng.chance(0.3);
                    t.grant(w, Chunk::new(start, 8), now, 1 + rng.below(3) as u32, spec);
                }
                2 => {
                    if let Some(c) = t.held_by(w) {
                        t.complete(w, c, now);
                    }
                }
                3 => {
                    t.revoke(w);
                }
                4 => {
                    t.heartbeat(w, now);
                }
                _ => {
                    t.expire(now);
                }
            }
            let idle = rng.below(p as u64) as usize;
            let probe = now + rng.below(200);
            assert_eq!(
                t.speculation_candidate(idle, probe),
                reference_candidate(&t, idle, probe),
                "divergence at step {step} (now {now})"
            );
        }
    }

    #[test]
    fn fault_plan_builders() {
        assert!(FaultPlan::healthy().is_healthy());
        assert!(!FaultPlan::crash_after(2).is_healthy());
        assert!(!FaultPlan::healthy()
            .with_net(NetFaults { drop_prob: 0.1, ..NetFaults::NONE })
            .is_healthy());
        let d = FaultPlan::degrade_after(3, 4);
        assert_eq!(d.degrade_factor(2), 1);
        assert_eq!(d.degrade_factor(3), 4);
    }
}
