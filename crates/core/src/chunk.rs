//! Chunks of consecutive loop iterations and bookkeeping around them.
//!
//! A *chunk* is what the master hands a slave in one scheduling step: a
//! half-open interval `[start, start + len)` of iteration indices. The
//! paper's notation: `C_i` is the chunk size at the `i`-th scheduling
//! step, `R_i` the remaining iterations, with `R_0 = I` and
//! `R_i = R_{i-1} - C_i`.

use crate::scheme::ChunkSizer;

/// A contiguous block of loop iterations `[start, start + len)`.
///
/// Iteration indices are zero-based. Schemes never produce empty
/// chunks; `len >= 1` always holds for chunks handed out by
/// [`ChunkDispenser`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Chunk {
    /// First iteration index in the chunk.
    pub start: u64,
    /// Number of iterations in the chunk (always `>= 1`).
    pub len: u64,
}

impl Chunk {
    /// Creates a chunk covering `[start, start + len)`.
    pub fn new(start: u64, len: u64) -> Self {
        Chunk { start, len }
    }

    /// One-past-the-end iteration index.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }

    /// Whether iteration `i` falls inside this chunk.
    pub fn contains(&self, i: u64) -> bool {
        i >= self.start && i < self.end()
    }

    /// Iterator over the iteration indices covered by the chunk.
    pub fn iter(&self) -> impl Iterator<Item = u64> {
        self.start..self.end()
    }

    /// Splits off the first `n` iterations, leaving the rest in `self`.
    ///
    /// Returns `None` (and leaves `self` untouched) if `n` is zero or
    /// `n >= self.len` — a split must leave both halves non-empty.
    pub fn split_first(&mut self, n: u64) -> Option<Chunk> {
        if n == 0 || n >= self.len {
            return None;
        }
        let head = Chunk::new(self.start, n);
        self.start += n;
        self.len -= n;
        Some(head)
    }
}

/// Drives a [`ChunkSizer`] over a loop of `total` iterations, producing
/// the actual chunk sequence the master would hand out.
///
/// The dispenser owns the global bookkeeping (`next start index`,
/// `remaining`), clamps every size the sizer proposes into
/// `1..=remaining`, and stops exactly when the loop is exhausted. This
/// is the single place where the "never exceed `R_{i-1}`, never assign
/// an empty chunk" invariants are enforced, so individual schemes can
/// implement their formulas verbatim.
#[derive(Debug, Clone)]
pub struct ChunkDispenser<S> {
    base: u64,
    next_start: u64,
    remaining: u64,
    sizer: S,
}

impl<S: ChunkSizer> ChunkDispenser<S> {
    /// Creates a dispenser for a loop of `total` iterations.
    pub fn new(total: u64, sizer: S) -> Self {
        Self::with_base(0, total, sizer)
    }

    /// Creates a dispenser whose chunks cover `[base, base + total)`
    /// instead of `[0, total)` — the sub-range a master *shard* owns,
    /// or a replica replaying a dispenser from an arbitrary offset.
    /// The sizer still sees `remaining` counts relative to `total`, so
    /// the chunk-size sequence is identical to a base-0 dispenser over
    /// the same `total`; only the start indices are shifted.
    pub fn with_base(base: u64, total: u64, sizer: S) -> Self {
        ChunkDispenser {
            base,
            next_start: base,
            remaining: total,
            sizer,
        }
    }

    /// First iteration index this dispenser covers (0 unless built via
    /// [`ChunkDispenser::with_base`]).
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Iterations dispensed so far (`total - remaining`).
    pub fn iterations_dispensed(&self) -> u64 {
        self.next_start - self.base
    }

    /// Iterations not yet handed out.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Next chunk, or `None` when the loop is exhausted.
    pub fn next_chunk(&mut self) -> Option<Chunk> {
        if self.remaining == 0 {
            return None;
        }
        let proposed = self.sizer.next_chunk_size(self.remaining);
        let len = proposed.clamp(1, self.remaining);
        // Eq. 1's accounting invariant, the contract every scheme and
        // the certifier (`lss-verify`) rely on: a dispensed chunk is
        // never empty and never exceeds the remaining iterations.
        debug_assert!(
            (1..=self.remaining).contains(&len),
            "clamp broke 1 <= C_i <= R: proposed {proposed}, len {len}, remaining {}",
            self.remaining
        );
        let chunk = Chunk::new(self.next_start, len);
        self.next_start += len;
        self.remaining -= len;
        // Bookkeeping stays exact: start cursor + remaining always sum
        // to the loop total handed to `new`.
        debug_assert_eq!(chunk.end(), self.next_start, "cursor drifted from chunk end");
        Some(chunk)
    }

    /// Access to the underlying sizer (e.g. to inspect its parameters).
    pub fn sizer(&self) -> &S {
        &self.sizer
    }

    /// Collects the remaining chunk *sizes* into a vector.
    ///
    /// Convenience for tests and for regenerating Table 1 of the paper.
    pub fn into_sizes(self) -> Vec<u64> {
        self.map(|c| c.len).collect()
    }
}

impl<S: ChunkSizer> Iterator for ChunkDispenser<S> {
    type Item = Chunk;

    fn next(&mut self) -> Option<Chunk> {
        self.next_chunk()
    }
}

/// Checks that a chunk sequence tiles `[0, total)` exactly: contiguous,
/// non-overlapping, non-empty, summing to `total`.
///
/// Returns `Err` with a human-readable reason on the first violation.
/// Used by integration tests and by the simulator's self-checks.
pub fn validate_tiling(chunks: &[Chunk], total: u64) -> Result<(), String> {
    let mut cursor = 0u64;
    for (i, c) in chunks.iter().enumerate() {
        if c.len == 0 {
            return Err(format!("chunk #{i} is empty"));
        }
        if c.start != cursor {
            return Err(format!(
                "chunk #{i} starts at {} but previous ended at {cursor}",
                c.start
            ));
        }
        cursor = c.end();
    }
    if cursor != total {
        return Err(format!("chunks cover [0, {cursor}) but total is {total}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::{ChunkSelfSched, ChunkSizer};

    #[test]
    fn chunk_basics() {
        let c = Chunk::new(10, 5);
        assert_eq!(c.end(), 15);
        assert!(c.contains(10));
        assert!(c.contains(14));
        assert!(!c.contains(15));
        assert!(!c.contains(9));
        assert_eq!(c.iter().collect::<Vec<_>>(), vec![10, 11, 12, 13, 14]);
    }

    #[test]
    fn split_first_takes_head() {
        let mut c = Chunk::new(100, 10);
        let head = c.split_first(3).unwrap();
        assert_eq!(head, Chunk::new(100, 3));
        assert_eq!(c, Chunk::new(103, 7));
    }

    #[test]
    fn split_first_rejects_degenerate() {
        let mut c = Chunk::new(0, 4);
        assert!(c.split_first(0).is_none());
        assert!(c.split_first(4).is_none());
        assert!(c.split_first(9).is_none());
        assert_eq!(c, Chunk::new(0, 4));
    }

    #[test]
    fn dispenser_tiles_exactly() {
        let d = ChunkDispenser::new(103, ChunkSelfSched::new(10));
        let chunks: Vec<Chunk> = d.collect();
        validate_tiling(&chunks, 103).unwrap();
        assert_eq!(chunks.last().unwrap().len, 3); // tail clamped
    }

    #[test]
    fn with_base_shifts_starts_but_not_sizes() {
        let zero: Vec<Chunk> = ChunkDispenser::new(103, ChunkSelfSched::new(10)).collect();
        let mut d = ChunkDispenser::with_base(500, 103, ChunkSelfSched::new(10));
        assert_eq!(d.base(), 500);
        assert_eq!(d.iterations_dispensed(), 0);
        let shifted: Vec<Chunk> = d.by_ref().collect();
        assert_eq!(shifted.len(), zero.len());
        for (z, s) in zero.iter().zip(&shifted) {
            assert_eq!(s.len, z.len);
            assert_eq!(s.start, z.start + 500);
        }
        assert_eq!(shifted.first().unwrap().start, 500);
        assert_eq!(shifted.last().unwrap().end(), 603);
    }

    #[test]
    fn with_base_accounts_dispensed_iterations() {
        let mut d = ChunkDispenser::with_base(40, 20, ChunkSelfSched::new(8));
        assert_eq!(d.next_chunk(), Some(Chunk::new(40, 8)));
        assert_eq!(d.iterations_dispensed(), 8);
        assert_eq!(d.remaining(), 12);
        assert_eq!(d.base(), 40);
    }

    #[test]
    fn dispenser_empty_loop_yields_nothing() {
        let mut d = ChunkDispenser::new(0, ChunkSelfSched::new(10));
        assert!(d.next_chunk().is_none());
    }

    #[test]
    fn dispenser_clamps_oversized_proposals() {
        /// A sizer that always asks for more than remains.
        struct Greedy;
        impl ChunkSizer for Greedy {
            fn next_chunk_size(&mut self, remaining: u64) -> u64 {
                remaining * 2 + 7
            }
            fn name(&self) -> &'static str {
                "greedy"
            }
        }
        let mut d = ChunkDispenser::new(5, Greedy);
        assert_eq!(d.next_chunk(), Some(Chunk::new(0, 5)));
        assert_eq!(d.next_chunk(), None);
    }

    #[test]
    fn dispenser_clamps_zero_proposals() {
        /// A sizer that proposes zero (schemes must still make progress).
        struct Lazy;
        impl ChunkSizer for Lazy {
            fn next_chunk_size(&mut self, _remaining: u64) -> u64 {
                0
            }
            fn name(&self) -> &'static str {
                "lazy"
            }
        }
        let d = ChunkDispenser::new(3, Lazy);
        let sizes = d.into_sizes();
        assert_eq!(sizes, vec![1, 1, 1]);
    }

    #[test]
    fn validate_tiling_catches_gap() {
        let chunks = vec![Chunk::new(0, 3), Chunk::new(4, 2)];
        assert!(validate_tiling(&chunks, 6).is_err());
    }

    #[test]
    fn validate_tiling_catches_short_cover() {
        let chunks = vec![Chunk::new(0, 3)];
        assert!(validate_tiling(&chunks, 6).is_err());
    }

    #[test]
    fn validate_tiling_accepts_exact_cover() {
        let chunks = vec![Chunk::new(0, 3), Chunk::new(3, 3)];
        assert!(validate_tiling(&chunks, 6).is_ok());
    }
}
