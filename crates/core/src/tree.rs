//! Tree scheduling (`TreeS`, Kim & Purtilo 1996) — the decentralized
//! baseline of the paper's evaluation.
//!
//! Unlike the master–slave self-scheduling schemes, TreeS distributes
//! **all** iterations up front and balances by *migration*: an idle PE
//! asks a predefined partner for work and receives **half of the
//! partner's remaining iterations**. Because partners are predefined
//! (following a tree over the PEs), idle PEs do not contend for a
//! central master — §5 of the paper: *"The slaves do not contend for a
//! central processor when making requests because they have predefined
//! partners. But the data still has to be collected on a single central
//! processor"*, which the paper handles by periodic result pushes.
//!
//! The initial allocation is either *equal* (the simple variant used in
//! §5.1's experiments) or *weighted by virtual power* (the variant used
//! alongside the distributed schemes in §6.1).
//!
//! Partner order: each PE probes the peers whose index differs in one
//! bit (hypercube/binomial-tree order: `i ⊕ 1, i ⊕ 2, i ⊕ 4, …`), then
//! falls back to a linear scan. This reproduces the cascading transfers
//! of the original tree while staying well-defined for any `p`.

use crate::chunk::Chunk;
use crate::power::VirtualPower;

/// Bookkeeping for tree scheduling: who currently owns which span of
/// the iteration space.
///
/// This structure is transport-independent: the simulator and the real
/// runtime decide *when* a PE takes or steals; `TreeScheduler` decides
/// *what* moves. All operations are O(p) or better.
/// # Example
///
/// ```
/// use lss_core::tree::TreeScheduler;
///
/// let mut tree = TreeScheduler::new_equal(100, 2);
/// // Worker 1 drains its block, then steals half of worker 0's rest.
/// while tree.take(1, 10).is_some() {}
/// let steal = tree.steal(1, 1).expect("partner has work");
/// assert_eq!(steal.victim, 0);
/// assert_eq!(tree.remaining(0), 25);
/// ```
#[derive(Debug, Clone)]
pub struct TreeScheduler {
    /// Remaining contiguous range per worker (`None` once empty).
    local: Vec<Option<Chunk>>,
    total_remaining: u64,
}

/// The result of a successful steal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Steal {
    /// The partner that gave up work.
    pub victim: usize,
    /// The migrated iteration range (now owned by the thief).
    pub moved: Chunk,
}

impl TreeScheduler {
    /// Equal initial allocation over `p` workers (§5.1: "the master
    /// assigns an even number of tasks to all slaves in the initial
    /// allocation stage").
    pub fn new_equal(total: u64, p: usize) -> Self {
        assert!(p >= 1, "need at least one worker");
        let weights = vec![1.0; p];
        Self::new_weighted_impl(total, &weights)
    }

    /// Initial allocation proportional to virtual power (§6.1: "the
    /// master assigns a number of tasks to the slaves according to
    /// their virtual power").
    pub fn new_weighted(total: u64, powers: &[VirtualPower]) -> Self {
        assert!(!powers.is_empty(), "need at least one worker");
        let weights: Vec<f64> = powers.iter().map(|v| v.get()).collect();
        Self::new_weighted_impl(total, &weights)
    }

    fn new_weighted_impl(total: u64, weights: &[f64]) -> Self {
        let w_total: f64 = weights.iter().sum();
        // Largest-remainder apportionment so the blocks tile exactly.
        let quotas: Vec<f64> = weights.iter().map(|w| total as f64 * w / w_total).collect();
        let mut sizes: Vec<u64> = quotas.iter().map(|q| q.floor() as u64).collect();
        let mut leftover = total - sizes.iter().sum::<u64>();
        let mut order: Vec<usize> = (0..weights.len()).collect();
        order.sort_by(|&a, &b| {
            let fa = quotas[a] - quotas[a].floor();
            let fb = quotas[b] - quotas[b].floor();
            fb.partial_cmp(&fa).unwrap().then(a.cmp(&b))
        });
        for &i in &order {
            if leftover == 0 {
                break;
            }
            sizes[i] += 1;
            leftover -= 1;
        }
        let mut start = 0u64;
        let local = sizes
            .iter()
            .map(|&len| {
                let c = (len > 0).then(|| Chunk::new(start, len));
                start += len;
                c
            })
            .collect();
        TreeScheduler {
            local,
            total_remaining: total,
        }
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.local.len()
    }

    /// Iterations remaining on `worker`'s local queue.
    pub fn remaining(&self, worker: usize) -> u64 {
        self.local[worker].map_or(0, |c| c.len)
    }

    /// Iterations remaining cluster-wide.
    pub fn total_remaining(&self) -> u64 {
        self.total_remaining
    }

    /// `worker` consumes up to `grain` iterations from the front of its
    /// local range (no communication involved). Returns `None` when the
    /// local range is empty — time to [`TreeScheduler::steal`].
    pub fn take(&mut self, worker: usize, grain: u64) -> Option<Chunk> {
        assert!(grain >= 1, "grain must be at least 1");
        let slot = &mut self.local[worker];
        let mut range = (*slot)?;
        let taken = if grain >= range.len {
            *slot = None;
            range
        } else {
            let head = range.split_first(grain).expect("grain < len");
            *slot = Some(range);
            head
        };
        self.total_remaining -= taken.len;
        Some(taken)
    }

    /// The *predefined partners* of `worker`: its binomial-tree
    /// neighbours (`i ⊕ 1, i ⊕ 2, i ⊕ 4, …` — ⌈log₂ p⌉ of them).
    ///
    /// Transfers happen **only** along these edges, as in Kim &
    /// Purtilo's scheme; an idle PE whose partners are all empty must
    /// wait until work cascades back through the tree. This restriction
    /// is what distinguishes TreeS from ideal global work stealing —
    /// and what produces the idle time the paper observes for it.
    pub fn partner_order(&self, worker: usize) -> Vec<usize> {
        let p = self.local.len();
        let mut order = Vec::new();
        let mut bit = 1usize;
        while bit < p.next_power_of_two() {
            let partner = worker ^ bit;
            if partner < p && partner != worker {
                order.push(partner);
            }
            bit <<= 1;
        }
        order
    }

    /// An idle `thief` asks its predefined partners (in tree order) for
    /// work; the first partner with more than `min_steal` remaining
    /// gives up the **back half** of its range. Returns `None` if no
    /// partner has work to spare — the thief must idle and retry (work
    /// may cascade to a partner later), or the computation is draining.
    pub fn steal(&mut self, thief: usize, min_steal: u64) -> Option<Steal> {
        debug_assert_eq!(self.remaining(thief), 0, "thief still has local work");
        for victim in self.partner_order(thief) {
            let Some(mut range) = self.local[victim] else {
                continue;
            };
            if range.len <= min_steal.max(1) {
                continue;
            }
            let keep = range.len / 2;
            let moved = Chunk::new(range.start + keep, range.len - keep);
            range.len = keep;
            self.local[victim] = (keep > 0).then_some(range);
            self.local[thief] = Some(moved);
            return Some(Steal { victim, moved });
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::validate_tiling;

    #[test]
    fn equal_allocation_tiles() {
        let t = TreeScheduler::new_equal(100, 4);
        let chunks: Vec<Chunk> = (0..4).filter_map(|w| t.local[w]).collect();
        validate_tiling(&chunks, 100).unwrap();
        assert!(chunks.iter().all(|c| c.len == 25));
    }

    #[test]
    fn weighted_allocation_is_proportional() {
        let powers: Vec<VirtualPower> =
            [3.0, 3.0, 3.0, 1.0, 1.0, 1.0, 1.0, 1.0].iter().map(|&v| VirtualPower::new(v)).collect();
        let t = TreeScheduler::new_weighted(1400, &powers);
        // Total weight 14 → fast get 300, slow get 100.
        assert_eq!(t.remaining(0), 300);
        assert_eq!(t.remaining(4), 100);
        let chunks: Vec<Chunk> = (0..8).filter_map(|w| t.local[w]).collect();
        validate_tiling(&chunks, 1400).unwrap();
    }

    #[test]
    fn weighted_allocation_handles_remainders() {
        let powers: Vec<VirtualPower> =
            [1.0, 2.0, 4.0].iter().map(|&v| VirtualPower::new(v)).collect();
        let t = TreeScheduler::new_weighted(100, &powers);
        let total: u64 = (0..3).map(|w| t.remaining(w)).sum();
        assert_eq!(total, 100);
        let chunks: Vec<Chunk> = (0..3).filter_map(|w| t.local[w]).collect();
        validate_tiling(&chunks, 100).unwrap();
    }

    #[test]
    fn take_consumes_front_in_grains() {
        let mut t = TreeScheduler::new_equal(20, 2);
        assert_eq!(t.take(0, 3), Some(Chunk::new(0, 3)));
        assert_eq!(t.take(0, 3), Some(Chunk::new(3, 3)));
        assert_eq!(t.remaining(0), 4);
        assert_eq!(t.take(0, 100), Some(Chunk::new(6, 4))); // clamped
        assert_eq!(t.take(0, 1), None);
    }

    #[test]
    fn steal_moves_back_half() {
        let mut t = TreeScheduler::new_equal(40, 2);
        // Drain worker 1, then steal from 0 (its only partner).
        while t.take(1, 5).is_some() {}
        let s = t.steal(1, 1).unwrap();
        assert_eq!(s.victim, 0);
        assert_eq!(s.moved, Chunk::new(10, 10));
        assert_eq!(t.remaining(0), 10);
        assert_eq!(t.remaining(1), 10);
    }

    #[test]
    fn steal_respects_min_steal() {
        let mut t = TreeScheduler::new_equal(8, 2);
        while t.take(1, 2).is_some() {}
        // Victim has 4 left; with min_steal = 4 it may not be robbed.
        assert!(t.steal(1, 4).is_none());
        assert!(t.steal(1, 1).is_some());
    }

    #[test]
    fn partner_order_is_tree_shaped() {
        let t = TreeScheduler::new_equal(80, 8);
        assert_eq!(t.partner_order(0), vec![1, 2, 4]);
        assert_eq!(t.partner_order(5), vec![4, 7, 1]);
        assert_eq!(t.partner_order(3), vec![2, 1, 7]);
    }

    #[test]
    fn partner_graph_is_connected() {
        // Transfers only follow tree edges, but the edge set must
        // connect all PEs or work could strand forever.
        for p in [2usize, 3, 5, 6, 8, 13] {
            let t = TreeScheduler::new_equal(100, p);
            let mut reached = vec![false; p];
            let mut stack = vec![0usize];
            reached[0] = true;
            while let Some(w) = stack.pop() {
                for n in t.partner_order(w) {
                    assert!(n < p);
                    assert_ne!(n, w);
                    if !reached[n] {
                        reached[n] = true;
                        stack.push(n);
                    }
                }
            }
            assert!(reached.iter().all(|&r| r), "p={p} graph disconnected");
        }
    }

    #[test]
    fn work_conserved_through_takes_and_steals() {
        let mut t = TreeScheduler::new_equal(1000, 4);
        let mut consumed = 0u64;
        // Worker 3 races ahead and keeps stealing.
        loop {
            match t.take(3, 7) {
                Some(c) => consumed += c.len,
                None => {
                    if t.steal(3, 1).is_none() {
                        break;
                    }
                }
            }
        }
        // Whatever worker 3 didn't get is still on the other queues.
        let left: u64 = (0..4).map(|w| t.remaining(w)).sum();
        assert_eq!(consumed + left, 1000);
        assert_eq!(t.total_remaining(), left);
    }

    #[test]
    fn everyone_draining_finishes_the_loop() {
        let mut t = TreeScheduler::new_equal(997, 5);
        let mut done = 0u64;
        let mut active = true;
        while active {
            active = false;
            for w in 0..5 {
                match t.take(w, 13) {
                    Some(c) => {
                        done += c.len;
                        active = true;
                    }
                    None => {
                        if t.steal(w, 1).is_some() {
                            active = true;
                        }
                    }
                }
            }
        }
        assert_eq!(done, 997);
        assert_eq!(t.total_remaining(), 0);
    }

    #[test]
    fn zero_iteration_loop() {
        let mut t = TreeScheduler::new_equal(0, 3);
        assert_eq!(t.take(0, 1), None);
        assert!(t.steal(0, 1).is_none());
        assert_eq!(t.total_remaining(), 0);
    }
}
