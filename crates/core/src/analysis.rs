//! Closed-form analysis of the scheduling schemes: predicted step
//! counts, chunk statistics and idealized makespan bounds.
//!
//! The schemes trade *scheduling steps* (master round-trips, each
//! costing communication) against *final-chunk size* (the imbalance the
//! critical chunk can cause — §2.2: imbalance "may be large … if the
//! last chunk is too small" is the overhead side, "too large" the
//! balance side). This module computes those quantities without
//! simulating, so experiments and tests can check the simulator against
//! theory and users can predict a scheme's behaviour for their loop.

use crate::chunk::ChunkDispenser;
use crate::master::{Assignment, Master, MasterConfig, SchemeKind};
use crate::power::VirtualPower;
use crate::scheme::{
    ChunkSelfSched, FactoringSelfSched, FixedIncreaseSelfSched, GuidedSelfSched, PureSelfSched,
    StaticSched, TrapezoidFactoringSelfSched, TrapezoidSelfSched,
};

/// Summary statistics of a scheme's chunk sequence for a given loop.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkStats {
    /// Number of scheduling steps `N` (chunks dispensed).
    pub steps: u64,
    /// First (largest initial) chunk size.
    pub first: u64,
    /// Final (critical) chunk size.
    pub last: u64,
    /// Largest chunk anywhere in the sequence.
    pub max: u64,
    /// Mean chunk size `I / N`.
    pub mean: f64,
}

/// Computes [`ChunkStats`] for a simple scheme over `total` iterations
/// on `p` PEs by dispensing its actual sequence.
pub fn chunk_stats(scheme: SchemeKind, total: u64, p: u32) -> ChunkStats {
    let sizes: Vec<u64> = match scheme {
        SchemeKind::Static => ChunkDispenser::new(total, StaticSched::new(total, p)).into_sizes(),
        SchemeKind::Pure => ChunkDispenser::new(total, PureSelfSched::new()).into_sizes(),
        SchemeKind::Css { k } => ChunkDispenser::new(total, ChunkSelfSched::new(k)).into_sizes(),
        SchemeKind::Gss { min_chunk } => {
            ChunkDispenser::new(total, GuidedSelfSched::with_min_chunk(p, min_chunk)).into_sizes()
        }
        SchemeKind::Tss => {
            ChunkDispenser::new(total, TrapezoidSelfSched::new(total, p)).into_sizes()
        }
        SchemeKind::TssWith { first, last } => {
            ChunkDispenser::new(total, TrapezoidSelfSched::with_bounds(total, first, last))
                .into_sizes()
        }
        SchemeKind::Fss => ChunkDispenser::new(total, FactoringSelfSched::new(p)).into_sizes(),
        SchemeKind::FssAdaptive { mean_cost, std_dev } => {
            ChunkDispenser::new(total, FactoringSelfSched::adaptive(p, mean_cost, std_dev))
                .into_sizes()
        }
        SchemeKind::Fiss { sigma } => {
            ChunkDispenser::new(total, FixedIncreaseSelfSched::new(total, p, sigma)).into_sizes()
        }
        SchemeKind::Tfss => {
            ChunkDispenser::new(total, TrapezoidFactoringSelfSched::new(total, p)).into_sizes()
        }
        // Worker-dependent schemes: drive a master round-robin over
        // dedicated equal workers (their homogeneous behaviour).
        other => {
            let mut master = Master::new(MasterConfig::homogeneous(other, total, p as usize));
            let mut sizes = Vec::new();
            let mut w = 0usize;
            loop {
                match master.handle_request(w % p as usize, 1) {
                    Assignment::Chunk(c) => sizes.push(c.len),
                    Assignment::Retry => {}
                    Assignment::Finished => break,
                }
                w += 1;
            }
            sizes
        }
    };
    stats_of(&sizes)
}

fn stats_of(sizes: &[u64]) -> ChunkStats {
    let steps = sizes.len() as u64;
    let total: u64 = sizes.iter().sum();
    ChunkStats {
        steps,
        first: sizes.first().copied().unwrap_or(0),
        last: sizes.last().copied().unwrap_or(0),
        max: sizes.iter().copied().max().unwrap_or(0),
        mean: if steps == 0 { 0.0 } else { total as f64 / steps as f64 },
    }
}

/// Closed-form predicted step count, where the scheme admits one:
///
/// - `S`: `p` — `SS`: `I` — `CSS(k)`: `⌈I/k⌉`
/// - `GSS`: ≈ `p·ln(I/p)` (geometric decay; exact value dispensed)
/// - `TSS`: `N = ⌈2I/(F+L)⌉`
/// - `FSS`: ≈ `p·log₂(I/p)` (α = 2)
/// - `FISS`: `σ·p`
/// - `TFSS`: ≈ `N_TSS` (same trapezoid, grouped into stages)
///
/// Returns `None` for schemes without a crisp closed form (use
/// [`chunk_stats`] instead).
pub fn predicted_steps(scheme: SchemeKind, total: u64, p: u32) -> Option<u64> {
    if total == 0 {
        return Some(0);
    }
    let pf = p as f64;
    let i = total as f64;
    match scheme {
        SchemeKind::Static => Some(p.min(total as u32) as u64),
        SchemeKind::Pure => Some(total),
        SchemeKind::Css { k } => Some(total.div_ceil(k)),
        SchemeKind::Tss => {
            let f = (total / (2 * p as u64)).max(1);
            Some((2 * total).div_ceil(f + 1).max(2))
        }
        SchemeKind::Gss { min_chunk: 1 } => Some((pf * (i / pf).max(1.0).ln()).ceil() as u64 + p as u64),
        SchemeKind::Fss => Some((pf * (i / pf).max(1.0).log2()).ceil() as u64 + p as u64),
        SchemeKind::Fiss { sigma } => Some(sigma as u64 * p as u64),
        _ => None,
    }
}

/// The idealized parallel-time lower bound for a loop of total cost
/// `total_cost` on PEs of the given relative powers, each of absolute
/// speed `powers[i] · unit_speed`: perfect balance, zero overhead.
pub fn makespan_lower_bound(total_cost: u64, powers: &[VirtualPower], unit_speed: f64) -> f64 {
    assert!(!powers.is_empty(), "need at least one PE");
    assert!(unit_speed > 0.0, "unit speed must be positive");
    let aggregate: f64 = powers.iter().map(|v| v.get() * unit_speed).sum();
    total_cost as f64 / aggregate
}

/// The §2.2 critical-chunk imbalance bound for *uniform* iteration
/// costs: the final chunk of size `last` can extend the makespan by at
/// most `last · cost / slowest_speed` beyond the lower bound.
pub fn critical_chunk_penalty(last_chunk: u64, unit_cost: u64, slowest_speed: f64) -> f64 {
    assert!(slowest_speed > 0.0, "speed must be positive");
    (last_chunk * unit_cost) as f64 / slowest_speed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_match_known_sequences() {
        // TFSS on the paper example: 113×4 81×4 49×4 17 11 = 14 chunks.
        let s = chunk_stats(SchemeKind::Tfss, 1000, 4);
        assert_eq!(s.steps, 14);
        assert_eq!(s.first, 113);
        assert_eq!(s.last, 11);
        assert_eq!(s.max, 113);
        assert!((s.mean - 1000.0 / 14.0).abs() < 1e-9);
    }

    #[test]
    fn predicted_steps_exact_schemes() {
        assert_eq!(predicted_steps(SchemeKind::Static, 1000, 4), Some(4));
        assert_eq!(predicted_steps(SchemeKind::Pure, 1000, 4), Some(1000));
        assert_eq!(predicted_steps(SchemeKind::Css { k: 30 }, 100, 4), Some(4));
        assert_eq!(predicted_steps(SchemeKind::Fiss { sigma: 3 }, 1000, 4), Some(12));
        assert_eq!(predicted_steps(SchemeKind::Tss, 1000, 4), Some(16));
        assert_eq!(predicted_steps(SchemeKind::Tfss, 1000, 4), None);
    }

    #[test]
    fn predictions_track_dispensed_counts() {
        for (scheme, tolerance) in [
            (SchemeKind::Static, 0u64),
            (SchemeKind::Css { k: 17 }, 0),
            (SchemeKind::Fiss { sigma: 4 }, 1),
            (SchemeKind::Tss, 3),
            (SchemeKind::Gss { min_chunk: 1 }, 8),
            (SchemeKind::Fss, 8),
        ] {
            let predicted = predicted_steps(scheme, 10_000, 8).unwrap();
            let actual = chunk_stats(scheme, 10_000, 8).steps;
            let diff = predicted.abs_diff(actual);
            assert!(
                diff <= tolerance,
                "{}: predicted {predicted}, dispensed {actual}",
                scheme.name()
            );
        }
    }

    #[test]
    fn distributed_schemes_fall_back_to_master_drain() {
        let s = chunk_stats(SchemeKind::Dtss, 1000, 4);
        assert!(s.steps > 0);
        assert!(s.first >= s.last);
    }

    #[test]
    fn lower_bound_and_penalty() {
        let powers = vec![VirtualPower::new(2.0), VirtualPower::new(1.0)];
        // cost 300 over aggregate speed 3·unit = 100·unit time.
        let lb = makespan_lower_bound(300, &powers, 1.0);
        assert!((lb - 100.0).abs() < 1e-12);
        // Final chunk of 10 unit-cost iterations on the slow PE.
        let pen = critical_chunk_penalty(10, 1, 1.0);
        assert!((pen - 10.0).abs() < 1e-12);
    }

    #[test]
    fn zero_iterations_are_fine() {
        assert_eq!(predicted_steps(SchemeKind::Tss, 0, 4), Some(0));
        let s = chunk_stats(SchemeKind::Tss, 0, 4);
        assert_eq!(s.steps, 0);
        assert_eq!(s.mean, 0.0);
    }
}
