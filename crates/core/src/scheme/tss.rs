//! Trapezoid self-scheduling (`TSS`, Tzen & Ni 1993).

use super::ChunkSizer;

/// Trapezoid self-scheduling: chunk sizes decrease *linearly* from a
/// first size `F` towards a last size `L`:
///
/// ```text
/// C_1 = F,   C_i = C_{i-1} - D,   D = ⌊(F - L) / (N - 1)⌋,
/// N = ⌊2I / (F + L)⌋
/// ```
///
/// Defaults (paper §2.2): `F = ⌊I / 2p⌋`, `L = 1`. The linear decrease
/// approximates GSS's geometric decay with strictly fewer scheduling
/// steps and a cheaper master-side computation — the paper calls TSS
/// GSS's "linearized approximation" and reports it as the best simple
/// scheme (Table 2).
///
/// The name comes from plotting chunk size against scheduling step: the
/// area under the curve (total iterations) is a trapezoid.
/// # Example
///
/// ```
/// use lss_core::chunk::ChunkDispenser;
/// use lss_core::scheme::TrapezoidSelfSched;
///
/// // The paper's Table 1 example: I = 1000, p = 4 → F = 125, D = 8.
/// let tss = TrapezoidSelfSched::new(1000, 4);
/// assert_eq!(tss.first(), 125);
/// let sizes = ChunkDispenser::new(1000, tss).into_sizes();
/// assert_eq!(&sizes[..4], &[125, 117, 109, 101]);
/// ```
#[derive(Debug, Clone)]
pub struct TrapezoidSelfSched {
    first: u64,
    last: u64,
    decrement: u64,
    steps: u64,
    current: u64,
}

impl TrapezoidSelfSched {
    /// TSS with the paper's default parameters `F = ⌊I/2p⌋`, `L = 1`.
    pub fn new(total: u64, p: u32) -> Self {
        assert!(p >= 1, "need at least one PE");
        let f = (total / (2 * p as u64)).max(1);
        Self::with_bounds(total, f, 1)
    }

    /// TSS with explicit first/last chunk sizes (user/compiler input).
    ///
    /// The paper notes `L > 1` as a remedy for TSS's many final
    /// synchronizations; this constructor enables that ablation.
    pub fn with_bounds(total: u64, first: u64, last: u64) -> Self {
        assert!(last >= 1, "last chunk size must be at least 1");
        let first = first.max(last);
        // N = ⌈2I / (F + L)⌉ (Tzen & Ni; the paper prints ⌊⌋, but the
        // floor strands a long unit-chunk tail whenever F+L does not
        // divide 2I — e.g. p = 1 — while both readings give the same
        // D = 8 for the paper's Table 1 example). Clamped so D's
        // divisor N - 1 stays positive.
        let steps = (2 * total).div_ceil(first + last).max(2);
        let decrement = (first - last) / (steps - 1);
        TrapezoidSelfSched {
            first,
            last,
            decrement,
            steps,
            current: first,
        }
    }

    /// First chunk size `F`.
    pub fn first(&self) -> u64 {
        self.first
    }

    /// Last chunk size `L`.
    pub fn last(&self) -> u64 {
        self.last
    }

    /// Chunk decrement `D`.
    pub fn decrement(&self) -> u64 {
        self.decrement
    }

    /// Planned number of scheduling steps `N`.
    pub fn planned_steps(&self) -> u64 {
        self.steps
    }

    /// The *formula* sequence `F, F-D, F-2D, …` down to (but not below)
    /// `max(L, 1)`, ignoring the remaining-iteration clamp.
    ///
    /// This is the idealized listing printed in Table 1 of the paper
    /// (whose sum may overshoot `I`; the dispensed sequence clamps the
    /// tail). It is also the building block of TFSS's stage sums.
    pub fn formula_sequence(&self) -> Vec<u64> {
        let mut v = Vec::new();
        let mut c = self.first;
        let floor = self.last.max(1);
        loop {
            v.push(c);
            if self.decrement == 0 || c < floor + self.decrement {
                break;
            }
            c -= self.decrement;
        }
        v
    }
}

impl ChunkSizer for TrapezoidSelfSched {
    fn next_chunk_size(&mut self, _remaining: u64) -> u64 {
        let c = self.current;
        self.current = self.current.saturating_sub(self.decrement).max(self.last).max(1);
        c
    }

    fn name(&self) -> &'static str {
        "TSS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{validate_tiling, Chunk, ChunkDispenser};

    #[test]
    fn table1_tss_parameters() {
        // I = 1000, p = 4: F = 125, L = 1, N = ⌈2000/126⌉ = 16,
        // D = ⌊124/15⌋ = 8 (the paper's ⌊N⌋ = 15 gives the same D).
        let tss = TrapezoidSelfSched::new(1000, 4);
        assert_eq!(tss.first(), 125);
        assert_eq!(tss.last(), 1);
        assert_eq!(tss.planned_steps(), 16);
        assert_eq!(tss.decrement(), 8);
    }

    #[test]
    fn table1_tss_formula_row() {
        // Paper Table 1 lists the idealized sequence:
        // 125 117 109 101 93 85 77 69 61 53 45 37 29 21 13 5
        let tss = TrapezoidSelfSched::new(1000, 4);
        assert_eq!(
            tss.formula_sequence(),
            vec![125, 117, 109, 101, 93, 85, 77, 69, 61, 53, 45, 37, 29, 21, 13, 5]
        );
    }

    #[test]
    fn dispensed_sequence_clamps_to_total() {
        let chunks: Vec<Chunk> =
            ChunkDispenser::new(1000, TrapezoidSelfSched::new(1000, 4)).collect();
        validate_tiling(&chunks, 1000).unwrap();
        let sizes: Vec<u64> = chunks.iter().map(|c| c.len).collect();
        // Follows the formula until the remaining iterations run out.
        assert_eq!(&sizes[..12], &[125, 117, 109, 101, 93, 85, 77, 69, 61, 53, 45, 37]);
        assert_eq!(*sizes.last().unwrap(), 28); // 1000 - 972
    }

    #[test]
    fn linear_decrease_between_consecutive_chunks() {
        let mut tss = TrapezoidSelfSched::new(10_000, 8);
        let d = tss.decrement();
        let mut prev = tss.next_chunk_size(u64::MAX);
        for _ in 0..tss.planned_steps() - 1 {
            let c = tss.next_chunk_size(u64::MAX);
            assert_eq!(prev - c, d);
            prev = c;
        }
    }

    #[test]
    fn explicit_bounds_respected() {
        let tss = TrapezoidSelfSched::with_bounds(1000, 100, 20);
        let seq = tss.formula_sequence();
        assert_eq!(*seq.first().unwrap(), 100);
        assert!(seq.iter().all(|&c| c >= 20));
    }

    #[test]
    fn l_greater_than_one_floors_chunks() {
        // Ablation the paper suggests: choose L > 1 to avoid the many
        // tiny final chunks.
        let sizes =
            ChunkDispenser::new(1000, TrapezoidSelfSched::with_bounds(1000, 125, 10)).into_sizes();
        // All but the clamped tail are at least L = 10.
        for &s in &sizes[..sizes.len() - 1] {
            assert!(s >= 10);
        }
        assert_eq!(sizes.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn tiny_loop_does_not_panic() {
        for total in 1..=10u64 {
            let chunks: Vec<Chunk> =
                ChunkDispenser::new(total, TrapezoidSelfSched::new(total, 4)).collect();
            validate_tiling(&chunks, total).unwrap();
        }
    }

    #[test]
    fn degenerate_first_equals_last() {
        // F == L: D = 0, constant chunk size (CSS-like behaviour).
        let sizes = ChunkDispenser::new(100, TrapezoidSelfSched::with_bounds(100, 10, 10))
            .into_sizes();
        assert!(sizes.iter().all(|&s| s == 10));
    }
}
