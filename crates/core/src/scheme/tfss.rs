//! Trapezoid-factoring self-scheduling (`TFSS`) — **the paper's new
//! scheme** (§4).

use super::{div_ceil, ChunkSizer};
use crate::scheme::TrapezoidSelfSched;

/// Trapezoid-factoring self-scheduling: FSS-style *stages* of `p`
/// equal chunks, with the stage total taken from TSS's linearly
/// decreasing sequence instead of FSS's geometric halving.
///
/// §4: *"The size of the next chunk is the sum of the next `p` chunks
/// that would have been computed by the TSS algorithm. The chunk is
/// then equally divided among the `p` processors, as in FSS."*
///
/// ```text
/// stage k total:   SC_k = Σ_{i = kp+1}^{(k+1)p} C_i^TSS
/// per-PE chunk:    C^TFSS_k = SC_k / p
/// ```
///
/// For the paper's running example (`I = 1000`, `p = 4`) the TSS
/// sequence `125 117 109 101 | 93 85 77 69 | 61 53 45 37 | 29 21 13 5`
/// yields stages of `113`, `81`, `49` and `17` — Table 1's TFSS row.
///
/// Design intent: few scheduling steps and big early chunks (from TSS's
/// linear decrease) *and* FSS's stage structure, which adapts the chunk
/// size less often and was observed to improve on per-request
/// adaptation. When the TSS formula sequence is exhausted but
/// iterations remain (integer effects), the scheme falls back to
/// guided-style `⌈R/p⌉` proposals so the loop always completes.
#[derive(Debug, Clone)]
pub struct TrapezoidFactoringSelfSched {
    p: u32,
    /// Per-PE chunk size for each planned stage.
    stage_chunks: Vec<u64>,
    stage: usize,
    in_stage: u32,
}

impl TrapezoidFactoringSelfSched {
    /// TFSS over `total` iterations for `p` PEs, with the underlying
    /// TSS using its default parameters (`F = ⌊I/2p⌋`, `L = 1`).
    pub fn new(total: u64, p: u32) -> Self {
        Self::from_tss(&TrapezoidSelfSched::new(total, p), p)
    }

    /// TFSS built on an explicitly parameterized TSS sequence.
    pub fn from_tss(tss: &TrapezoidSelfSched, p: u32) -> Self {
        assert!(p >= 1, "need at least one PE");
        let seq = tss.formula_sequence();
        let stage_chunks = seq
            .chunks(p as usize)
            .map(|group| {
                let total: u64 = group.iter().sum();
                // Divide the stage total evenly; round to nearest so a
                // partial trailing group is not systematically starved.
                ((total as f64 / p as f64).round() as u64).max(1)
            })
            .collect();
        TrapezoidFactoringSelfSched {
            p,
            stage_chunks,
            stage: 0,
            in_stage: 0,
        }
    }

    /// The per-PE chunk size of every planned stage (Table 1 lists the
    /// first of each: `113 81 49 17` for `I = 1000, p = 4`).
    pub fn stage_chunks(&self) -> &[u64] {
        &self.stage_chunks
    }

    /// Number of planned stages.
    pub fn planned_stages(&self) -> usize {
        self.stage_chunks.len()
    }
}

impl ChunkSizer for TrapezoidFactoringSelfSched {
    fn next_chunk_size(&mut self, remaining: u64) -> u64 {
        let c = match self.stage_chunks.get(self.stage) {
            Some(&c) => c,
            // Formula exhausted but work remains: finish guided-style.
            None => div_ceil(remaining, self.p as u64),
        };
        self.in_stage += 1;
        if self.in_stage == self.p {
            self.in_stage = 0;
            self.stage += 1;
        }
        c
    }

    fn name(&self) -> &'static str {
        "TFSS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{validate_tiling, Chunk, ChunkDispenser};

    #[test]
    fn table1_tfss_row_stage_sizes() {
        // Paper Table 1 / §4 Example 2: stages of 113, 81, 49, 17.
        let tfss = TrapezoidFactoringSelfSched::new(1000, 4);
        assert_eq!(tfss.stage_chunks(), &[113, 81, 49, 17]);
    }

    #[test]
    fn table1_tfss_dispensed_sequence() {
        let sizes = ChunkDispenser::new(1000, TrapezoidFactoringSelfSched::new(1000, 4))
            .into_sizes();
        // Three full stages (4 × 113, 4 × 81, 4 × 49 = 972) then the
        // final stage clamps: 17, 11.
        assert_eq!(
            sizes,
            vec![113, 113, 113, 113, 81, 81, 81, 81, 49, 49, 49, 49, 17, 11]
        );
        assert_eq!(sizes.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn stage_structure_matches_fss_pattern() {
        // TFSS "follows the pattern of FSS (creates groups of p chunks
        // of equal size)" — §4.
        let tfss = TrapezoidFactoringSelfSched::new(100_000, 8);
        let planned = tfss.planned_stages();
        let sizes = ChunkDispenser::new(100_000, tfss).into_sizes();
        // Within the planned stages (before the guided-style fallback
        // tail and before the final clamp) every group of 8 is uniform.
        let uniform_stages = planned.saturating_sub(1).min(sizes.len() / 8);
        assert!(uniform_stages >= 2, "want at least two full stages to check");
        for k in 0..uniform_stages {
            let stage = &sizes[k * 8..(k + 1) * 8];
            assert!(stage.windows(2).all(|w| w[0] == w[1]), "stage {k} uneven: {stage:?}");
        }
    }

    #[test]
    fn stage_sizes_decrease_linearly_like_tss() {
        let tfss = TrapezoidFactoringSelfSched::new(1000, 4);
        let s = tfss.stage_chunks();
        // Differences 113-81 = 81-49 = 49-17 = 32 = p·D = 4·8.
        assert!(s.windows(2).all(|w| w[0] - w[1] == 32));
    }

    #[test]
    fn fewer_scheduling_steps_than_fss() {
        use crate::scheme::FactoringSelfSched;
        let tfss =
            ChunkDispenser::new(1000, TrapezoidFactoringSelfSched::new(1000, 4)).into_sizes();
        let fss = ChunkDispenser::new(1000, FactoringSelfSched::new(4)).into_sizes();
        assert!(tfss.len() < fss.len(), "TFSS {} vs FSS {}", tfss.len(), fss.len());
    }

    #[test]
    fn always_tiles_exactly() {
        for total in [1u64, 7, 100, 999, 1000, 1001, 54321] {
            for p in [1u32, 2, 3, 4, 8, 16] {
                let chunks: Vec<Chunk> =
                    ChunkDispenser::new(total, TrapezoidFactoringSelfSched::new(total, p))
                        .collect();
                validate_tiling(&chunks, total)
                    .unwrap_or_else(|e| panic!("I={total}, p={p}: {e}"));
            }
        }
    }

    #[test]
    fn custom_tss_bounds_flow_through() {
        let tss = crate::scheme::TrapezoidSelfSched::with_bounds(1000, 100, 20);
        let tfss = TrapezoidFactoringSelfSched::from_tss(&tss, 4);
        assert!(!tfss.stage_chunks().is_empty());
        let chunks: Vec<Chunk> = ChunkDispenser::new(1000, tfss).collect();
        validate_tiling(&chunks, 1000).unwrap();
    }
}
