//! The *simple* self-scheduling schemes of §2 of the paper, plus the
//! weighted-factoring baseline of §6.
//!
//! Each scheme answers one question — *how many iterations should the
//! next requesting PE receive?* — via the [`ChunkSizer`] trait. In the
//! paper's generic formulation (eq. 1):
//!
//! ```text
//! R_0 = I,    C_i = f(R_{i-1}, p),    R_i = R_{i-1} - C_i
//! ```
//!
//! The schemes differ only in `f`:
//!
//! | scheme | `C_i` | source |
//! |--------|-------|--------|
//! | S (static) | `⌈I/p⌉`, exactly `p` chunks | folklore |
//! | SS (pure)  | `1` | \[8\] |
//! | CSS(k)     | `k` | \[8\] |
//! | GSS        | `⌈R_{i-1}/p⌉` | Polychronopoulos & Kuck |
//! | TSS        | `C_{i-1} - D` (linear decrease) | Tzen & Ni |
//! | FSS        | `R_{i-1}/(αp)` held for a stage of `p` chunks | Hummel et al. |
//! | FISS       | `C_{i-1} + B` (linear *increase*), `σ` stages | Philip & Das |
//! | TFSS       | mean of the next `p` TSS chunks, held for a stage | **this paper** |
//! | WF         | FSS stages split by static weights | Hummel et al. '96 |
//!
//! Chunk-size proposals are *pure formulas*; the global clamping
//! (`1 <= C_i <= R_{i-1}`) and iteration accounting live in
//! [`crate::chunk::ChunkDispenser`] so every scheme implements its
//! published formula verbatim.

mod css;
mod fiss;
mod fss;
mod gss;
mod pure;
mod static_sched;
mod tfss;
mod tss;
mod wf;

pub use css::ChunkSelfSched;
pub use fiss::FixedIncreaseSelfSched;
pub use fss::FactoringSelfSched;
pub use gss::GuidedSelfSched;
pub use pure::PureSelfSched;
pub use static_sched::StaticSched;
pub use tfss::TrapezoidFactoringSelfSched;
pub use tss::TrapezoidSelfSched;
pub use wf::WeightedFactoring;

/// A self-scheduling chunk-size rule: given the number of remaining
/// iterations, propose the size of the next chunk.
///
/// Implementations may keep internal state (stage counters, the
/// previous chunk size, …). Proposals are clamped to `1..=remaining`
/// by [`crate::chunk::ChunkDispenser`], so returning `0` or an
/// over-large value is tolerated but normally indicates the formula has
/// run its course.
pub trait ChunkSizer {
    /// Proposes the size of the next chunk, given `remaining`
    /// unassigned iterations (`remaining >= 1` when called).
    fn next_chunk_size(&mut self, remaining: u64) -> u64;

    /// Short scheme name, e.g. `"TSS"`, for reports and tables.
    fn name(&self) -> &'static str;
}

impl<T: ChunkSizer + ?Sized> ChunkSizer for Box<T> {
    fn next_chunk_size(&mut self, remaining: u64) -> u64 {
        (**self).next_chunk_size(remaining)
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}

/// Rounds to the nearest integer, ties to even ("banker's rounding").
///
/// The chunk sequences printed in Table 1 of the paper are reproduced
/// exactly by FSS only under this rounding mode: `500/8 = 62.5 → 62`
/// but `252/8 = 31.5 → 32`. (Plain floor gives `62, 31, …`; plain
/// round-half-up gives `63, 32, …`; only half-to-even matches both.)
pub(crate) fn round_half_even(x: f64) -> u64 {
    debug_assert!(x >= 0.0);
    let floor = x.floor();
    let frac = x - floor;
    let f = floor as u64;
    if frac > 0.5 || (frac == 0.5 && !f.is_multiple_of(2)) {
        f + 1
    } else {
        f
    }
}

/// Ceiling of `a / b` in integer arithmetic.
pub(crate) fn div_ceil(a: u64, b: u64) -> u64 {
    debug_assert!(b > 0);
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_half_even_matches_table1_cases() {
        assert_eq!(round_half_even(62.5), 62);
        assert_eq!(round_half_even(31.5), 32);
        assert_eq!(round_half_even(15.5), 16);
        assert_eq!(round_half_even(7.5), 8);
        assert_eq!(round_half_even(3.5), 4);
        assert_eq!(round_half_even(1.5), 2);
        assert_eq!(round_half_even(0.5), 0);
    }

    #[test]
    fn round_half_even_off_ties() {
        assert_eq!(round_half_even(2.4), 2);
        assert_eq!(round_half_even(2.6), 3);
        assert_eq!(round_half_even(0.0), 0);
        assert_eq!(round_half_even(125.0), 125);
    }

    #[test]
    fn div_ceil_basics() {
        assert_eq!(div_ceil(10, 4), 3);
        assert_eq!(div_ceil(8, 4), 2);
        assert_eq!(div_ceil(1, 4), 1);
        assert_eq!(div_ceil(0, 4), 0);
    }
}
