//! Chunk self-scheduling (`CSS(k)`): fixed user-chosen chunk size.

use super::ChunkSizer;

/// Chunk self-scheduling: every request is answered with a fixed,
/// user-chosen number of iterations `k >= 1`.
///
/// Paper §2.2: *"Weaknesses: increased chance of load imbalance due to
/// difficulty to predict an optimal k, nonadaptive. Strengths: reduced
/// communication/scheduling overheads."* `CSS(1)` is pure
/// self-scheduling.
#[derive(Debug, Clone)]
pub struct ChunkSelfSched {
    k: u64,
}

impl ChunkSelfSched {
    /// Creates chunk self-scheduling with chunk size `k` (must be ≥ 1).
    pub fn new(k: u64) -> Self {
        assert!(k >= 1, "CSS chunk size must be at least 1");
        ChunkSelfSched { k }
    }

    /// The fixed chunk size.
    pub fn k(&self) -> u64 {
        self.k
    }
}

impl ChunkSizer for ChunkSelfSched {
    fn next_chunk_size(&mut self, _remaining: u64) -> u64 {
        self.k
    }

    fn name(&self) -> &'static str {
        "CSS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{validate_tiling, Chunk, ChunkDispenser};

    #[test]
    fn constant_chunks_with_clamped_tail() {
        let chunks: Vec<Chunk> = ChunkDispenser::new(100, ChunkSelfSched::new(30)).collect();
        validate_tiling(&chunks, 100).unwrap();
        let sizes: Vec<u64> = chunks.iter().map(|c| c.len).collect();
        assert_eq!(sizes, vec![30, 30, 30, 10]);
    }

    #[test]
    fn k_exactly_divides() {
        let sizes = ChunkDispenser::new(90, ChunkSelfSched::new(30)).into_sizes();
        assert_eq!(sizes, vec![30, 30, 30]);
    }

    #[test]
    fn k_one_is_pure_self_scheduling() {
        let sizes = ChunkDispenser::new(5, ChunkSelfSched::new(1)).into_sizes();
        assert_eq!(sizes, vec![1, 1, 1, 1, 1]);
    }

    #[test]
    fn k_larger_than_loop() {
        let sizes = ChunkDispenser::new(5, ChunkSelfSched::new(1000)).into_sizes();
        assert_eq!(sizes, vec![5]);
    }

    #[test]
    #[should_panic]
    fn zero_k_rejected() {
        ChunkSelfSched::new(0);
    }
}
