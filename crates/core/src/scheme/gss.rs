//! Guided self-scheduling (`GSS`, Polychronopoulos & Kuck 1987).

use super::{div_ceil, ChunkSizer};

/// Guided self-scheduling: `C_i = ⌈R_{i-1} / p⌉`.
///
/// Chunks start large (the first is `I/p`, like static scheduling) and
/// decay geometrically. Paper §2.2: *"Weaknesses: at the last steps too
/// many small chunks are assigned. Strengths: adaptive; large chunks
/// initially imply reduced communication/scheduling overheads in the
/// beginning."*
///
/// The `GSS(k)` variant imposes a user-chosen minimum chunk size `k` to
/// curb the long tail of unit chunks; construct it with
/// [`GuidedSelfSched::with_min_chunk`].
///
/// The paper's evaluation drops GSS in favour of its "linearized
/// approximation" TSS (§2.2 Remark), but we keep it as an ablation
/// baseline.
/// # Example
///
/// ```
/// use lss_core::chunk::ChunkDispenser;
/// use lss_core::scheme::GuidedSelfSched;
///
/// let sizes = ChunkDispenser::new(1000, GuidedSelfSched::new(4)).into_sizes();
/// assert_eq!(sizes[0], 250); // ceil(1000/4)
/// assert_eq!(*sizes.last().unwrap(), 1); // the long unit tail
/// ```
#[derive(Debug, Clone)]
pub struct GuidedSelfSched {
    p: u64,
    min_chunk: u64,
}

impl GuidedSelfSched {
    /// Plain GSS for `p` PEs.
    pub fn new(p: u32) -> Self {
        Self::with_min_chunk(p, 1)
    }

    /// `GSS(k)`: guided self-scheduling with minimum chunk size `k`.
    pub fn with_min_chunk(p: u32, k: u64) -> Self {
        assert!(p >= 1, "need at least one PE");
        assert!(k >= 1, "minimum chunk size must be at least 1");
        GuidedSelfSched {
            p: p as u64,
            min_chunk: k,
        }
    }

    /// The configured minimum chunk size (1 for plain GSS).
    pub fn min_chunk(&self) -> u64 {
        self.min_chunk
    }
}

impl ChunkSizer for GuidedSelfSched {
    fn next_chunk_size(&mut self, remaining: u64) -> u64 {
        div_ceil(remaining, self.p).max(self.min_chunk)
    }

    fn name(&self) -> &'static str {
        "GSS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{validate_tiling, Chunk, ChunkDispenser};

    #[test]
    fn table1_gss_row() {
        // Paper Table 1, I = 1000, p = 4:
        // 250 188 141 106 79 59 45 33 25 19 14 11 8 6 4 3 3 2 1 1 1 1
        let sizes = ChunkDispenser::new(1000, GuidedSelfSched::new(4)).into_sizes();
        assert_eq!(
            sizes,
            vec![250, 188, 141, 106, 79, 59, 45, 33, 25, 19, 14, 11, 8, 6, 4, 3, 3, 2, 1, 1, 1, 1]
        );
        assert_eq!(sizes.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn chunks_never_increase() {
        let sizes = ChunkDispenser::new(12345, GuidedSelfSched::new(7)).into_sizes();
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn min_chunk_variant_truncates_tail() {
        let plain = ChunkDispenser::new(1000, GuidedSelfSched::new(4)).into_sizes();
        let k10 = ChunkDispenser::new(1000, GuidedSelfSched::with_min_chunk(4, 10)).into_sizes();
        assert!(k10.len() < plain.len());
        // All but the clamped final chunk respect the minimum.
        for &s in &k10[..k10.len() - 1] {
            assert!(s >= 10);
        }
        assert_eq!(k10.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn single_pe_takes_all_at_once() {
        let sizes = ChunkDispenser::new(64, GuidedSelfSched::new(1)).into_sizes();
        assert_eq!(sizes, vec![64]);
    }

    #[test]
    fn still_tiles_with_large_p() {
        let chunks: Vec<Chunk> = ChunkDispenser::new(10, GuidedSelfSched::new(100)).collect();
        validate_tiling(&chunks, 10).unwrap();
    }
}
