//! Pure self-scheduling (`SS`): one iteration at a time.

use super::ChunkSizer;

/// Pure self-scheduling: every request is answered with a single
/// iteration (`C_i = 1`).
///
/// The paper treats it as the degenerate `CSS(k = 1)` case. It achieves
/// the best possible load balance but the worst possible
/// communication/scheduling overhead — `I` round-trips to the master —
/// which is why the evaluation drops it beyond Table 1.
#[derive(Debug, Clone, Default)]
pub struct PureSelfSched;

impl PureSelfSched {
    /// Creates pure self-scheduling.
    pub fn new() -> Self {
        PureSelfSched
    }
}

impl ChunkSizer for PureSelfSched {
    fn next_chunk_size(&mut self, _remaining: u64) -> u64 {
        1
    }

    fn name(&self) -> &'static str {
        "SS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::ChunkDispenser;

    #[test]
    fn all_chunks_are_singletons() {
        let sizes = ChunkDispenser::new(25, PureSelfSched::new()).into_sizes();
        assert_eq!(sizes.len(), 25);
        assert!(sizes.iter().all(|&s| s == 1));
    }

    #[test]
    fn chunk_count_equals_iteration_count() {
        for total in [1u64, 2, 100, 1000] {
            let n = ChunkDispenser::new(total, PureSelfSched::new()).count();
            assert_eq!(n as u64, total);
        }
    }
}
