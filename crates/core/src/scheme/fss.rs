//! Factoring self-scheduling (`FSS`, Hummel, Schonberg & Flynn 1992).

use super::{round_half_even, ChunkSizer};

/// Factoring self-scheduling: iterations are scheduled in *stages* of
/// `p` equal-sized chunks; at each stage a fixed fraction `1/α` of the
/// remaining iterations is handed out:
///
/// ```text
/// C_i = R_{i-1} / (α p)        (held constant for one stage)
/// R_i = R_{i-1} - p·C_i        (after each stage)
/// ```
///
/// The analysis in Hummel et al. derives `α` from the iteration-time
/// distribution; the paper (like most implementations) uses the
/// sub-optimal but robust `α = 2`, i.e. each stage schedules half of
/// what remains.
///
/// Rounding: `R/(αp)` is rounded half-to-even — the unique rounding
/// mode that reproduces the paper's Table 1 row
/// (`125×4 62×4 32×4 16×4 8×4 4×4 2×4 1×4 1 1 1 1`) digit for digit
/// (plain floor or round-half-up each disagree somewhere).
/// # Example
///
/// ```
/// use lss_core::chunk::ChunkDispenser;
/// use lss_core::scheme::FactoringSelfSched;
///
/// let sizes = ChunkDispenser::new(1000, FactoringSelfSched::new(4)).into_sizes();
/// // Stage 1 hands out half of 1000 as four chunks of 125.
/// assert_eq!(&sizes[..4], &[125, 125, 125, 125]);
/// ```
#[derive(Debug, Clone)]
pub struct FactoringSelfSched {
    p: u32,
    rule: AlphaRule,
    /// Chunk size for the stage in progress.
    stage_chunk: u64,
    /// Chunks already handed out in the stage in progress.
    in_stage: u32,
}

/// How the per-stage factoring parameter is obtained.
#[derive(Debug, Clone, Copy)]
enum AlphaRule {
    /// Fixed `α` (the paper's sub-optimal but robust choice).
    Fixed(f64),
    /// Hummel–Schonberg–Flynn optimal batching from the iteration-time
    /// distribution: per stage `j`,
    ///
    /// ```text
    /// b_j = p·σ / (2·√R_j·μ),    x_j = 1 + b_j² + b_j·√(b_j² + 2)
    /// ```
    ///
    /// and the stage chunk is `R_j / (x_j·p)`. With `σ = 0` this
    /// degenerates to static scheduling (one stage takes everything);
    /// high variance drives `x_j` up, shrinking early chunks.
    Adaptive {
        /// Mean iteration execution time `μ` (any consistent unit).
        mean: f64,
        /// Standard deviation `σ` of iteration execution times.
        std_dev: f64,
    },
}

impl FactoringSelfSched {
    /// FSS with the conventional `α = 2`.
    pub fn new(p: u32) -> Self {
        Self::with_alpha(p, 2.0)
    }

    /// FSS with an explicit factoring parameter `α > 1`.
    pub fn with_alpha(p: u32, alpha: f64) -> Self {
        assert!(p >= 1, "need at least one PE");
        assert!(alpha > 1.0, "factoring parameter must exceed 1");
        FactoringSelfSched {
            p,
            rule: AlphaRule::Fixed(alpha),
            stage_chunk: 0,
            in_stage: 0,
        }
    }

    /// FSS with Hummel et al.'s *computed* α: the per-stage batching
    /// rule derived from the iteration-time distribution (`μ`, `σ`) —
    /// the "computed by a probability distribution" option the paper
    /// alludes to in §2.2.
    pub fn adaptive(p: u32, mean_cost: f64, std_dev: f64) -> Self {
        assert!(p >= 1, "need at least one PE");
        assert!(
            mean_cost.is_finite() && mean_cost > 0.0,
            "mean iteration cost must be positive"
        );
        assert!(std_dev.is_finite() && std_dev >= 0.0, "σ must be non-negative");
        FactoringSelfSched {
            p,
            rule: AlphaRule::Adaptive { mean: mean_cost, std_dev },
            stage_chunk: 0,
            in_stage: 0,
        }
    }

    /// The factoring parameter in effect for a stage opening with `r`
    /// iterations remaining.
    pub fn alpha_for(&self, r: u64) -> f64 {
        match self.rule {
            AlphaRule::Fixed(a) => a,
            AlphaRule::Adaptive { mean, std_dev } => {
                if r == 0 {
                    return 1.0;
                }
                let b = self.p as f64 * std_dev / (2.0 * (r as f64).sqrt() * mean);
                1.0 + b * b + b * (b * b + 2.0).sqrt()
            }
        }
    }

    /// The fixed factoring parameter `α`, if this instance uses one.
    pub fn alpha(&self) -> Option<f64> {
        match self.rule {
            AlphaRule::Fixed(a) => Some(a),
            AlphaRule::Adaptive { .. } => None,
        }
    }

    /// Number of PEs `p` (the stage width).
    pub fn p(&self) -> u32 {
        self.p
    }
}

impl ChunkSizer for FactoringSelfSched {
    fn next_chunk_size(&mut self, remaining: u64) -> u64 {
        if self.in_stage == 0 {
            // New stage: recompute the per-PE chunk from what remains.
            let alpha = self.alpha_for(remaining);
            let c = round_half_even(remaining as f64 / (alpha * self.p as f64));
            self.stage_chunk = c.max(1);
        }
        self.in_stage += 1;
        if self.in_stage == self.p {
            self.in_stage = 0;
        }
        self.stage_chunk
    }

    fn name(&self) -> &'static str {
        "FSS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{validate_tiling, Chunk, ChunkDispenser};

    #[test]
    fn table1_fss_row() {
        // Paper Table 1, I = 1000, p = 4:
        // 125 125 125 125 62 62 62 62 32 32 32 32 16 16 16 16
        // 8 8 8 8 4 4 4 4 2 2 2 2 1 1 1 1 1 1 1 1
        let sizes = ChunkDispenser::new(1000, FactoringSelfSched::new(4)).into_sizes();
        let mut expected = Vec::new();
        for &s in &[125u64, 62, 32, 16, 8, 4, 2, 1] {
            expected.extend(std::iter::repeat_n(s, 4));
        }
        // After eight full stages 1000 - 4*(125+62+32+16+8+4+2+1) = 0,
        // i.e. exactly 4 unit chunks close the loop — matching the
        // paper's trailing "1 1 1 1".
        assert_eq!(sizes, expected);
        assert_eq!(sizes.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn stages_have_p_equal_chunks() {
        let sizes = ChunkDispenser::new(10_000, FactoringSelfSched::new(8)).into_sizes();
        // Walk stage by stage until sizes change; every run of equal
        // values (except possibly the clamped tail) has length ≥ 1 and
        // full stages have length exactly 8.
        let mut i = 0;
        while i < sizes.len() {
            let v = sizes[i];
            let run = sizes[i..].iter().take_while(|&&s| s == v).count();
            if i + run < sizes.len() {
                assert!(
                    run % 8 == 0 || v == 1,
                    "non-final stage of size {v} has {run} chunks"
                );
            }
            i += run;
        }
    }

    #[test]
    fn each_stage_halves_remaining() {
        let mut fss = FactoringSelfSched::new(4);
        // First stage with R = 1000: 1000/8 = 125.
        assert_eq!(fss.next_chunk_size(1000), 125);
        // Still in the same stage: the size is held even though R drops.
        assert_eq!(fss.next_chunk_size(875), 125);
        assert_eq!(fss.next_chunk_size(750), 125);
        assert_eq!(fss.next_chunk_size(625), 125);
        // New stage with R = 500: 500/8 = 62.5 → 62 (half-to-even).
        assert_eq!(fss.next_chunk_size(500), 62);
    }

    #[test]
    fn alpha_variants_change_aggressiveness() {
        let a2 = ChunkDispenser::new(1000, FactoringSelfSched::new(4)).into_sizes();
        let a4 = ChunkDispenser::new(1000, FactoringSelfSched::with_alpha(4, 4.0)).into_sizes();
        // Larger α → smaller first chunk, more scheduling steps.
        assert!(a4[0] < a2[0]);
        assert!(a4.len() > a2.len());
        assert_eq!(a4.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn terminates_on_tiny_loops() {
        for total in 1..=20u64 {
            let chunks: Vec<Chunk> =
                ChunkDispenser::new(total, FactoringSelfSched::new(4)).collect();
            validate_tiling(&chunks, total).unwrap();
        }
    }

    #[test]
    #[should_panic]
    fn alpha_one_rejected() {
        FactoringSelfSched::with_alpha(4, 1.0);
    }

    #[test]
    fn adaptive_zero_variance_is_static() {
        // σ = 0 → x = 1 → the first stage takes everything, split
        // evenly: exactly static scheduling, the optimum for uniform
        // loops.
        let sizes = ChunkDispenser::new(1000, FactoringSelfSched::adaptive(4, 10.0, 0.0))
            .into_sizes();
        assert_eq!(sizes, vec![250, 250, 250, 250]);
    }

    #[test]
    fn adaptive_high_variance_shrinks_early_chunks() {
        let calm = ChunkDispenser::new(10_000, FactoringSelfSched::adaptive(4, 10.0, 1.0))
            .into_sizes();
        let wild = ChunkDispenser::new(10_000, FactoringSelfSched::adaptive(4, 10.0, 30.0))
            .into_sizes();
        assert!(wild[0] < calm[0], "wild {} !< calm {}", wild[0], calm[0]);
        assert!(wild.len() > calm.len());
        assert_eq!(wild.iter().sum::<u64>(), 10_000);
    }

    #[test]
    fn adaptive_alpha_formula_sanity() {
        // b = pσ/(2√R μ); with p=4, σ=μ=10, R=400: b = 4·10/(2·20·10)
        // = 0.1; x = 1 + 0.01 + 0.1·√2.01 ≈ 1.1518.
        let fss = FactoringSelfSched::adaptive(4, 10.0, 10.0);
        let x = fss.alpha_for(400);
        assert!((x - 1.1518).abs() < 1e-3, "x = {x}");
        // Fixed instances report their α; adaptive ones don't.
        assert_eq!(FactoringSelfSched::new(4).alpha(), Some(2.0));
        assert_eq!(fss.alpha(), None);
    }

    #[test]
    fn adaptive_tiles_exactly() {
        for total in [1u64, 17, 999, 5000] {
            let chunks: Vec<Chunk> =
                ChunkDispenser::new(total, FactoringSelfSched::adaptive(8, 5.0, 12.0)).collect();
            validate_tiling(&chunks, total).unwrap();
        }
    }

    #[test]
    #[should_panic]
    fn adaptive_rejects_zero_mean() {
        FactoringSelfSched::adaptive(4, 0.0, 1.0);
    }
}
