//! Weighted factoring (`WF`, Hummel, Schmidt, Uma & Wein 1996).

use crate::chunk::Chunk;

/// Weighted factoring: factoring's stages, but each PE's chunk within a
/// stage is scaled by its *static* relative weight:
///
/// ```text
/// stage k total:  T_k = R_k / α          (α = 2)
/// PE j's chunk:   C_j^k = T_k · w_j / W,  W = Σ w_j
/// ```
///
/// The weights are measured (or assumed) once, before execution, and
/// never updated. That is exactly why §6 of the paper classifies WF as
/// **not distributed**: *"the actual state of the system is not
/// considered."* It serves as the heterogeneity-aware-but-non-adaptive
/// baseline between the simple schemes and the DTSS-style distributed
/// ones.
///
/// Because the chunk depends on *which* PE is asking, WF does not fit
/// the [`super::ChunkSizer`] shape; it exposes a per-worker
/// [`WeightedFactoring::next_chunk`] instead. Stage totals follow a
/// deterministic sequence (`R_{k+1} = R_k - round(R_k/α)`), so every
/// worker sees the same stage geometry regardless of request
/// interleaving — a property the unit tests pin down.
#[derive(Debug, Clone)]
pub struct WeightedFactoring {
    weights: Vec<f64>,
    total_weight: f64,
    alpha: f64,
    next_start: u64,
    remaining: u64,
    /// `R_k` — remaining iterations at the start of stage `k`
    /// (extended lazily as workers reach later stages).
    stage_remaining: Vec<u64>,
    /// Next stage index each worker will draw from.
    worker_stage: Vec<usize>,
}

impl WeightedFactoring {
    /// Creates weighted factoring over `total` iterations with one
    /// weight per PE (α = 2).
    pub fn new(total: u64, weights: &[f64]) -> Self {
        Self::with_alpha(total, weights, 2.0)
    }

    /// Weighted factoring with an explicit factoring parameter.
    pub fn with_alpha(total: u64, weights: &[f64], alpha: f64) -> Self {
        assert!(!weights.is_empty(), "need at least one PE weight");
        assert!(
            weights.iter().all(|&w| w.is_finite() && w > 0.0),
            "weights must be positive and finite"
        );
        assert!(alpha > 1.0, "factoring parameter must exceed 1");
        WeightedFactoring {
            total_weight: weights.iter().sum(),
            weights: weights.to_vec(),
            alpha,
            next_start: 0,
            remaining: total,
            stage_remaining: vec![total],
            worker_stage: vec![0; weights.len()],
        }
    }

    /// Number of participating PEs.
    pub fn num_workers(&self) -> usize {
        self.weights.len()
    }

    /// Iterations not yet handed out.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// `R_k` for stage `k`, extending the deterministic sequence on
    /// demand.
    fn stage_r(&mut self, k: usize) -> u64 {
        while self.stage_remaining.len() <= k {
            let r = *self.stage_remaining.last().expect("seeded with R_0");
            let t = ((r as f64 / self.alpha).round() as u64).min(r);
            self.stage_remaining.push(r - t);
        }
        self.stage_remaining[k]
    }

    /// Next chunk for `worker`, or `None` once the loop is exhausted.
    ///
    /// # Panics
    /// If `worker` is out of range.
    pub fn next_chunk(&mut self, worker: usize) -> Option<Chunk> {
        assert!(worker < self.weights.len(), "unknown worker {worker}");
        if self.remaining == 0 {
            return None;
        }
        let k = self.worker_stage[worker];
        self.worker_stage[worker] += 1;
        let r_k = self.stage_r(k);
        let stage_total = r_k as f64 / self.alpha;
        let share = stage_total * self.weights[worker] / self.total_weight;
        let len = (share.round() as u64).clamp(1, self.remaining);
        let chunk = Chunk::new(self.next_start, len);
        self.next_start += len;
        self.remaining -= len;
        Some(chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::validate_tiling;

    /// Round-robin requests until exhaustion; returns (worker, chunk).
    fn drain(wf: &mut WeightedFactoring) -> Vec<(usize, Chunk)> {
        let p = wf.num_workers();
        let mut out = Vec::new();
        let mut w = 0;
        while let Some(c) = wf.next_chunk(w % p) {
            out.push((w % p, c));
            w += 1;
        }
        out
    }

    #[test]
    fn paper_section3_example_first_stage() {
        // §3.1's worked example: I = 1000, p = 4, relative powers
        // 1/2, 1/2, 1, 2 → first stage of 500 iterations split as
        // 62.5, 62.5, 125, 250 per unit... the paper quotes 75, 75,
        // 125, 250 (a typo: those sum to 525; weights 1/2:1/2:1:2 over
        // 500 give 62.5 62.5 125 250). We assert the arithmetic split.
        let mut wf = WeightedFactoring::new(1000, &[0.5, 0.5, 1.0, 2.0]);
        let c: Vec<u64> = (0..4).map(|j| wf.next_chunk(j).unwrap().len).collect();
        // Each request rounds independently (62.5 → 63), so the stage
        // hands out 501 of the nominal 500; later stages absorb it.
        assert_eq!(c, vec![63, 63, 125, 250]);
        assert_eq!(c.iter().sum::<u64>(), 501);
    }

    #[test]
    fn equal_weights_reduce_to_fss_shape() {
        let mut wf = WeightedFactoring::new(1000, &[1.0; 4]);
        let first_stage: Vec<u64> = (0..4).map(|j| wf.next_chunk(j).unwrap().len).collect();
        assert_eq!(first_stage, vec![125, 125, 125, 125]);
        // Stage 2: R_1 = 500, share = 500/2/4 = 62.5 → rounds to 63.
        let second: Vec<u64> = (0..4).map(|j| wf.next_chunk(j).unwrap().len).collect();
        assert_eq!(second, vec![63, 63, 63, 63]);
    }

    #[test]
    fn tiles_loop_exactly_round_robin() {
        let mut wf = WeightedFactoring::new(10_000, &[1.0, 2.0, 3.0]);
        let chunks: Vec<Chunk> = drain(&mut wf).into_iter().map(|(_, c)| c).collect();
        validate_tiling(&chunks, 10_000).unwrap();
    }

    #[test]
    fn faster_worker_gets_proportionally_more() {
        let mut wf = WeightedFactoring::new(100_000, &[1.0, 3.0]);
        let mut totals = [0u64; 2];
        for (w, c) in drain(&mut wf) {
            totals[w] += c.len;
        }
        let ratio = totals[1] as f64 / totals[0] as f64;
        assert!((2.0..4.0).contains(&ratio), "ratio {ratio} not ≈ 3");
    }

    #[test]
    fn stage_geometry_independent_of_request_order() {
        // Worker 0 rushes ahead three stages before worker 1 starts;
        // both must see the same R_k-derived chunk sizes as in the
        // round-robin order.
        let mut eager = WeightedFactoring::new(1000, &[1.0, 1.0]);
        let e: Vec<u64> = (0..3).map(|_| eager.next_chunk(0).unwrap().len).collect();

        let mut rr = WeightedFactoring::new(1000, &[1.0, 1.0]);
        let mut rr_sizes_w0 = Vec::new();
        for _ in 0..3 {
            rr_sizes_w0.push(rr.next_chunk(0).unwrap().len);
            rr.next_chunk(1).unwrap();
        }
        assert_eq!(e, rr_sizes_w0);
    }

    #[test]
    fn exhaustion_returns_none_for_everyone() {
        let mut wf = WeightedFactoring::new(10, &[1.0, 1.0]);
        while wf.next_chunk(0).is_some() {}
        assert!(wf.next_chunk(1).is_none());
        assert_eq!(wf.remaining(), 0);
    }

    #[test]
    #[should_panic]
    fn unknown_worker_panics() {
        let mut wf = WeightedFactoring::new(10, &[1.0]);
        wf.next_chunk(3);
    }

    #[test]
    #[should_panic]
    fn zero_weight_rejected() {
        WeightedFactoring::new(10, &[1.0, 0.0]);
    }
}
