//! Fixed-increase self-scheduling (`FISS`, Philip & Das 1997).

use super::ChunkSizer;

/// Fixed-increase self-scheduling: chunk sizes *increase* linearly over
/// a fixed number of stages `σ`, each stage assigning one chunk to each
/// of the `p` PEs:
///
/// ```text
/// C_0 = ⌊I / (X·p)⌋,   C_{k+1} = C_k + B,
/// B   = 2I(1 - σ/X) / (p·σ·(σ-1))
/// ```
///
/// `X` is a compiler/user parameter; the authors suggest `X = σ + 2`,
/// which this implementation defaults to. The rationale (§2.2): earlier
/// adaptive schemes assign chunks that are too *small* at the end,
/// inflating communication; FISS instead starts small and grows.
///
/// The increment `B` is kept as an exact real and the `k`-th stage size
/// computed as `round(C_0 + k·B)` — accumulated rounding, which is what
/// reproduces the paper's Table 1 row `50 83 117` (a pre-truncated
/// integer `B = 33` would give `50 83 116` and strand iterations).
/// Should rounding leave iterations after the σ-th stage, the linear
/// growth simply continues until the dispenser exhausts the loop.
#[derive(Debug, Clone)]
pub struct FixedIncreaseSelfSched {
    p: u32,
    sigma: u32,
    x: u32,
    c0: u64,
    bump: f64,
    stage: u32,
    in_stage: u32,
}

impl FixedIncreaseSelfSched {
    /// FISS with `σ` stages and the suggested `X = σ + 2`.
    pub fn new(total: u64, p: u32, sigma: u32) -> Self {
        Self::with_x(total, p, sigma, sigma + 2)
    }

    /// FISS with explicit `σ` and `X` parameters.
    pub fn with_x(total: u64, p: u32, sigma: u32, x: u32) -> Self {
        assert!(p >= 1, "need at least one PE");
        assert!(sigma >= 2, "FISS needs at least two stages (σ ≥ 2)");
        assert!(x > sigma, "X must exceed σ for a positive increment");
        let c0 = (total / (x as u64 * p as u64)).max(1);
        let bump = 2.0 * total as f64 * (1.0 - sigma as f64 / x as f64)
            / (p as f64 * sigma as f64 * (sigma as f64 - 1.0));
        FixedIncreaseSelfSched {
            p,
            sigma,
            x,
            c0,
            bump,
            stage: 0,
            in_stage: 0,
        }
    }

    /// The initial per-PE chunk size `C_0`.
    pub fn initial_chunk(&self) -> u64 {
        self.c0
    }

    /// The exact (real-valued) per-stage increment `B`.
    pub fn bump(&self) -> f64 {
        self.bump
    }

    /// Number of planned stages `σ`.
    pub fn stages(&self) -> u32 {
        self.sigma
    }

    /// The `X` parameter.
    pub fn x(&self) -> u32 {
        self.x
    }

    fn stage_chunk(&self, stage: u32) -> u64 {
        (self.c0 as f64 + stage as f64 * self.bump).round() as u64
    }
}

impl ChunkSizer for FixedIncreaseSelfSched {
    fn next_chunk_size(&mut self, _remaining: u64) -> u64 {
        let c = self.stage_chunk(self.stage).max(1);
        self.in_stage += 1;
        if self.in_stage == self.p {
            self.in_stage = 0;
            self.stage += 1;
        }
        c
    }

    fn name(&self) -> &'static str {
        "FISS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{validate_tiling, Chunk, ChunkDispenser};

    #[test]
    fn table1_fiss_row() {
        // Paper Table 1, I = 1000, p = 4, σ = 3 (X = 5):
        // 50 50 50 50 83 83 83 83 117 117 117 117
        let sizes = ChunkDispenser::new(1000, FixedIncreaseSelfSched::new(1000, 4, 3)).into_sizes();
        let mut expected = Vec::new();
        for &s in &[50u64, 83, 117] {
            expected.extend(std::iter::repeat_n(s, 4));
        }
        assert_eq!(sizes, expected);
        assert_eq!(sizes.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn table1_fiss_parameters() {
        let fiss = FixedIncreaseSelfSched::new(1000, 4, 3);
        assert_eq!(fiss.initial_chunk(), 50);
        assert_eq!(fiss.x(), 5);
        // B = 2·1000·(1 - 3/5) / (4·3·2) = 800/24 = 33.33…
        assert!((fiss.bump() - 800.0 / 24.0).abs() < 1e-9);
    }

    #[test]
    fn chunk_sizes_never_decrease() {
        let sizes =
            ChunkDispenser::new(50_000, FixedIncreaseSelfSched::new(50_000, 8, 4)).into_sizes();
        assert!(sizes.windows(2).all(|w| w[0] <= w[1] || w[1] == *sizes.last().unwrap()));
    }

    #[test]
    fn stage_width_is_p() {
        let sizes = ChunkDispenser::new(1000, FixedIncreaseSelfSched::new(1000, 4, 3)).into_sizes();
        for stage in sizes.chunks(4).take(2) {
            assert!(stage.windows(2).all(|w| w[0] == w[1]));
        }
    }

    #[test]
    fn growth_continues_past_sigma_when_rounding_leaves_work() {
        // Pick parameters where p·Σ C_k < I so extra stages are needed.
        let total = 997u64;
        let chunks: Vec<Chunk> =
            ChunkDispenser::new(total, FixedIncreaseSelfSched::new(total, 3, 3)).collect();
        validate_tiling(&chunks, total).unwrap();
    }

    #[test]
    fn tiny_loops_terminate() {
        for total in 1..=20u64 {
            let chunks: Vec<Chunk> =
                ChunkDispenser::new(total, FixedIncreaseSelfSched::new(total, 4, 3)).collect();
            validate_tiling(&chunks, total).unwrap();
        }
    }

    #[test]
    #[should_panic]
    fn sigma_one_rejected() {
        FixedIncreaseSelfSched::new(1000, 4, 1);
    }

    #[test]
    #[should_panic]
    fn x_not_exceeding_sigma_rejected() {
        FixedIncreaseSelfSched::with_x(1000, 4, 3, 3);
    }
}
