//! Static scheduling (`S` in Table 1): one equal block per PE.

use super::{div_ceil, ChunkSizer};

/// Static scheduling: divides the `I` iterations into exactly `p`
/// near-equal blocks (`⌈I/p⌉` each, the last clamped).
///
/// Not adaptive at all — it is the zero-communication baseline the
/// paper's Table 1 labels `S` (`250 250 250 250` for `I = 1000`,
/// `p = 4`). Chunk proposals after the `p`-th are zero (the loop should
/// be exhausted by then; if not, the dispenser's clamp hands out
/// singleton chunks so progress is still guaranteed).
#[derive(Debug, Clone)]
pub struct StaticSched {
    chunk: u64,
    handed: u32,
    p: u32,
}

impl StaticSched {
    /// Creates static scheduling for `total` iterations on `p` PEs.
    pub fn new(total: u64, p: u32) -> Self {
        assert!(p >= 1, "need at least one PE");
        StaticSched {
            chunk: div_ceil(total, p as u64),
            handed: 0,
            p,
        }
    }
}

impl ChunkSizer for StaticSched {
    fn next_chunk_size(&mut self, _remaining: u64) -> u64 {
        if self.handed >= self.p {
            return 0; // formula exhausted; dispenser clamps to 1 if work remains
        }
        self.handed += 1;
        self.chunk
    }

    fn name(&self) -> &'static str {
        "S"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chunk::{validate_tiling, Chunk, ChunkDispenser};

    #[test]
    fn table1_static_row() {
        // Paper Table 1: I = 1000, p = 4 → 250 250 250 250.
        let sizes = ChunkDispenser::new(1000, StaticSched::new(1000, 4)).into_sizes();
        assert_eq!(sizes, vec![250, 250, 250, 250]);
    }

    #[test]
    fn uneven_division_clamps_tail() {
        let sizes = ChunkDispenser::new(10, StaticSched::new(10, 4)).into_sizes();
        assert_eq!(sizes, vec![3, 3, 3, 1]);
        assert_eq!(sizes.iter().sum::<u64>(), 10);
    }

    #[test]
    fn single_pe_gets_everything() {
        let sizes = ChunkDispenser::new(7, StaticSched::new(7, 1)).into_sizes();
        assert_eq!(sizes, vec![7]);
    }

    #[test]
    fn more_pes_than_iterations() {
        let chunks: Vec<Chunk> = ChunkDispenser::new(3, StaticSched::new(3, 8)).collect();
        validate_tiling(&chunks, 3).unwrap();
        assert!(chunks.iter().all(|c| c.len == 1));
    }

    #[test]
    #[should_panic]
    fn zero_pes_rejected() {
        StaticSched::new(10, 0);
    }
}
