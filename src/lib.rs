//! # loop-self-scheduling
//!
//! A Rust reproduction of *"A Class of Loop Self-Scheduling for
//! Heterogeneous Clusters"* (Chronopoulos, Andonie, Benche, Grosu —
//! IEEE CLUSTER 2001): every simple self-scheduling scheme the paper
//! reviews (CSS, GSS, TSS, FSS, FISS), its new **TFSS** scheme, the
//! ACP-based distributed schemes (DTSS, DFSS, DFISS, DTFSS), the
//! tree-scheduling and weighted-factoring baselines, a discrete-event
//! heterogeneous-cluster simulator, a real threaded master–worker
//! runtime, the Mandelbrot workload, and harnesses regenerating every
//! table and figure of the paper.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! - [`lss_core`] (re-exported as `core`) — the schemes and master logic,
//! - [`lss_workloads`] — Mandelbrot, loop styles, kernels, sampling,
//! - [`lss_sim`] — the cluster simulator,
//! - [`lss_runtime`] — real threads + channels/TCP transport,
//! - [`lss_metrics`] — breakdowns, speedups, tables, plots.
//!
//! ## Quickstart
//!
//! ```
//! use loop_self_scheduling::prelude::*;
//! use std::sync::Arc;
//!
//! // Schedule an irregular Mandelbrot loop (small window to keep
//! // doctests quick) on an emulated 1-fast + 2-slow cluster, with the
//! // paper's new TFSS scheme.
//! let workload = Arc::new(Mandelbrot::new(MandelbrotParams::paper_domain(64, 64)));
//! let cfg = HarnessConfig::paper_mix(SchemeKind::Tfss, 1, 2);
//! let out = run_scheduled_loop(&cfg, workload);
//! assert_eq!(out.results.len(), 64); // one result per column
//! ```

pub use lss_core as core;
pub use lss_metrics as metrics;
pub use lss_runtime as runtime;
pub use lss_scenario as scenario;
pub use lss_sim as sim;
pub use lss_trace as trace;
pub use lss_workloads as workloads;

/// The common imports for applications.
pub mod prelude {
    pub use lss_core::chunk::{Chunk, ChunkDispenser};
    pub use lss_core::distributed::{DistKind, DistributedScheduler, Grant};
    pub use lss_core::fault::{
        ChaosRng, DisconnectPlan, FaultPlan, LeaseConfig, NetFaults,
    };
    pub use lss_core::master::{Assignment, Master, MasterConfig, SchemeKind};
    pub use lss_core::power::{Acp, AcpConfig, VirtualPower};
    pub use lss_core::scheme::{
        ChunkSelfSched, ChunkSizer, FactoringSelfSched, FixedIncreaseSelfSched, GuidedSelfSched,
        PureSelfSched, StaticSched, TrapezoidFactoringSelfSched, TrapezoidSelfSched,
        WeightedFactoring,
    };
    pub use lss_core::tree::TreeScheduler;
    pub use lss_metrics::breakdown::{RunReport, TimeBreakdown};
    pub use lss_metrics::fault::{FaultEvent, FaultKind, FaultLog};
    pub use lss_metrics::speedup::SpeedupSeries;
    pub use lss_runtime::backoff::BackoffPolicy;
    pub use lss_runtime::harness::{
        run_scheduled_loop, HarnessConfig, HarnessOutcome, Transport, WorkerSpec,
    };
    pub use lss_runtime::load::LoadState;
    pub use lss_scenario::{
        run_sweep, validate_sweep_json, CompiledScenario, Scenario, ScenarioError, SweepReport,
        SweepSpec,
    };
    pub use lss_sim::{
        simulate, simulate_traced, simulate_tree, ClusterSpec, LoadTrace, SimConfig, SimTime,
        TreeSimConfig, UnsupportedKnob,
    };
    pub use lss_trace::{
        breakdowns, critical_path, gantt, idle_gaps, imbalance, render_gantt, to_chrome_json,
        to_prometheus_text, validate_chrome_trace, ClockDomain, EventKind as TraceEventKind,
        SharedSink, Trace, TraceEvent, TraceSink,
    };
    pub use lss_workloads::{
        sampled_order, Mandelbrot, MandelbrotParams, SampledWorkload, SortedWorkload,
        SyntheticWorkload, UniformLoop, Workload,
    };
}
