//! Property-based invariants of the chunk-lifecycle trace: whatever
//! the scheme, the transport (simulator, in-process channels, or TCP)
//! and the fault plan, every recorded trace tells a well-formed story —
//! no chunk starts before it was granted, every iteration reaches
//! exactly one effective completion, and first-result-wins dedup fires
//! only once a duplicate was actually possible (a speculative, requeued
//! or retransmitted grant, or a second grant of the same interval).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use loop_self_scheduling::prelude::*;
use loop_self_scheduling::trace::ChunkRef;
use proptest::prelude::*;

/// The paper's scheme families: the five reviewed simple schemes, the
/// new TFSS, weighted factoring, and the four distributed variants.
fn all_schemes() -> Vec<SchemeKind> {
    vec![
        SchemeKind::Css { k: 7 },
        SchemeKind::Gss { min_chunk: 1 },
        SchemeKind::Tss,
        SchemeKind::Fss,
        SchemeKind::Fiss { sigma: 3 },
        SchemeKind::Tfss,
        SchemeKind::Wf,
        SchemeKind::Dtss,
        SchemeKind::Dfss,
        SchemeKind::Dfiss { sigma: 3 },
        SchemeKind::Dtfss,
    ]
}

fn attributed(ev: &TraceEvent) -> Result<(usize, ChunkRef), String> {
    match (ev.worker, ev.chunk) {
        (Some(w), Some(c)) => Ok((w, c)),
        _ => Err(format!("lifecycle event missing attribution: {ev}")),
    }
}

/// Replays the event stream in time order and checks the lifecycle
/// grammar. `chaos = false` additionally demands the strict healthy-run
/// form: one grant, one start, one completion per interval and no
/// fault-recovery events at all.
fn check_lifecycle(trace: &Trace, chaos: bool) -> Result<(), String> {
    let total = trace.meta.total_iterations;
    let mut planned: HashSet<ChunkRef> = HashSet::new();
    let mut granted_pairs: HashSet<(usize, ChunkRef)> = HashSet::new();
    let mut grants: HashMap<ChunkRef, u32> = HashMap::new();
    let mut dup_possible: HashSet<ChunkRef> = HashSet::new();
    let mut started_pairs: HashSet<(usize, ChunkRef)> = HashSet::new();
    let mut completed: HashMap<ChunkRef, u32> = HashMap::new();
    let mut lapsed: HashSet<ChunkRef> = HashSet::new();
    let mut connected: HashSet<usize> = HashSet::new();
    let mut last_at = 0u64;
    for ev in trace.events() {
        if ev.at_ns < last_at {
            return Err(format!("events not time-ordered at {ev}"));
        }
        last_at = ev.at_ns;
        match ev.kind {
            TraceEventKind::Planned => {
                let c = ev.chunk.ok_or_else(|| format!("plan without chunk: {ev}"))?;
                if c.len == 0 || c.start + c.len > total {
                    return Err(format!("planned chunk out of bounds: {ev}"));
                }
                planned.insert(c);
            }
            TraceEventKind::Granted { speculative, requeued, retransmit } => {
                let (w, c) = attributed(ev)?;
                if !(speculative || requeued || retransmit || planned.contains(&c)) {
                    return Err(format!("fresh grant of an unplanned chunk: {ev}"));
                }
                let n = grants.entry(c).or_insert(0);
                *n += 1;
                if speculative || requeued || retransmit || *n >= 2 {
                    dup_possible.insert(c);
                }
                granted_pairs.insert((w, c));
            }
            TraceEventKind::Started => {
                let (w, c) = attributed(ev)?;
                if !granted_pairs.contains(&(w, c)) {
                    return Err(format!("started before any grant to this worker: {ev}"));
                }
                if !connected.contains(&w) {
                    return Err(format!("started on a never-connected worker: {ev}"));
                }
                started_pairs.insert((w, c));
            }
            TraceEventKind::Completed => {
                let (w, c) = attributed(ev)?;
                if !started_pairs.contains(&(w, c)) {
                    return Err(format!("completed without a start: {ev}"));
                }
                *completed.entry(c).or_insert(0) += 1;
            }
            TraceEventKind::Deduped => {
                let c = ev.chunk.ok_or_else(|| format!("dedup without chunk: {ev}"))?;
                // A duplicate result needs either a duplicate grant
                // (speculation, requeue, retransmit, second grant) or a
                // duplicate delivery of an interval already computed.
                if !dup_possible.contains(&c) && completed.get(&c).copied().unwrap_or(0) == 0 {
                    return Err(format!(
                        "dedup of a chunk granted and completed at most once: {ev}"
                    ));
                }
            }
            TraceEventKind::Lapsed => {
                let (_, c) = attributed(ev)?;
                lapsed.insert(c);
            }
            TraceEventKind::Requeued => {
                let (_, c) = attributed(ev)?;
                if !lapsed.contains(&c) {
                    return Err(format!("requeued without a lease lapse: {ev}"));
                }
            }
            TraceEventKind::WorkerConnected => {
                connected.insert(ev.worker.ok_or_else(|| format!("anonymous connect: {ev}"))?);
            }
            _ => {}
        }
    }
    let mut cover = vec![0u32; total as usize];
    for (c, n) in &completed {
        for i in c.start..c.start + c.len {
            cover[i as usize] += n;
        }
    }
    for (i, &n) in cover.iter().enumerate() {
        if n == 0 {
            return Err(format!("iteration {i} never completed"));
        }
        if !chaos && n != 1 {
            return Err(format!("iteration {i} completed {n} times in a healthy run"));
        }
    }
    if !chaos {
        for (label, count) in [
            ("deduped", trace.count_kind(|k| matches!(k, TraceEventKind::Deduped))),
            ("lapsed", trace.count_kind(|k| matches!(k, TraceEventKind::Lapsed))),
            ("requeued", trace.count_kind(|k| matches!(k, TraceEventKind::Requeued))),
            (
                "speculative grant",
                trace.count_kind(
                    |k| matches!(k, TraceEventKind::Granted { speculative: true, .. }),
                ),
            ),
        ] {
            if count != 0 {
                return Err(format!("healthy run recorded {count} {label} event(s)"));
            }
        }
    }
    Ok(())
}

/// An irregular loop body derived from the proptest seed.
fn irregular(total: u64, seed: u64) -> SyntheticWorkload {
    SyntheticWorkload::new(
        (0..total)
            .map(|i| 5_000 + (i.wrapping_mul(seed | 1).wrapping_mul(0x9E37_79B9)) % 45_000)
            .collect(),
    )
}

/// Decodes a fault plan from an arbitrary integer, as in
/// `fault_invariants.rs`: healthy, crash, hang, or a lossy link.
fn decode_plan(code: u64) -> FaultPlan {
    match code % 4 {
        0 => FaultPlan::healthy(),
        1 => FaultPlan::crash_after((code / 4) % 3),
        2 => FaultPlan::hang_after((code / 4) % 3),
        _ => FaultPlan::healthy()
            .with_net(NetFaults { drop_prob: 0.25, dup_prob: 0.25, delay_ticks: 0 })
            .with_seed(code),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Healthy simulator runs produce the strict lifecycle for every
    /// scheme family, cluster shape and load condition.
    #[test]
    fn sim_lifecycles_are_well_formed(
        total in 1u64..600,
        fast in 1usize..3,
        slow in 1usize..4,
        nondedicated in 0u8..2,
        seed in 0u64..1_000,
    ) {
        let workload = irregular(total, seed);
        let p = fast + slow;
        let mut loads = vec![LoadTrace::dedicated(); p];
        if nondedicated == 1 {
            loads[0] = LoadTrace::paper_overloaded();
        }
        for scheme in all_schemes() {
            let cfg = SimConfig::new(ClusterSpec::paper_mix(fast, slow), scheme)
                .with_jitter(SimTime::from_millis(5), seed);
            let (report, _spans, trace) = simulate_traced(&cfg, &workload, &loads);
            prop_assert_eq!(trace.dropped, 0);
            prop_assert_eq!(&trace.meta.scheme, scheme.name());
            prop_assert!(matches!(trace.meta.clock, ClockDomain::Logical));
            if let Err(e) = check_lifecycle(&trace, false) {
                prop_assert!(false, "{}: {e}", scheme.name());
            }
            // The trace also reconciles with the engine's accounting.
            let derived = TimeBreakdown::all_from_trace(&trace);
            for (d, r) in derived.iter().zip(&report.per_pe) {
                prop_assert_eq!(d.t_wait, r.t_wait);
            }
        }
    }

    /// Chaos runs (crashes, hangs, lossy links) may lapse, requeue,
    /// speculate and dedup — but only in grammar order, and every
    /// iteration still completes at least once.
    #[test]
    fn chaos_sim_lifecycles_stay_well_formed(
        total in 1u64..400,
        codes in prop::collection::vec(0u64..10_000, 1..4),
        seed in 0u64..500,
    ) {
        // Worker 0 is always healthy so completion stays reachable.
        let mut plans = vec![FaultPlan::healthy()];
        plans.extend(codes.iter().map(|&c| decode_plan(c)));
        let p = plans.len();
        let workload = irregular(total, seed);
        let loads = vec![LoadTrace::dedicated(); p];
        for scheme in all_schemes() {
            let cfg = SimConfig::new(ClusterSpec::paper_mix(1, p - 1), scheme)
                .with_faults(plans.clone());
            let (_report, _spans, trace) = simulate_traced(&cfg, &workload, &loads);
            if let Err(e) = check_lifecycle(&trace, true) {
                prop_assert!(false, "{}: {e}", scheme.name());
            }
        }
    }
}

proptest! {
    // Real threads are costlier than simulated ones: fewer cases, and
    // the scheme is drawn as an index instead of looping over all 11.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The threaded runtime emits the same well-formed lifecycle over
    /// both transports — in-process channels and framed TCP.
    #[test]
    fn runtime_lifecycles_are_well_formed_on_both_transports(
        total in 40u64..200,
        scheme_ix in 0usize..11,
        unit in 5_000u64..40_000,
    ) {
        let scheme = all_schemes()[scheme_ix];
        for transport in [Transport::Channels, Transport::Tcp] {
            let mut cfg = HarnessConfig::paper_mix(scheme, 1, 2).traced();
            cfg.transport = transport;
            let workload = Arc::new(UniformLoop::new(total, unit));
            let out = run_scheduled_loop(&cfg, workload);
            prop_assert_eq!(out.results.len() as u64, total);
            let trace = out.trace.expect("tracing was enabled");
            prop_assert!(matches!(trace.meta.clock, ClockDomain::Monotonic));
            if let Err(e) = check_lifecycle(&trace, false) {
                prop_assert!(false, "{} over {transport:?}: {e}", scheme.name());
            }
        }
    }
}
