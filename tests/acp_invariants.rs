//! Exhaustive invariants of the §5.2 fractional-ACP fix and regression
//! tests for the re-planning trigger.
//!
//! The certifier in `lss-verify` proves these properties as part of
//! `lss verify --all`; this tier-1 test keeps a compact copy in the
//! default test suite so a regression is caught by `cargo test` alone.

use lss_core::distributed::{DistKind, DistributedScheduler, Grant};
use lss_core::power::{Acp, AcpConfig, VirtualPower};

const Q_MAX: u32 = 32;

/// Integer virtual powers: the ×10 fix is *exact*, `A = ⌊10·V/Q⌋`,
/// for every `V, Q` in `1..=32` — no float-boundary surprises.
#[test]
fn scaled_acp_exact_on_integer_powers() {
    let cfg = AcpConfig::PAPER;
    for v in 1..=Q_MAX as u64 {
        for q in 1..=Q_MAX {
            let a = cfg.acp(VirtualPower::new(v as f64), q);
            assert_eq!(
                a,
                Acp((10 * v as u32) / q),
                "V={v}, Q={q}: expected floor(10V/Q)"
            );
        }
    }
}

/// The whole point of the fix: any PE with `10·V > Q` keeps a nonzero
/// share, while the original integer rule starves every PE with
/// `V < Q`. Checked over a tenths grid `V = t/10` (strict inequalities
/// only — at `10·V == Q` the float division may land either side of
/// the integer boundary, which the paper's model does not specify).
#[test]
fn scaled_acp_never_collapses_to_zero() {
    let cfg = AcpConfig::PAPER;
    let orig = AcpConfig::ORIGINAL_DTSS;
    for t in 1..=(10 * Q_MAX) {
        let v = VirtualPower::new(t as f64 / 10.0);
        for q in 1..=Q_MAX {
            let fixed = cfg.acp(v, q);
            if t > q {
                assert!(
                    fixed.is_available(),
                    "V={}/10, Q={q}: scaled ACP must stay positive",
                    t
                );
            }
            if t < q {
                assert_eq!(fixed, Acp(0), "V={}/10, Q={q}: share below 0.1", t);
            }
            // Dominance: the scaled rule never reports *less* power
            // than the original starvation-prone rule.
            assert!(
                fixed.get() >= 10 * orig.acp(v, q).get(),
                "V={}/10, Q={q}: scaled rule lost power vs original",
                t
            );
        }
    }
}

/// The `A_min` threshold policy of §5.2(I): below the threshold a PE is
/// reported fully unavailable, at or above it the raw value passes.
#[test]
fn a_min_threshold_gates_availability() {
    for a_min in 1..=12u32 {
        let cfg = AcpConfig::new(10, a_min);
        for v in 1..=8u64 {
            for q in 1..=16u32 {
                let raw = (10 * v as u32) / q;
                let expect = if raw < a_min { Acp(0) } else { Acp(raw) };
                assert_eq!(
                    cfg.acp(VirtualPower::new(v as f64), q),
                    expect,
                    "V={v}, Q={q}, A_min={a_min}"
                );
            }
        }
    }
}

fn powers(vs: &[f64]) -> Vec<VirtualPower> {
    vs.iter().map(|&v| VirtualPower::new(v)).collect()
}

/// Drains one grant per worker with the given queue reports; returns
/// how many plans the scheduler has made so far.
fn round(s: &mut DistributedScheduler, queues: &[u32]) -> u32 {
    for (w, &q) in queues.iter().enumerate() {
        match s.request(w, q) {
            Grant::Chunk(_) | Grant::Unavailable | Grant::Finished => {}
        }
    }
    s.plans_made()
}

/// Paper master step 2(c): a load change on *more than half* the
/// workers triggers a re-plan with `I := remaining`.
#[test]
fn replan_triggers_past_half() {
    let mut s = DistributedScheduler::new(
        DistKind::Dtss,
        100_000,
        &powers(&[2.0, 2.0, 2.0, 2.0]),
        &[1, 1, 1, 1],
        AcpConfig::PAPER,
    );
    assert_eq!(s.plans_made(), 1, "construction plans once");
    // 3 of 4 workers (> half) report a doubled queue: must re-plan.
    let plans = round(&mut s, &[2, 2, 2, 1]);
    assert!(plans >= 2, "majority ACP change must trigger a re-plan");
}

/// Exactly half is NOT "more than half": no re-plan.
#[test]
fn replan_not_triggered_at_half() {
    let mut s = DistributedScheduler::new(
        DistKind::Dtss,
        100_000,
        &powers(&[2.0, 2.0, 2.0, 2.0]),
        &[1, 1, 1, 1],
        AcpConfig::PAPER,
    );
    // Workers 0 and 1 change (exactly half); 2 and 3 stay. The check
    // runs on every request, so order matters: put the changed reports
    // last so the count peaks at 2 of 4.
    let plans = round(&mut s, &[1, 1, 2, 2]);
    assert_eq!(plans, 1, "half the workers changing must not re-plan");
}

/// `set_replan_threshold(1.0)` is the ablation baseline: never re-plan,
/// even when every worker's ACP changes.
#[test]
fn replan_disabled_by_threshold_one() {
    let mut s = DistributedScheduler::new(
        DistKind::Dtss,
        100_000,
        &powers(&[2.0, 2.0, 2.0, 2.0]),
        &[1, 1, 1, 1],
        AcpConfig::PAPER,
    );
    s.set_replan_threshold(1.0);
    let plans = round(&mut s, &[4, 4, 4, 4]);
    assert_eq!(plans, 1, "threshold 1.0 must disable re-planning");
}

/// Re-planning must preserve the coverage invariant: with churn on
/// every round, grants still tile `[0, I)` exactly.
#[test]
fn replanning_preserves_exact_coverage() {
    for kind in [DistKind::Dtss, DistKind::Dfss, DistKind::Dtfss] {
        let total = 5_000u64;
        let mut s = DistributedScheduler::new(
            kind,
            total,
            &powers(&[1.0, 3.0, 2.0]),
            &[1, 1, 1],
            AcpConfig::PAPER,
        );
        let mut cursor = 0u64;
        let mut round_no = 0u32;
        loop {
            let mut progressed = false;
            round_no += 1;
            for w in 0..3 {
                // Oscillating load so re-plans keep firing mid-run.
                let q = 1 + (round_no + w as u32) % 3;
                match s.request(w, q) {
                    Grant::Chunk(c) => {
                        assert_eq!(c.start, cursor, "{kind:?}: non-contiguous grant");
                        assert!(c.len >= 1);
                        cursor += c.len;
                        progressed = true;
                    }
                    Grant::Unavailable => {}
                    Grant::Finished => {}
                }
            }
            if s.is_finished() {
                break;
            }
            assert!(progressed, "{kind:?}: no progress with live workers");
        }
        assert_eq!(cursor, total, "{kind:?}: grants must tile [0, I)");
        assert!(s.plans_made() >= 2, "{kind:?}: churn should have re-planned");
    }
}
