//! Invariants of the serve daemon's durable job journal
//! (`lss_serve::journal`):
//!
//! - **Prefix-replay safety** — replaying *any byte prefix* of a
//!   journal log (a SIGKILL can cut the file anywhere) yields the
//!   state of the longest whole-record prefix: torn tails are
//!   discarded, never misparsed, and the result never double-admits a
//!   job id or resurrects a finished job.
//! - **Model equivalence** — a full replay equals a straightforward
//!   fold of the operations: admitted minus finished, completion
//!   bitmaps OR-accumulated.
//! - **Checkpoint idempotence** — compacting at any operation
//!   boundary and then replaying the *entire* log on top (the
//!   crash-between-checkpoint-rename-and-log-truncate window) changes
//!   nothing: checkpoint + full log ≡ plain full replay.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use lss_core::master::SchemeKind;
use lss_core::Chunk;
use lss_runtime::protocol::serve::{JobSpec, WorkloadSpec};
use lss_serve::journal::replay;
use lss_serve::{Journal, JournalConfig, RecoveredState};
use proptest::prelude::*;

/// A generated journal operation, pre-interpretation.
#[derive(Debug, Clone)]
enum Op {
    Admit { iters: u64 },
    Complete { pick: u64, start: u64, len: u64 },
    Finish { pick: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Weighted mix: 3 admit : 5 complete : 1 finish.
    (0u32..9, any::<u64>(), 0u64..260, 1u64..60).prop_map(|(kind, a, start, len)| match kind {
        0..=2 => Op::Admit { iters: a % 200 + 1 },
        3..=7 => Op::Complete { pick: a, start, len },
        _ => Op::Finish { pick: a },
    })
}

fn spec(iters: u64) -> JobSpec {
    JobSpec {
        workload: WorkloadSpec::Uniform { iters, cost: 7 },
        scheme: SchemeKind::Dtss,
        priority: 1,
    }
}

fn unique_tmpdir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "lss-recovery-{tag}-{}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The reference model: what the journal *should* reconstruct.
#[derive(Default)]
struct Model {
    next_job: u64,
    /// (id, iters, completed bitmap) of unfinished jobs, by admission.
    jobs: Vec<(u64, u64, Vec<bool>)>,
}

impl Model {
    fn new() -> Self {
        Model { next_job: 1, jobs: Vec::new() }
    }
}

/// Interprets `ops` through a real `Journal` (writing the log) and the
/// model simultaneously. Returns the model and the log-file byte
/// offset after each applied record.
fn run_ops(journal: &mut Journal, dir: &std::path::Path, ops: &[Op]) -> (Model, Vec<u64>) {
    let log_path = dir.join("journal.log");
    let mut model = Model::new();
    let mut boundaries = vec![0u64];
    for op in ops {
        match *op {
            Op::Admit { iters } => {
                let id = model.next_job;
                journal.append_admit(id, id * 10, &spec(iters)).unwrap();
                model.next_job = id + 1;
                model.jobs.push((id, iters, vec![false; iters as usize]));
            }
            Op::Complete { pick, start, len } => {
                if model.jobs.is_empty() {
                    continue;
                }
                let idx = (pick % model.jobs.len() as u64) as usize;
                let (id, iters) = (model.jobs[idx].0, model.jobs[idx].1);
                journal.append_complete(id, Chunk::new(start, len)).unwrap();
                let bits = &mut model.jobs[idx].2;
                for i in start..(start + len).min(iters) {
                    bits[i as usize] = true;
                }
            }
            Op::Finish { pick } => {
                if model.jobs.is_empty() {
                    continue;
                }
                let id = model.jobs[(pick % model.jobs.len() as u64) as usize].0;
                journal.append_finish(id).unwrap();
                model.jobs.retain(|j| j.0 != id);
            }
        }
        boundaries.push(std::fs::metadata(&log_path).unwrap().len());
    }
    (model, boundaries)
}

fn assert_state_matches_model(state: &RecoveredState, model: &Model) {
    assert_eq!(state.next_job, model.next_job, "next_job diverged from model");
    assert_eq!(state.jobs.len(), model.jobs.len(), "job set diverged from model");
    let mut expect: Vec<_> = model.jobs.iter().collect();
    expect.sort_by_key(|j| j.0);
    for (snap, (id, iters, bits)) in state.jobs.iter().zip(expect) {
        assert_eq!(snap.id, *id);
        assert_eq!(snap.total(), *iters);
        let completed: u64 = bits.iter().filter(|b| **b).count() as u64;
        assert_eq!(
            snap.completed_count(),
            completed,
            "job {id}: bitmap diverged from model"
        );
    }
}

/// `state.jobs` may never contain a duplicate id, and `next_job` must
/// exceed every admitted id.
fn assert_well_formed(state: &RecoveredState) {
    let mut ids: Vec<u64> = state.jobs.iter().map(|j| j.id).collect();
    let n = ids.len();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), n, "replay double-admitted a job id");
    for j in &state.jobs {
        assert!(
            j.id < state.next_job,
            "job {} admitted but next_job is {}",
            j.id,
            state.next_job
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Replay of any *byte* prefix equals replay of the longest whole
    /// record prefix — a torn tail is invisible — and every such state
    /// is well-formed.
    #[test]
    fn any_byte_prefix_replays_to_a_record_boundary(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        cut_seed in any::<u64>(),
    ) {
        let dir = unique_tmpdir("prefix");
        let (mut journal, _) = Journal::open(&JournalConfig::fresh(&dir)).unwrap();
        let (model, boundaries) = run_ops(&mut journal, &dir, &ops);
        drop(journal);
        let log = std::fs::read(dir.join("journal.log")).unwrap();

        // The full replay matches the model fold exactly.
        let full = replay(None, &log);
        assert_well_formed(&full);
        assert_state_matches_model(&full, &model);

        // A handful of arbitrary byte cuts, plus every record boundary.
        let mut cuts: Vec<usize> = boundaries.iter().map(|b| *b as usize).collect();
        for k in 0..8u64 {
            cuts.push((cut_seed.wrapping_mul(k * 2 + 1) % (log.len() as u64 + 1)) as usize);
        }
        for cut in cuts {
            let state = replay(None, &log[..cut]);
            assert_well_formed(&state);
            // The state must equal the replay at the last boundary <= cut.
            let floor = *boundaries
                .iter()
                .filter(|b| **b as usize <= cut)
                .max()
                .unwrap() as usize;
            let expect = replay(None, &log[..floor]);
            prop_assert_eq!(&state, &expect);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Compacting at any operation boundary and replaying the entire
    /// log on top — the crash window between checkpoint-rename and
    /// log-truncate — reconstructs exactly the plain full replay:
    /// folded-in admits dedup, completions OR idempotently, finished
    /// jobs stay finished.
    #[test]
    fn checkpoint_plus_full_log_replays_identically(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        split_pick in any::<u64>(),
    ) {
        let dir = unique_tmpdir("ckpt");
        let (mut journal, _) = Journal::open(&JournalConfig::fresh(&dir)).unwrap();
        let (_, boundaries) = run_ops(&mut journal, &dir, &ops);
        drop(journal);
        let log = std::fs::read(dir.join("journal.log")).unwrap();
        let full = replay(None, &log);

        // State as of a random operation boundary becomes the checkpoint.
        let split = boundaries[(split_pick % boundaries.len() as u64) as usize] as usize;
        let at_split = replay(None, &log[..split]);
        let ckpt_dir = unique_tmpdir("ckpt-img");
        let (mut ckpt_journal, _) = Journal::open(&JournalConfig::fresh(&ckpt_dir)).unwrap();
        ckpt_journal.checkpoint(&at_split).unwrap();
        drop(ckpt_journal);
        let ckpt = std::fs::read(ckpt_dir.join("checkpoint.bin")).unwrap();

        // Crash before truncation: the checkpoint sees the whole log
        // again, already-folded records included.
        let recovered = replay(Some(&ckpt), &log);
        assert_well_formed(&recovered);
        prop_assert_eq!(&recovered, &full);

        // Clean compaction: checkpoint + log suffix also reconstructs.
        let suffix = replay(Some(&ckpt), &log[split..]);
        prop_assert_eq!(&suffix, &full);

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&ckpt_dir);
    }
}
