//! Property-based invariants of the simple self-scheduling schemes.
//!
//! Whatever the loop size, PE count and parameters, every scheme must
//! tile the iteration space exactly (no loss, no overlap, no empty
//! chunks) and respect its published structural properties.

use loop_self_scheduling::prelude::*;
use lss_core::chunk::validate_tiling;
use lss_core::scheme::{
    ChunkSelfSched, ChunkSizer, FactoringSelfSched, FixedIncreaseSelfSched, GuidedSelfSched,
    PureSelfSched, StaticSched, TrapezoidFactoringSelfSched, TrapezoidSelfSched,
};
use proptest::prelude::*;

fn drain<S: ChunkSizer>(total: u64, sizer: S) -> Vec<Chunk> {
    ChunkDispenser::new(total, sizer).collect()
}

proptest! {
    #[test]
    fn static_tiles(total in 0u64..100_000, p in 1u32..64) {
        validate_tiling(&drain(total, StaticSched::new(total, p)), total).unwrap();
    }

    #[test]
    fn pure_tiles(total in 0u64..5_000) {
        validate_tiling(&drain(total, PureSelfSched::new()), total).unwrap();
    }

    #[test]
    fn css_tiles(total in 0u64..100_000, k in 1u64..10_000) {
        validate_tiling(&drain(total, ChunkSelfSched::new(k)), total).unwrap();
    }

    #[test]
    fn gss_tiles_and_decreases(total in 0u64..100_000, p in 1u32..64, k in 1u64..100) {
        let chunks = drain(total, GuidedSelfSched::with_min_chunk(p, k));
        validate_tiling(&chunks, total).unwrap();
        // GSS chunk sizes never increase.
        let sizes: Vec<u64> = chunks.iter().map(|c| c.len).collect();
        prop_assert!(sizes.windows(2).all(|w| w[0] >= w[1]), "sizes {sizes:?}");
    }

    #[test]
    fn tss_tiles_and_decreases(total in 0u64..100_000, p in 1u32..64) {
        let chunks = drain(total, TrapezoidSelfSched::new(total, p));
        validate_tiling(&chunks, total).unwrap();
        let sizes: Vec<u64> = chunks.iter().map(|c| c.len).collect();
        prop_assert!(sizes.windows(2).all(|w| w[0] >= w[1]), "sizes {sizes:?}");
    }

    #[test]
    fn tss_with_bounds_tiles(total in 1u64..100_000, f in 1u64..5_000, l in 1u64..100) {
        let chunks = drain(total, TrapezoidSelfSched::with_bounds(total, f, l));
        validate_tiling(&chunks, total).unwrap();
    }

    #[test]
    fn fss_tiles_with_stage_structure(total in 0u64..100_000, p in 1u32..64) {
        let chunks = drain(total, FactoringSelfSched::new(p));
        validate_tiling(&chunks, total).unwrap();
    }

    #[test]
    fn fss_alpha_tiles(total in 0u64..50_000, p in 1u32..32, alpha in 1.1f64..8.0) {
        let chunks = drain(total, FactoringSelfSched::with_alpha(p, alpha));
        validate_tiling(&chunks, total).unwrap();
    }

    #[test]
    fn fiss_tiles_and_grows(total in 0u64..100_000, p in 1u32..64, sigma in 2u32..10) {
        let chunks = drain(total, FixedIncreaseSelfSched::new(total, p, sigma));
        validate_tiling(&chunks, total).unwrap();
        // Up to the final clamped chunk, sizes never decrease.
        let sizes: Vec<u64> = chunks.iter().map(|c| c.len).collect();
        if sizes.len() > 2 {
            prop_assert!(
                sizes[..sizes.len() - 1].windows(2).all(|w| w[0] <= w[1]),
                "sizes {sizes:?}"
            );
        }
    }

    #[test]
    fn tfss_tiles(total in 0u64..100_000, p in 1u32..64) {
        let chunks = drain(total, TrapezoidFactoringSelfSched::new(total, p));
        validate_tiling(&chunks, total).unwrap();
    }

    #[test]
    fn tfss_stage_sizes_linearly_decrease(total in 100u64..100_000, p in 1u32..32) {
        let tfss = TrapezoidFactoringSelfSched::new(total, p);
        let stages = tfss.stage_chunks();
        // Stage sizes follow TSS's linear decrease: non-increasing, and
        // consecutive differences equal up to rounding of the stage sum.
        prop_assert!(stages.windows(2).all(|w| w[0] >= w[1]), "stages {stages:?}");
    }

    #[test]
    fn tfss_has_no_more_steps_than_fss(total in 1u64..50_000, p in 1u32..32) {
        let tfss = drain(total, TrapezoidFactoringSelfSched::new(total, p)).len();
        let fss = drain(total, FactoringSelfSched::new(p)).len();
        // §4: TFSS was designed for fewer scheduling steps than FSS's
        // geometric halving (ties possible on tiny loops).
        prop_assert!(tfss <= fss + p as usize, "TFSS {tfss} vs FSS {fss}");
    }

    #[test]
    fn master_serves_all_schemes_identically_to_dispenser(
        total in 1u64..20_000,
        p in 1usize..16,
    ) {
        // The Master wrapper must not alter the chunk stream of a
        // simple scheme: compare against a bare dispenser.
        let mut master = Master::new(MasterConfig::homogeneous(SchemeKind::Tfss, total, p));
        let mut from_master = Vec::new();
        let mut w = 0usize;
        loop {
            match master.handle_request(w % p, 1) {
                Assignment::Chunk(c) => from_master.push(c),
                Assignment::Retry => {}
                Assignment::Finished => break,
            }
            w += 1;
        }
        let direct: Vec<Chunk> = ChunkDispenser::new(
            total,
            TrapezoidFactoringSelfSched::new(total, p as u32),
        )
        .collect();
        prop_assert_eq!(from_master, direct);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn weighted_factoring_is_weight_monotone(
        total in 1_000u64..50_000,
        w1 in 1.0f64..4.0,
        w2 in 1.0f64..4.0,
    ) {
        // The heavier worker never ends up with fewer iterations when
        // both drain the loop in strict alternation.
        prop_assume!((w1 - w2).abs() > 0.2);
        let mut wf = WeightedFactoring::new(total, &[w1, w2]);
        let mut got = [0u64; 2];
        let mut turn = 0;
        while let Some(c) = wf.next_chunk(turn % 2) {
            got[turn % 2] += c.len;
            turn += 1;
        }
        prop_assert_eq!(got[0] + got[1], total);
        if w1 > w2 {
            prop_assert!(got[0] >= got[1]);
        } else {
            prop_assert!(got[1] >= got[0]);
        }
    }
}
