//! The paper's headline claims, as executable assertions.
//!
//! These are the qualitative results a reader takes away from the
//! paper; each test reproduces one on the simulated cluster (scaled
//! down enough to run in a test suite).

use loop_self_scheduling::prelude::*;
use lss_sim::cluster::FAST_SPEED;

/// A scaled-down Table 2/3 workload (same domain, S_f = 4).
fn workload() -> SampledWorkload<Mandelbrot> {
    SampledWorkload::new(Mandelbrot::new(MandelbrotParams::paper_domain(800, 400)), 4)
}

fn dedicated() -> Vec<LoadTrace> {
    vec![LoadTrace::dedicated(); 8]
}

fn nondedicated() -> Vec<LoadTrace> {
    let mut t = dedicated();
    t[0] = LoadTrace::paper_overloaded();
    for tr in t.iter_mut().take(6).skip(3) {
        *tr = LoadTrace::paper_overloaded();
    }
    t
}

fn run(scheme: SchemeKind, traces: &[LoadTrace]) -> lss_metrics::RunReport {
    let runs: Vec<_> = (0..3)
        .map(|seed| {
            let cfg = SimConfig::new(ClusterSpec::paper_p8(), scheme)
                .with_jitter(SimTime::from_millis(20), seed);
            simulate(&cfg, &workload(), traces)
        })
        .collect();
    lss_metrics::breakdown::average_reports(&runs)
}

#[test]
fn table1_chunk_sequences_match_paper_digit_for_digit() {
    use lss_core::scheme::*;
    let gss = ChunkDispenser::new(1000, GuidedSelfSched::new(4)).into_sizes();
    assert_eq!(
        gss,
        vec![250, 188, 141, 106, 79, 59, 45, 33, 25, 19, 14, 11, 8, 6, 4, 3, 3, 2, 1, 1, 1, 1]
    );
    let tss = TrapezoidSelfSched::new(1000, 4).formula_sequence();
    assert_eq!(tss, vec![125, 117, 109, 101, 93, 85, 77, 69, 61, 53, 45, 37, 29, 21, 13, 5]);
    let tfss = TrapezoidFactoringSelfSched::new(1000, 4);
    assert_eq!(tfss.stage_chunks(), &[113, 81, 49, 17]);
    let fiss = ChunkDispenser::new(1000, FixedIncreaseSelfSched::new(1000, 4, 3)).into_sizes();
    assert_eq!(fiss[..4], [50; 4]);
    assert_eq!(fiss[4..8], [83; 4]);
    assert_eq!(fiss[8..12], [117; 4]);
}

#[test]
fn distributed_schemes_balance_computation_on_heterogeneous_clusters() {
    // §6.1: "The execution is well-balanced, in terms of the
    // computation times" for the distributed schemes — unlike §5.1's
    // simple schemes.
    let pairs = [
        (SchemeKind::Tss, SchemeKind::Dtss),
        (SchemeKind::Fss, SchemeKind::Dfss),
        (SchemeKind::Fiss { sigma: 4 }, SchemeKind::Dfiss { sigma: 4 }),
        (SchemeKind::Tfss, SchemeKind::Dtfss),
    ];
    for (simple, dist) in pairs {
        let rs = run(simple, &dedicated());
        let rd = run(dist, &dedicated());
        assert!(
            rd.comp_imbalance() < rs.comp_imbalance(),
            "{}: imbalance {:.3} !< {} {:.3}",
            rd.scheme,
            rd.comp_imbalance(),
            rs.scheme,
            rs.comp_imbalance()
        );
    }
}

#[test]
fn distributed_schemes_cut_overhead_and_makespan() {
    // Table 3 vs Table 2: communication/waiting much reduced, T_p lower.
    for (simple, dist) in [
        (SchemeKind::Tss, SchemeKind::Dtss),
        (SchemeKind::Fss, SchemeKind::Dfss),
    ] {
        let rs = run(simple, &dedicated());
        let rd = run(dist, &dedicated());
        assert!(rd.t_p < rs.t_p, "{} {:.1} !< {} {:.1}", rd.scheme, rd.t_p, rs.scheme, rs.t_p);
        assert!(
            rd.total_overhead() < rs.total_overhead(),
            "{} overhead !< {}",
            rd.scheme,
            rs.scheme
        );
    }
}

#[test]
fn nondedicated_load_hurts_simple_more_than_distributed() {
    // The conclusions: the distributed schemes "take into account the
    // computer processing speeds and their actual loads", maintaining
    // balance when loads change.
    let simple_pen = run(SchemeKind::Tfss, &nondedicated()).t_p / run(SchemeKind::Tfss, &dedicated()).t_p;
    let dist_pen = run(SchemeKind::Dtfss, &nondedicated()).t_p / run(SchemeKind::Dtfss, &dedicated()).t_p;
    assert!(
        dist_pen < simple_pen,
        "DTFSS degradation {dist_pen:.2} !< TFSS {simple_pen:.2}"
    );
}

#[test]
fn dtss_is_the_best_distributed_scheme() {
    // §6.1 / Conclusions: "The DTSS ... were the most efficient
    // amongst all the distributed schemes."
    let dtss = run(SchemeKind::Dtss, &dedicated()).t_p;
    for other in [
        SchemeKind::Dfss,
        SchemeKind::Dfiss { sigma: 4 },
        SchemeKind::Dtfss,
    ] {
        let tp = run(other, &dedicated()).t_p;
        assert!(
            dtss <= tp * 1.05,
            "DTSS {dtss:.1} should not lose to {} {tp:.1}",
            other.name()
        );
    }
}

#[test]
fn tss_and_tfss_lead_the_simple_schemes_dedicated() {
    // Table 2 dedicated: "TSS performed best, followed by TFSS."
    let tss = run(SchemeKind::Tss, &dedicated()).t_p;
    let tfss = run(SchemeKind::Tfss, &dedicated()).t_p;
    let fss = run(SchemeKind::Fss, &dedicated()).t_p;
    let fiss = run(SchemeKind::Fiss { sigma: 4 }, &dedicated()).t_p;
    let leaders = tss.min(tfss);
    assert!(
        leaders <= fss * 1.02 && leaders <= fiss * 1.02,
        "TSS {tss:.1}/TFSS {tfss:.1} should lead FSS {fss:.1}, FISS {fiss:.1}"
    );
}

#[test]
fn speedup_respects_the_power_bound() {
    // §6.1: with 3 fast ≈ 3× and 5 slow PEs, S_p ≤ ~4.5 even with zero
    // overhead; the simulation must never exceed the exact bound.
    let w = workload();
    let t1 = lss_sim::engine::sequential_time(&w, FAST_SPEED);
    let bound = (3.0 * 2.65 + 5.0) / 2.65;
    for scheme in [SchemeKind::Dtss, SchemeKind::Tss] {
        let r = simulate(
            &SimConfig::new(ClusterSpec::paper_p8(), scheme),
            &w,
            &dedicated(),
        );
        let sp = t1 / r.t_p;
        assert!(sp <= bound, "{}: S_p {sp:.2} exceeds bound {bound:.2}", scheme.name());
    }
}

#[test]
fn sampling_reorder_computes_the_same_loop() {
    // §2.1: "computing the sampled loops will produce the same result
    // as the original one."
    let base = Mandelbrot::new(MandelbrotParams::paper_domain(100, 80));
    let sampled = SampledWorkload::new(base.clone(), 4);
    let mut original: Vec<u64> = (0..100).map(|i| base.execute(i)).collect();
    let mut reordered: Vec<u64> = (0..100).map(|j| sampled.execute(j)).collect();
    original.sort_unstable();
    reordered.sort_unstable();
    assert_eq!(original, reordered);
}

#[test]
fn original_dtss_rule_starves_where_the_fix_survives() {
    // §5.2(I), end to end through the Master API.
    let cfg = MasterConfig {
        scheme: SchemeKind::Dtss,
        total: 100,
        powers: vec![VirtualPower::new(1.0), VirtualPower::new(3.0)],
        initial_q: vec![2, 4],
        acp: AcpConfig::PAPER,
    };
    let mut m = Master::new(cfg);
    assert!(matches!(m.handle_request(1, 4), Assignment::Chunk(_)));

    let res = std::panic::catch_unwind(|| {
        Master::new(MasterConfig {
            scheme: SchemeKind::Dtss,
            total: 100,
            powers: vec![VirtualPower::new(1.0), VirtualPower::new(3.0)],
            initial_q: vec![2, 4],
            acp: AcpConfig::ORIGINAL_DTSS,
        })
    });
    assert!(res.is_err(), "original integer ACP rule must starve");
}
