//! Property-based invariants of tree scheduling: work conservation
//! under arbitrary interleavings of takes and steals.

use loop_self_scheduling::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn weighted_allocation_tiles(
        total in 0u64..100_000,
        powers in prop::collection::vec(0.5f64..5.0, 1..12),
    ) {
        let vp: Vec<VirtualPower> = powers.iter().map(|&v| VirtualPower::new(v)).collect();
        let t = TreeScheduler::new_weighted(total, &vp);
        let sum: u64 = (0..vp.len()).map(|w| t.remaining(w)).sum();
        prop_assert_eq!(sum, total);
        prop_assert_eq!(t.total_remaining(), total);
    }

    #[test]
    fn random_interleaving_conserves_work(
        total in 1u64..20_000,
        p in 1usize..10,
        grain in 1u64..50,
        seed in 0u64..10_000,
    ) {
        let mut t = TreeScheduler::new_equal(total, p);
        let mut consumed = vec![0u64; p];
        let mut covered = vec![false; total as usize];
        let mut x = seed.wrapping_add(7);
        let mut idle_sweeps = 0;
        while t.total_remaining() > 0 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let w = ((x >> 33) as usize) % p;
            match t.take(w, grain) {
                Some(chunk) => {
                    idle_sweeps = 0;
                    consumed[w] += chunk.len;
                    for i in chunk.iter() {
                        prop_assert!(!covered[i as usize], "iteration {i} computed twice");
                        covered[i as usize] = true;
                    }
                }
                None => {
                    let _ = t.steal(w, 1);
                    idle_sweeps += 1;
                    // Everyone empty except unstealable singletons: let
                    // their owners drain them.
                    if idle_sweeps > 4 * p {
                        for (v, done) in consumed.iter_mut().enumerate() {
                            while let Some(chunk) = t.take(v, grain) {
                                *done += chunk.len;
                                for i in chunk.iter() {
                                    prop_assert!(!covered[i as usize]);
                                    covered[i as usize] = true;
                                }
                            }
                        }
                    }
                }
            }
        }
        prop_assert_eq!(consumed.iter().sum::<u64>(), total);
        prop_assert!(covered.iter().all(|&c| c), "some iteration never computed");
    }

    #[test]
    fn steal_halves_victims(total in 100u64..50_000, p in 2usize..10) {
        let mut t = TreeScheduler::new_equal(total, p);
        // Drain worker 0 then steal once; the victim loses exactly the
        // back half (rounded down to its benefit).
        while t.take(0, 64).is_some() {}
        let before: Vec<u64> = (0..p).map(|w| t.remaining(w)).collect();
        if let Some(steal) = t.steal(0, 1) {
            let after_victim = t.remaining(steal.victim);
            prop_assert_eq!(after_victim, before[steal.victim] / 2);
            prop_assert_eq!(t.remaining(0), before[steal.victim] - before[steal.victim] / 2);
            prop_assert_eq!(steal.moved.len, t.remaining(0));
        }
    }
}
