//! Invariants of the scenario engine and the sweep driver: the
//! committed scenario library stays parseable and faithful, parsing is
//! strict, compilation is deterministic, and sweep artifacts are
//! byte-stable across runs and thread counts.

use std::path::{Path, PathBuf};

use loop_self_scheduling::prelude::*;

fn scenario_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("scenarios")
}

const LIBRARY: &[(&str, usize)] = &[
    ("paper-9.scn", 8),
    ("skewed-nondedicated.scn", 32),
    ("fat-tree-1k.scn", 1024),
    ("churn-10k.scn", 10_000),
];

#[test]
fn committed_library_parses_and_round_trips() {
    for &(file, workers) in LIBRARY {
        let s = Scenario::load(&scenario_dir().join(file))
            .unwrap_or_else(|e| panic!("{file}: {e}"));
        assert_eq!(s.workers(), workers, "{file} worker count drifted");
        // Canonical render must parse back to a structurally identical
        // scenario, and be a fixed point from the second render on.
        let s2 = Scenario::parse(&s.render()).unwrap_or_else(|e| panic!("{file} render: {e}"));
        assert_eq!(s, s2, "{file} does not round-trip");
        assert_eq!(s2.render(), Scenario::parse(&s2.render()).unwrap().render());
    }
}

#[test]
fn paper_scenario_matches_the_builtin_cluster() {
    let s = Scenario::load(&scenario_dir().join("paper-9.scn")).unwrap();
    let compiled = s.compile();
    let builtin = ClusterSpec::paper_mix(3, 5);
    assert_eq!(compiled.cluster.slaves.len(), builtin.slaves.len());
    for (a, b) in compiled.cluster.slaves.iter().zip(&builtin.slaves) {
        assert!((a.speed - b.speed).abs() < 1e-6);
        assert!((a.virtual_power.get() - b.virtual_power.get()).abs() < 1e-9);
        assert!((a.link.bandwidth - b.link.bandwidth).abs() < 1e-6);
        assert_eq!(a.link.latency, b.link.latency);
        assert_eq!(a.segment, b.segment);
    }
    assert_eq!(compiled.cluster.master.service_time, builtin.master.service_time);
    assert!(!compiled.has_faults());
}

#[test]
fn compilation_is_bit_deterministic() {
    for &(file, _) in LIBRARY {
        let s = Scenario::load(&scenario_dir().join(file)).unwrap();
        let (a, b) = (s.compile(), s.compile());
        for (x, y) in a.cluster.slaves.iter().zip(&b.cluster.slaves) {
            assert_eq!(x.speed.to_bits(), y.speed.to_bits(), "{file} speeds drift");
        }
        let plans = |c: &CompiledScenario| -> Vec<(Option<u64>, Option<u64>)> {
            c.faults
                .iter()
                .map(|f| (f.crash_after_chunks, f.hang_after_chunks))
                .collect()
        };
        assert_eq!(plans(&a), plans(&b), "{file} churn membership drifts");
    }
}

#[test]
fn strict_parsing_rejects_typos_and_junk() {
    // A typoed key, with its line number.
    let typo = "name = x\n[group g]\ncount = 2\nspeed = 1e6\nbandwith = 1e6\n";
    match Scenario::parse(typo) {
        Err(ScenarioError::UnknownKey { key, line, .. }) => {
            assert_eq!(key, "bandwith");
            assert_eq!(line, 5);
        }
        other => panic!("expected UnknownKey, got {other:?}"),
    }
    // A misspelled section.
    assert!(matches!(
        Scenario::parse("name = x\n[groups g]\ncount = 1\nspeed = 1e6\n"),
        Err(ScenarioError::UnknownSection { .. })
    ));
    // Not key = value at all.
    assert!(matches!(
        Scenario::parse("name = x\n[group g]\ncount = 1\nspeed = 1e6\nwat\n"),
        Err(ScenarioError::Syntax { line: 5, .. })
    ));
    // A bare number where a duration is needed.
    assert!(matches!(
        Scenario::parse("name = x\n[group g]\ncount = 1\nspeed = 1e6\njoin_at = 5\n"),
        Err(ScenarioError::BadValue { .. })
    ));
    // Loading a missing file reports Io, not a panic.
    assert!(matches!(
        Scenario::load(Path::new("/nonexistent/nope.scn")),
        Err(ScenarioError::Io(_))
    ));
}

#[test]
fn tree_runs_topology_scenarios_but_rejects_churn() {
    let skewed = Scenario::load(&scenario_dir().join("skewed-nondedicated.scn"))
        .unwrap()
        .compile();
    // Segments + load traces are honored by the tree engine.
    assert!(skewed.tree_config(true).is_ok());
    let churny = Scenario::load(&scenario_dir().join("churn-10k.scn")).unwrap().compile();
    match churny.tree_config(false) {
        Err(UnsupportedKnob::Faults { .. }) => {}
        other => panic!("expected UnsupportedKnob::Faults, got {other:?}"),
    }
}

fn tiny_spec() -> SweepSpec {
    let a = Scenario::parse(
        "name = tiny-healthy\nseed = 5\n[group mix]\ncount = 4\nspeed = uniform(1e6, 2e6)\n",
    )
    .unwrap();
    let b = Scenario::parse(
        "name = tiny-churn\nseed = 6\n[group m]\ncount = 4\nspeed = 1.5e6\n\
         [churn]\ngroup = m\nfraction = 0.5\nleave_after_chunks = 2\n",
    )
    .unwrap();
    let mut spec = SweepSpec::new(
        vec!["gss".into(), "fss".into(), "trees".into()],
        vec![a, b],
    );
    spec.iters_per_pe = 20;
    spec.unit_cost = 50_000;
    spec
}

#[test]
fn sweep_json_is_byte_identical_across_runs_and_thread_counts() {
    let mut spec = tiny_spec();
    let first = run_sweep(&spec).unwrap().to_json();
    let second = run_sweep(&spec).unwrap().to_json();
    assert_eq!(first, second, "same spec, different bytes");
    spec.threads = 1;
    let serial = run_sweep(&spec).unwrap().to_json();
    assert_eq!(first, serial, "thread count leaked into the artifact");
    // And the artifact validates: 3 schemes × 2 scenarios = 6 cells,
    // including the tree × churn "unsupported" cell.
    assert_eq!(validate_sweep_json(&first).unwrap(), 6);
}

#[test]
fn sweep_seed_changes_the_artifact_but_not_its_shape() {
    let mut spec = tiny_spec();
    let base = run_sweep(&spec).unwrap().to_json();
    spec.base_seed = 43;
    let other = run_sweep(&spec).unwrap().to_json();
    assert_ne!(base, other, "base seed must reach the cells");
    assert_eq!(validate_sweep_json(&other).unwrap(), 6);
}

#[test]
fn sweep_validation_rejects_corruption() {
    let json = run_sweep(&tiny_spec()).unwrap().to_json();
    assert!(validate_sweep_json("{}").is_err());
    assert!(validate_sweep_json("not json").is_err());
    let truncated = &json[..json.len() / 2];
    assert!(validate_sweep_json(truncated).is_err());
    let wrong_schema = json.replacen("lss-sweep-v1", "lss-sweep-v0", 1);
    assert!(validate_sweep_json(&wrong_schema).is_err());
}

#[test]
fn sweep_markdown_covers_every_cell() {
    let report = run_sweep(&tiny_spec()).unwrap();
    let md = report.to_markdown();
    for scheme in &report.schemes {
        assert!(md.contains(&format!("`{scheme}`")), "missing row for {scheme}");
    }
    for scenario in &report.scenarios {
        assert!(md.contains(scenario.as_str()), "missing column for {scenario}");
    }
    assert!(md.contains("unsupported"), "tree x churn cell should render as unsupported");
}
