//! Consistency between the three execution paths — bare master drain,
//! discrete-event simulation, and the real threaded runtime — plus
//! structural checks on the simulator's accounting.

use std::sync::Arc;

use loop_self_scheduling::prelude::*;

#[test]
fn sim_serves_every_iteration_exactly_once() {
    let w = SyntheticWorkload::new((1..=777).map(|i| i % 97 + 1).collect());
    for scheme in [
        SchemeKind::Tss,
        SchemeKind::Fss,
        SchemeKind::Tfss,
        SchemeKind::Dtss,
        SchemeKind::Dtfss,
    ] {
        let cfg = SimConfig::new(ClusterSpec::paper_mix(2, 3), scheme);
        let r = simulate(&cfg, &w, &vec![LoadTrace::dedicated(); 5]);
        assert_eq!(
            r.iterations.iter().sum::<u64>(),
            777,
            "{} lost/duplicated iterations",
            scheme.name()
        );
    }
}

#[test]
fn sim_and_runtime_agree_on_total_work_distribution_shape() {
    // Both paths must give the fast PE more iterations than the slow
    // one under the same scheme and a heterogeneity ratio of ~2.65/3.
    let w = Arc::new(UniformLoop::new(600, 4_000));
    let runtime_out = run_scheduled_loop(
        &HarnessConfig::paper_mix(SchemeKind::Fss, 1, 1),
        Arc::clone(&w),
    );
    let sim_r = simulate(
        &SimConfig::new(ClusterSpec::paper_mix(1, 1), SchemeKind::Fss),
        w.as_ref(),
        &vec![LoadTrace::dedicated(); 2],
    );
    assert!(runtime_out.report.iterations[0] > runtime_out.report.iterations[1]);
    assert!(sim_r.iterations[0] > sim_r.iterations[1]);
}

#[test]
fn sim_accounting_is_conservative() {
    // For every PE: t_com + t_wait + t_comp ≈ t_p (within event slop),
    // and t_p ≥ the critical path lower bound total_cost / Σ speeds.
    let w = SyntheticWorkload::new(vec![50_000; 500]);
    let cluster = ClusterSpec::paper_p8();
    let agg_speed: f64 = cluster.slaves.iter().map(|s| s.speed).sum();
    let lower_bound = w.total_cost() as f64 / agg_speed;
    let cfg = SimConfig::new(cluster, SchemeKind::Dtss);
    let r = simulate(&cfg, &w, &vec![LoadTrace::dedicated(); 8]);
    assert!(r.t_p >= lower_bound, "t_p {} below physical bound {lower_bound}", r.t_p);
    for (i, b) in r.per_pe.iter().enumerate() {
        let diff = (b.total() - r.t_p).abs();
        assert!(diff < 0.10 * r.t_p + 0.01, "PE{} accounting drift: {} vs {}", i + 1, b.total(), r.t_p);
    }
}

#[test]
fn jitter_changes_details_but_not_totals() {
    let w = SyntheticWorkload::new((1..=500).map(|i| i % 61 + 10).collect());
    let traces = vec![LoadTrace::dedicated(); 8];
    let base = SimConfig::new(ClusterSpec::paper_p8(), SchemeKind::Tfss);
    let a = simulate(&base.clone().with_jitter(SimTime::from_millis(20), 1), &w, &traces);
    let b = simulate(&base.clone().with_jitter(SimTime::from_millis(20), 2), &w, &traces);
    // Different seeds → different chunk races…
    assert_ne!(a.iterations, b.iterations, "jitter seeds should alter races");
    // …but nothing is lost either way.
    assert_eq!(a.iterations.iter().sum::<u64>(), 500);
    assert_eq!(b.iterations.iter().sum::<u64>(), 500);
    // And the same seed reproduces exactly.
    let a2 = simulate(&base.with_jitter(SimTime::from_millis(20), 1), &w, &traces);
    assert_eq!(a.t_p, a2.t_p);
    assert_eq!(a.iterations, a2.iterations);
}

#[test]
fn overloaded_trace_slows_only_its_pe() {
    let w = SyntheticWorkload::new(vec![80_000; 200]);
    let mut traces = vec![LoadTrace::dedicated(); 2];
    traces[1] = LoadTrace::paper_overloaded();
    let cfg = SimConfig::new(ClusterSpec::paper_mix(2, 0), SchemeKind::Css { k: 10 });
    let r = simulate(&cfg, &w, &traces);
    // The loaded PE computes ~3× slower, so it handles far fewer chunks.
    assert!(
        r.iterations[0] > 2 * r.iterations[1],
        "iterations {:?}",
        r.iterations
    );
}

#[test]
fn tree_sim_conserves_iterations_and_results() {
    let w = SyntheticWorkload::with_result_bytes(vec![10_000; 300], 512);
    for weighted in [false, true] {
        let cfg = TreeSimConfig::new(ClusterSpec::paper_p8(), weighted);
        let r = simulate_tree(&cfg, &w, &vec![LoadTrace::dedicated(); 8]);
        assert_eq!(r.iterations.iter().sum::<u64>(), 300);
        let com: f64 = r.per_pe.iter().map(|b| b.t_com).sum();
        assert!(com > 0.0, "result pushes must show up as communication");
    }
}

#[test]
fn master_contention_grows_with_cluster_size() {
    // More slaves → more queueing at the serial master (per-PE wait
    // should not shrink when the cluster doubles and the work scales).
    let mk = |p: usize| {
        let w = SyntheticWorkload::new(vec![20_000; 100 * p]);
        let cfg = SimConfig::new(ClusterSpec::paper_mix(p, 0), SchemeKind::Css { k: 2 });
        let r = simulate(&cfg, &w, &vec![LoadTrace::dedicated(); p]);
        r.scheduling_steps
    };
    // CSS(2) on 100·p iterations: steps scale with the loop, giving the
    // master proportionally more messages to serialize.
    assert!(mk(8) > mk(2));
}

mod sim_properties {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(proptest::test_runner::Config::with_cases(24))]

        /// Whatever the workload, cluster mix, scheme and load pattern,
        /// the simulator conserves iterations and reports consistent
        /// accounting.
        #[test]
        fn simulation_conserves_iterations(
            costs in proptest::collection::vec(1u64..50_000, 1..300),
            fast in 1usize..4,
            slow in 0usize..5,
            scheme_pick in 0usize..6,
            overload in proptest::collection::vec(any::<bool>(), 9),
            seed in 0u64..100,
        ) {
            let p = fast + slow;
            let total = costs.len() as u64;
            let w = SyntheticWorkload::new(costs);
            let scheme = [
                SchemeKind::Tss,
                SchemeKind::Fss,
                SchemeKind::Tfss,
                SchemeKind::Dtss,
                SchemeKind::Dfss,
                SchemeKind::Dtfss,
            ][scheme_pick];
            let traces: Vec<LoadTrace> = (0..p)
                .map(|i| if overload[i] { LoadTrace::paper_overloaded() } else { LoadTrace::dedicated() })
                .collect();
            let cfg = SimConfig::new(ClusterSpec::paper_mix(fast, slow), scheme)
                .with_jitter(SimTime::from_millis(10), seed);
            let r = simulate(&cfg, &w, &traces);
            prop_assert_eq!(r.iterations.iter().sum::<u64>(), total);
            prop_assert!(r.t_p >= 0.0);
            // Accounting: every PE's buckets sum to ~t_p.
            for b in &r.per_pe {
                prop_assert!((b.total() - r.t_p).abs() < 0.12 * r.t_p + 0.01);
            }
        }

        /// Tree scheduling conserves iterations under the same chaos.
        #[test]
        fn tree_simulation_conserves_iterations(
            costs in proptest::collection::vec(1u64..50_000, 1..300),
            fast in 1usize..4,
            slow in 0usize..5,
            weighted in any::<bool>(),
            overload in proptest::collection::vec(any::<bool>(), 9),
        ) {
            let p = fast + slow;
            let total = costs.len() as u64;
            let w = SyntheticWorkload::new(costs);
            let traces: Vec<LoadTrace> = (0..p)
                .map(|i| if overload[i] { LoadTrace::paper_overloaded() } else { LoadTrace::dedicated() })
                .collect();
            let cfg = TreeSimConfig::new(ClusterSpec::paper_mix(fast, slow), weighted);
            let r = simulate_tree(&cfg, &w, &traces);
            prop_assert_eq!(r.iterations.iter().sum::<u64>(), total);
        }
    }
}
