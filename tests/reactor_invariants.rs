//! Cross-backend reactor invariants: the evented transport and serve
//! front end must satisfy the same liveness contracts as the blocking
//! thread-per-connection implementations — connections may churn
//! (disconnect and redial) without losing or duplicating iterations,
//! half-open sockets are cut by the idle deadline instead of parking a
//! thread forever, and shutdown completes even when no connection ever
//! arrives.

use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use loop_self_scheduling::prelude::*;
use lss_runtime::protocol::{Request, WireMsg};
use lss_runtime::transport::evented::evented_listen;
use lss_runtime::transport::frame::{read_frame_blocking, write_frame};
use lss_runtime::transport::tcp::tcp_listen;
use lss_runtime::transport::{Inbound, MasterTransport};
use lss_serve::{
    run_serve_worker, serve_tcp_with, ServeBackend, ServeClient, ServeConfig, ServeWorkerConfig,
    TcpLink,
};

fn verify_results<W: Workload>(out: &lss_runtime::harness::HarnessOutcome, w: &W) {
    assert_eq!(out.results.len(), w.len() as usize);
    for i in 0..w.len() {
        assert_eq!(out.results[i as usize], w.execute(i), "iteration {i}");
    }
}

/// Lease policy tight enough for sub-second chaos: healthy workers are
/// protected by 100 ms heartbeats, so only genuinely silent workers
/// lapse. Speculation is off to keep recovery on the deterministic
/// lease-expiry -> requeue path.
fn chaos_lease() -> LeaseConfig {
    LeaseConfig {
        base_ticks: 400_000_000,
        default_ticks_per_iter: 0,
        grace: 8.0,
        dead_after_ticks: 250_000_000,
        max_speculations: 0,
    }
}

/// Connection churn on the evented runtime transport: half the cluster
/// drops its link mid-run and redials, at staggered moments, while the
/// reactor keeps serving the workers that stayed up. Every iteration
/// must still be computed exactly once.
#[test]
fn evented_transport_survives_connection_churn() {
    let w = Arc::new(Mandelbrot::new(MandelbrotParams::paper_domain(192, 256)));
    // Two slow stable workers keep the loop alive long enough for the
    // four churning workers to drop their links and redial mid-run;
    // downtimes are a few milliseconds so every redial lands while the
    // loop is still running.
    let mut workers = vec![WorkerSpec::slow(); 2];
    for (chunks, down_ticks) in [(1, 1_000_000), (2, 2_000_000), (1, 1_000_000), (1, 3_000_000)] {
        workers.push(WorkerSpec::fast().with_fault(FaultPlan::reconnect_after(chunks, down_ticks)));
    }
    let mut cfg = HarnessConfig::new(SchemeKind::Fss, workers);
    cfg.transport = Transport::TcpEvented;
    cfg.lease = chaos_lease();
    let out = run_scheduled_loop(&cfg, Arc::clone(&w));
    verify_results(&out, w.as_ref());
    assert!(
        out.faults.count(FaultKind::Disconnected) > 0,
        "no disconnect recorded despite four redialling workers:\n{}",
        out.faults.render()
    );
    assert!(
        out.faults.count(FaultKind::Recovered) > 0,
        "no redial recorded:\n{}",
        out.faults.render()
    );
}

/// The full chaos acceptance scenario — crash, hang, redial — on the
/// evented transport, mirroring `eight_worker_chaos_over_tcp`.
#[test]
fn eight_worker_chaos_over_evented_tcp() {
    let w = Arc::new(Mandelbrot::new(MandelbrotParams::paper_domain(96, 64)));
    let mut workers = vec![WorkerSpec::fast(); 5];
    workers.push(WorkerSpec::failing_after(1));
    workers.push(WorkerSpec::fast().with_fault(FaultPlan::hang_after(1)));
    workers.push(WorkerSpec::fast().with_fault(FaultPlan::reconnect_after(1, 150_000_000)));
    let mut cfg = HarnessConfig::new(SchemeKind::Fss, workers);
    cfg.transport = Transport::TcpEvented;
    cfg.lease = chaos_lease();
    let out = run_scheduled_loop(&cfg, Arc::clone(&w));
    verify_results(&out, w.as_ref());
    assert!(out.failed_workers.contains(&5), "crashed worker not reported: {:?}", out.failed_workers);
    assert!(out.failed_workers.contains(&6), "hung worker not reported: {:?}", out.failed_workers);
    assert!(
        out.faults.contains_sequence(&[FaultKind::LeaseExpired, FaultKind::Requeued]),
        "no lease-expiry -> requeue in:\n{}",
        out.faults.render()
    );
    assert_eq!(out.duplicates_dropped, 0, "dedup miscounted a single-copy run");
}

/// Drives the half-open regression against one runtime master: a peer
/// handshakes, then goes silent without FIN or RST. The master must
/// convert the silence into a typed `Disconnected` within the idle
/// deadline instead of parking a reader (or the reactor) forever.
fn assert_half_open_is_cut(addr: SocketAddr, mut master: Box<dyn MasterTransport>, label: &str) {
    let t0 = Instant::now();
    let mut saw_hello = false;
    loop {
        match master.recv_timeout(Duration::from_millis(100)).expect(label) {
            Some(Inbound::Request(_)) => saw_hello = true,
            Some(Inbound::Disconnected(0)) => break,
            Some(other) => panic!("[{label}] unexpected {other:?}"),
            None => assert!(
                t0.elapsed() < Duration::from_secs(3),
                "[{label}] half-open connection at {addr} was not cut by the idle deadline"
            ),
        }
    }
    assert!(saw_hello, "[{label}] handshake never surfaced");
}

/// Half-open regression, blocking TCP and reactor side by side: both
/// runtime masters keep a deadline on every read, so a silent
/// handshaken socket is cut, never parked on.
#[test]
fn half_open_socket_is_cut_on_both_runtime_transports() {
    for backend in ["blocking", "evented"] {
        let (addr, accept): (SocketAddr, Box<dyn FnOnce() -> Box<dyn MasterTransport>>) =
            if backend == "blocking" {
                let h = tcp_listen().expect("listen");
                let addr = h.addr;
                (
                    addr,
                    Box::new(move || {
                        Box::new(
                            h.accept_workers_configured(
                                1,
                                Duration::from_secs(5),
                                Duration::from_millis(300),
                            )
                            .expect("accept"),
                        )
                    }),
                )
            } else {
                let h = evented_listen().expect("listen");
                let addr = h.addr;
                (
                    addr,
                    Box::new(move || {
                        Box::new(
                            h.accept_workers_configured(
                                1,
                                Duration::from_secs(5),
                                Duration::from_millis(300),
                            )
                            .expect("accept"),
                        )
                    }),
                )
            };
        let silent = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("dial");
            let hello = WireMsg::Request(Request { worker: 0, q: 1, result: None }).encode();
            write_frame(&mut s, &hello).expect("hello");
            // Handshaken, now half-open: hold the socket, say nothing.
            std::thread::sleep(Duration::from_secs(3));
            drop(s);
        });
        let master = accept();
        assert_half_open_is_cut(addr, master, backend);
        silent.join().expect("silent peer thread");
    }
}

fn uniform_job(priority: u32, iters: u64) -> lss_runtime::protocol::serve::JobSpec {
    lss_runtime::protocol::serve::JobSpec {
        workload: lss_runtime::protocol::serve::WorkloadSpec::Uniform { iters, cost: 5 },
        scheme: SchemeKind::Dtss,
        priority,
    }
}

/// Half-open regression at the serve layer, against both backends: a
/// worker that handshakes and then sits silent holding a grant must
/// not stall the job. The evented front end cuts the socket on the
/// idle deadline; the blocking front end recovers through chunk-lease
/// expiry. Either way, the healthy worker finishes everything.
#[test]
fn serve_half_open_worker_never_stalls_a_job_on_either_backend() {
    for backend in [ServeBackend::Blocking, ServeBackend::Evented] {
        let mut cfg = ServeConfig::new(2);
        cfg.idle_deadline = Duration::from_millis(400);
        cfg.lease = chaos_lease();
        let handle =
            serve_tcp_with(cfg, "127.0.0.1", 0, backend).expect("serve");
        let addr = handle.addr.expect("tcp service has an address");
        let silent = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("dial");
            let hello = lss_runtime::protocol::serve::ServeFrame::HelloWorker { worker: 1, q: 1 };
            write_frame(&mut s, &hello.encode()).expect("hello");
            let _ = read_frame_blocking(&mut s);
            std::thread::sleep(Duration::from_secs(3));
            drop(s);
        });
        let mut client = ServeClient::connect(addr).expect("client connect");
        client.submit(uniform_job(1, 1200)).expect("submit");
        client.drain().expect("drain");
        drop(client);
        let healthy = std::thread::spawn(move || {
            let mut link = TcpLink::connect(addr).expect("dial service");
            run_serve_worker(&mut link, &ServeWorkerConfig::healthy(0)).expect("worker loop")
        });
        let report = handle.join();
        healthy.join().expect("healthy worker");
        silent.join().expect("silent worker");
        assert_eq!(report.jobs_completed, 1, "{backend:?}");
        assert_eq!(report.jobs[0].completed, report.jobs[0].total, "{backend:?}");
    }
}

/// Shutdown with zero inbound connections, both serve backends: the
/// blocking acceptor is unblocked by the self-connect kick, the
/// reactor by its waker. Neither needs a client to ever dial, and the
/// join proves every front-end thread exited (the listener is gone).
#[test]
fn serve_shutdown_completes_with_zero_inbound_connections_on_either_backend() {
    for backend in [ServeBackend::Blocking, ServeBackend::Evented] {
        let mut cfg = ServeConfig::new(1);
        cfg.exit_after_jobs = Some(0);
        let t0 = Instant::now();
        let handle =
            serve_tcp_with(cfg, "127.0.0.1", 0, backend).expect("serve");
        let addr = handle.addr.expect("tcp service has an address");
        let report = handle.join();
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "{backend:?} shutdown waited for a connection that never came"
        );
        assert_eq!(report.jobs_completed, 0);
        assert!(
            TcpStream::connect(addr).is_err(),
            "{backend:?} listener survived the join"
        );
    }
}
