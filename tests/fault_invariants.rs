//! Property-based invariants of the fault-tolerant master: under
//! arbitrary per-worker fault plans (crashes, hangs, lossy links), as
//! long as one worker stays healthy every iteration in `[0, I)` is
//! computed at least once and accounted exactly once after first-
//! result-wins dedup — across every scheme family of the paper.

use loop_self_scheduling::prelude::*;
use proptest::prelude::*;

/// The paper's scheme families: the five reviewed simple schemes, the
/// new TFSS, weighted factoring, and the four distributed variants.
fn all_schemes() -> Vec<SchemeKind> {
    vec![
        SchemeKind::Css { k: 7 },
        SchemeKind::Gss { min_chunk: 1 },
        SchemeKind::Tss,
        SchemeKind::Fss,
        SchemeKind::Fiss { sigma: 3 },
        SchemeKind::Tfss,
        SchemeKind::Wf,
        SchemeKind::Dtss,
        SchemeKind::Dfss,
        SchemeKind::Dfiss { sigma: 3 },
        SchemeKind::Dtfss,
    ]
}

/// Decodes a fault plan from an arbitrary integer. Roughly a quarter
/// of workers stay healthy; the rest crash, hang, or suffer a lossy
/// link at pseudo-random points.
fn decode_plan(code: u64) -> FaultPlan {
    match code % 4 {
        0 => FaultPlan::healthy(),
        1 => FaultPlan::crash_after((code / 4) % 3),
        2 => FaultPlan::hang_after((code / 4) % 3),
        _ => FaultPlan::healthy()
            .with_net(NetFaults { drop_prob: 0.3, dup_prob: 0.3, delay_ticks: 0 })
            .with_seed(code),
    }
}

#[derive(Clone, Copy, PartialEq)]
enum WState {
    Idle,
    Holding,
    Down,
    Finished,
}

/// Drives the master state machine round-robin in logical ticks: idle
/// workers request, holding workers complete one chunk per round (with
/// drop/dup injection on the result report), crashed and hung workers
/// go permanently silent while still holding their lease. Returns
/// (per-iteration compute counts, newly-accounted total).
fn drive(scheme: SchemeKind, total: u64, plans: &[FaultPlan]) -> (Vec<u32>, u64, Master) {
    let p = plans.len();
    let mut master = Master::new(MasterConfig {
        scheme,
        total,
        powers: vec![VirtualPower::new(1.0); p],
        initial_q: vec![1; p],
        acp: AcpConfig::PAPER,
    });
    master.set_lease_config(LeaseConfig {
        base_ticks: 10,
        default_ticks_per_iter: 1,
        grace: 2.0,
        dead_after_ticks: 5,
        max_speculations: 2,
    });
    let mut rngs: Vec<ChaosRng> = plans
        .iter()
        .enumerate()
        .map(|(i, f)| ChaosRng::new(f.seed ^ (i as u64).wrapping_mul(0x9E37)))
        .collect();
    let mut computed = vec![0u32; total as usize];
    let mut accounted = 0u64;
    let mut state = vec![WState::Idle; p];
    let mut held: Vec<Option<Chunk>> = vec![None; p];
    let mut chunks_done = vec![0u64; p];
    let mut now = 0u64;
    for round in 0..200_000u64 {
        assert!(round < 199_999, "driver livelocked: {scheme:?} total {total}");
        for w in 0..p {
            match state[w] {
                WState::Down | WState::Finished => continue,
                WState::Idle => match master.grant_with_lease(w, 1, now) {
                    Assignment::Chunk(c) => {
                        let plan = &plans[w];
                        if plan.crash_after_chunks == Some(chunks_done[w])
                            || plan.hang_after_chunks == Some(chunks_done[w])
                        {
                            // Vanishes holding the lease; recovery must
                            // come from expiry + requeue.
                            state[w] = WState::Down;
                        } else {
                            held[w] = Some(c);
                            state[w] = WState::Holding;
                        }
                    }
                    Assignment::Retry => {}
                    Assignment::Finished => state[w] = WState::Finished,
                },
                WState::Holding => {
                    let c = held[w].expect("holding without chunk");
                    let plan = &plans[w];
                    if plan.net.drop_prob > 0.0 && rngs[w].chance(plan.net.drop_prob) {
                        // Result lost on the wire; retransmitted next
                        // round (the lease stays held meanwhile).
                        continue;
                    }
                    for i in c.iter() {
                        computed[i as usize] += 1;
                    }
                    accounted += master.record_completion(w, c, now).newly_completed;
                    if plan.net.dup_prob > 0.0 && rngs[w].chance(plan.net.dup_prob) {
                        // Duplicate delivery: must dedup to zero new.
                        let dup = master.record_completion(w, c, now);
                        assert_eq!(dup.newly_completed, 0, "dup double-counted");
                    }
                    chunks_done[w] += 1;
                    held[w] = None;
                    state[w] = WState::Idle;
                }
            }
        }
        now += 3;
        master.poll_leases(now);
        if state
            .iter()
            .all(|s| matches!(s, WState::Down | WState::Finished))
        {
            break;
        }
    }
    (computed, accounted, master)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn faulty_runs_compute_everything_exactly_once(
        total in 0u64..1500,
        codes in prop::collection::vec(0u64..10_000, 0..5),
    ) {
        // Worker 0 is always healthy so completion stays reachable.
        let mut plans = vec![FaultPlan::healthy()];
        plans.extend(codes.iter().map(|&c| decode_plan(c)));
        for scheme in all_schemes() {
            let (computed, accounted, master) = drive(scheme, total, &plans);
            prop_assert!(master.all_complete(), "{}: loop never completed", scheme.name());
            prop_assert_eq!(accounted, total);
            for (i, &n) in computed.iter().enumerate() {
                prop_assert!(n >= 1, "{}: iteration {i} never computed", scheme.name());
            }
        }
    }

    #[test]
    fn all_healthy_runs_never_duplicate_work(
        total in 1u64..1500,
        p in 1usize..6,
    ) {
        let plans = vec![FaultPlan::healthy(); p];
        for scheme in all_schemes() {
            let (computed, accounted, master) = drive(scheme, total, &plans);
            prop_assert!(master.all_complete());
            prop_assert_eq!(accounted, total);
            prop_assert_eq!(master.speculative_grants(), 0);
            for (i, &n) in computed.iter().enumerate() {
                prop_assert!(n == 1, "{}: iteration {i} computed {n} times", scheme.name());
            }
        }
    }
}
