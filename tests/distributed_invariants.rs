//! Property-based invariants of the distributed schemes (DTSS, DFSS,
//! DFISS, DTFSS) under arbitrary heterogeneity and load reports.

use loop_self_scheduling::prelude::*;
use lss_core::chunk::validate_tiling;
use proptest::prelude::*;

fn kinds() -> Vec<DistKind> {
    vec![
        DistKind::Dtss,
        DistKind::Dfss,
        DistKind::Dfiss { sigma: 3 },
        DistKind::Dtfss,
    ]
}

fn powers_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.5f64..5.0, 1..10)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_kind_tiles_under_round_robin(
        total in 0u64..50_000,
        powers in powers_strategy(),
    ) {
        let vp: Vec<VirtualPower> = powers.iter().map(|&v| VirtualPower::new(v)).collect();
        for kind in kinds() {
            let mut s = DistributedScheduler::dedicated(kind, total, &vp, AcpConfig::PAPER);
            let p = vp.len();
            let mut chunks = Vec::new();
            let mut w = 0usize;
            loop {
                match s.request(w % p, 1) {
                    Grant::Chunk(c) => chunks.push(c),
                    Grant::Unavailable => unreachable!("dedicated workers are available"),
                    Grant::Finished => break,
                }
                w += 1;
            }
            validate_tiling(&chunks, total)
                .map_err(|e| TestCaseError::fail(format!("{}: {e}", kind.name())))?;
        }
    }

    #[test]
    fn tiles_under_biased_request_order(
        total in 1u64..20_000,
        powers in powers_strategy(),
        bias in 0usize..5,
    ) {
        // One worker requests `bias + 1` times as often as the others —
        // tiling must survive any interleaving.
        let vp: Vec<VirtualPower> = powers.iter().map(|&v| VirtualPower::new(v)).collect();
        let p = vp.len();
        for kind in kinds() {
            let mut s = DistributedScheduler::dedicated(kind, total, &vp, AcpConfig::PAPER);
            let mut chunks = Vec::new();
            let mut i = 0usize;
            loop {
                let w = if i.is_multiple_of(bias + 2) { 0 } else { i % p };
                match s.request(w, 1) {
                    Grant::Chunk(c) => chunks.push(c),
                    Grant::Unavailable => unreachable!(),
                    Grant::Finished => break,
                }
                i += 1;
            }
            validate_tiling(&chunks, total)
                .map_err(|e| TestCaseError::fail(format!("{}: {e}", kind.name())))?;
        }
    }

    #[test]
    fn tiles_under_fluctuating_load(
        total in 1u64..20_000,
        powers in powers_strategy(),
        seed in 0u64..1_000,
    ) {
        // Run-queue lengths wobble between 1 and 4 per request; the
        // scheduler must still terminate and tile exactly (re-planning
        // included).
        let vp: Vec<VirtualPower> = powers.iter().map(|&v| VirtualPower::new(v)).collect();
        let p = vp.len();
        for kind in kinds() {
            let mut s = DistributedScheduler::dedicated(kind, total, &vp, AcpConfig::PAPER);
            let mut chunks = Vec::new();
            let mut w = 0usize;
            let mut x = seed.wrapping_add(1);
            let mut guard = 0u64;
            loop {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let q = 1 + ((x >> 33) % 4) as u32;
                match s.request(w % p, q) {
                    Grant::Chunk(c) => chunks.push(c),
                    Grant::Unavailable => {}
                    Grant::Finished => break,
                }
                w += 1;
                guard += 1;
                prop_assert!(guard < total * 4 + 10_000, "{} livelocked", kind.name());
            }
            validate_tiling(&chunks, total)
                .map_err(|e| TestCaseError::fail(format!("{}: {e}", kind.name())))?;
        }
    }

    #[test]
    fn share_tracks_power(ratio in 1.5f64..4.0, total in 10_000u64..80_000) {
        // A worker `ratio`× as powerful receives roughly `ratio`× the
        // iterations under every distributed scheme.
        let vp = vec![VirtualPower::new(ratio), VirtualPower::new(1.0)];
        for kind in kinds() {
            let mut s = DistributedScheduler::dedicated(kind, total, &vp, AcpConfig::PAPER);
            let mut got = [0u64; 2];
            let mut w = 0usize;
            loop {
                match s.request(w % 2, 1) {
                    Grant::Chunk(c) => got[w % 2] += c.len,
                    Grant::Unavailable => unreachable!(),
                    Grant::Finished => break,
                }
                w += 1;
            }
            let measured = got[0] as f64 / got[1].max(1) as f64;
            prop_assert!(
                measured > ratio * 0.5 && measured < ratio * 2.2,
                "{}: power ratio {ratio:.2} but share ratio {measured:.2} ({got:?})",
                kind.name()
            );
        }
    }

    #[test]
    fn acp_scaling_never_starves_available_clusters(
        powers in powers_strategy(),
        queues in prop::collection::vec(1u32..6, 1..10),
    ) {
        // With the paper's scale-10 rule, any finite load leaves the
        // cluster schedulable (the §5.2(I) repair, generalized).
        prop_assume!(powers.len() == queues.len());
        let vp: Vec<VirtualPower> = powers.iter().map(|&v| VirtualPower::new(v)).collect();
        let s = DistributedScheduler::new(DistKind::Dtss, 100, &vp, &queues, AcpConfig::PAPER);
        prop_assert!(s.planned_total_acp() > 0);
    }
}

#[test]
fn replanning_preserves_tiling_exactly_at_threshold() {
    // Drive a DTSS master through repeated forced re-plans and verify
    // accounting never drifts.
    let vp = vec![VirtualPower::new(1.0); 4];
    let mut s = DistributedScheduler::dedicated(DistKind::Dtss, 10_000, &vp, AcpConfig::PAPER);
    let mut chunks = Vec::new();
    let mut w = 0usize;
    let mut q = 1u32;
    loop {
        // Every 4 requests, flip everyone's load to force a re-plan.
        if w.is_multiple_of(4) {
            q = if q == 1 { 3 } else { 1 };
        }
        match s.request(w % 4, q) {
            Grant::Chunk(c) => chunks.push(c),
            Grant::Unavailable => {}
            Grant::Finished => break,
        }
        w += 1;
    }
    lss_core::chunk::validate_tiling(&chunks, 10_000).unwrap();
    assert!(s.plans_made() > 2, "expected repeated re-planning");
}
