//! End-to-end tests of the real threaded runtime: every iteration of a
//! real workload is executed exactly once and its result reaches the
//! master, across schemes, transports and live load changes.

use std::sync::Arc;
use std::time::Duration;

use loop_self_scheduling::prelude::*;

fn verify_results<W: Workload>(out: &lss_runtime::harness::HarnessOutcome, w: &W) {
    assert_eq!(out.results.len(), w.len() as usize);
    for i in 0..w.len() {
        assert_eq!(out.results[i as usize], w.execute(i), "iteration {i}");
    }
}

#[test]
fn mandelbrot_over_channels_all_schemes() {
    let w = Arc::new(SampledWorkload::new(
        Mandelbrot::new(MandelbrotParams::paper_domain(80, 60)),
        4,
    ));
    for scheme in [
        SchemeKind::Tss,
        SchemeKind::Fss,
        SchemeKind::Fiss { sigma: 3 },
        SchemeKind::Tfss,
        SchemeKind::Wf,
        SchemeKind::Dtss,
        SchemeKind::Dfss,
        SchemeKind::Dfiss { sigma: 3 },
        SchemeKind::Dtfss,
    ] {
        let cfg = HarnessConfig::paper_mix(scheme, 1, 2);
        let out = run_scheduled_loop(&cfg, Arc::clone(&w));
        verify_results(&out, w.as_ref());
        assert_eq!(
            out.report.iterations.iter().sum::<u64>(),
            80,
            "{} lost iterations",
            scheme.name()
        );
    }
}

#[test]
fn mandelbrot_over_tcp() {
    let w = Arc::new(Mandelbrot::new(MandelbrotParams::paper_domain(60, 40)));
    let mut cfg = HarnessConfig::paper_mix(SchemeKind::Dtss, 2, 1);
    cfg.transport = Transport::Tcp;
    let out = run_scheduled_loop(&cfg, Arc::clone(&w));
    verify_results(&out, w.as_ref());
}

#[test]
fn tcp_and_channels_agree_on_results() {
    let w = Arc::new(SyntheticWorkload::new((1..=64).collect()));
    let mut a = HarnessConfig::paper_mix(SchemeKind::Tfss, 2, 0);
    let b = HarnessConfig::paper_mix(SchemeKind::Tfss, 2, 0);
    a.transport = Transport::Tcp;
    let ra = run_scheduled_loop(&a, Arc::clone(&w));
    let rb = run_scheduled_loop(&b, Arc::clone(&w));
    assert_eq!(ra.results, rb.results);
}

#[test]
fn live_overload_shifts_iterations_away() {
    // Two equal workers; worker 1 becomes heavily loaded immediately.
    // DTSS must give it markedly less work.
    let w = Arc::new(UniformLoop::new(600, 3_000));
    let cfg = HarnessConfig::new(
        SchemeKind::Dtss,
        vec![
            WorkerSpec::fast(),
            WorkerSpec { load: LoadState::with_q(4), ..WorkerSpec::fast() },
        ],
    );
    let out = run_scheduled_loop(&cfg, Arc::clone(&w));
    verify_results(&out, w.as_ref());
    assert!(
        out.report.iterations[0] > out.report.iterations[1],
        "loaded worker should get less: {:?}",
        out.report.iterations
    );
}

#[test]
fn load_change_mid_run_is_survivable_for_every_distributed_scheme() {
    let w = Arc::new(UniformLoop::new(500, 2_000));
    for scheme in [
        SchemeKind::Dtss,
        SchemeKind::Dfss,
        SchemeKind::Dfiss { sigma: 3 },
        SchemeKind::Dtfss,
    ] {
        let cfg = HarnessConfig::paper_mix(scheme, 2, 2);
        let loads: Vec<LoadState> = cfg.workers.iter().map(|w| w.load.clone()).collect();
        let flipper = std::thread::spawn(move || {
            for (i, l) in loads.iter().enumerate() {
                std::thread::sleep(Duration::from_millis(3));
                l.set_q(1 + (i as u32 % 3));
            }
        });
        let out = run_scheduled_loop(&cfg, Arc::clone(&w));
        flipper.join().unwrap();
        verify_results(&out, w.as_ref());
    }
}

#[test]
fn worker_stats_are_populated() {
    let w = Arc::new(UniformLoop::new(200, 5_000));
    let cfg = HarnessConfig::paper_mix(SchemeKind::Fss, 2, 1);
    let out = run_scheduled_loop(&cfg, Arc::clone(&w));
    assert_eq!(out.worker_stats.len(), 3);
    let total_chunks: u64 = out.worker_stats.iter().map(|s| s.chunks).sum();
    assert_eq!(total_chunks, out.report.scheduling_steps);
    for s in &out.worker_stats {
        assert!(s.t_comp > Duration::ZERO || s.iterations == 0);
    }
}

#[test]
fn report_breakdowns_cover_wall_time_reasonably() {
    let w = Arc::new(UniformLoop::new(400, 10_000));
    let cfg = HarnessConfig::paper_mix(SchemeKind::Tss, 2, 2);
    let out = run_scheduled_loop(&cfg, Arc::clone(&w));
    for b in &out.report.per_pe {
        // Each worker's accounted time cannot exceed the wall time by
        // more than scheduling slop.
        assert!(b.total() <= out.report.t_p * 1.5 + 0.05, "{b:?} vs {}", out.report.t_p);
    }
}

#[test]
fn single_worker_cluster_works() {
    let w = Arc::new(SyntheticWorkload::new(vec![5; 40]));
    let cfg = HarnessConfig::paper_mix(SchemeKind::Gss { min_chunk: 1 }, 1, 0);
    let out = run_scheduled_loop(&cfg, Arc::clone(&w));
    verify_results(&out, w.as_ref());
    assert_eq!(out.report.iterations, vec![40]);
}

#[test]
fn empty_workload_is_fine() {
    let w = Arc::new(SyntheticWorkload::new(vec![]));
    let cfg = HarnessConfig::paper_mix(SchemeKind::Tfss, 1, 1);
    let out = run_scheduled_loop(&cfg, Arc::clone(&w));
    assert!(out.results.is_empty());
}

#[test]
fn crashed_worker_does_not_lose_iterations() {
    // Worker 2 dies after its second chunk; the survivors absorb its
    // requeued work and every result still reaches the master.
    let w = Arc::new(UniformLoop::new(400, 3_000));
    let cfg = HarnessConfig::new(
        SchemeKind::Fss,
        vec![
            WorkerSpec::fast(),
            WorkerSpec::slow(),
            WorkerSpec::failing_after(2),
        ],
    );
    let out = run_scheduled_loop(&cfg, Arc::clone(&w));
    assert_eq!(out.failed_workers, vec![2]);
    verify_results(&out, w.as_ref());
}

#[test]
fn multiple_crashes_are_survivable() {
    let w = Arc::new(UniformLoop::new(300, 2_000));
    for scheme in [SchemeKind::Tss, SchemeKind::Dtss, SchemeKind::Tfss] {
        let cfg = HarnessConfig::new(
            scheme,
            vec![
                WorkerSpec::fast(),
                WorkerSpec::failing_after(1),
                WorkerSpec::failing_after(0), // dies on its first chunk
                WorkerSpec::slow(),
            ],
        );
        let out = run_scheduled_loop(&cfg, Arc::clone(&w));
        let mut failed = out.failed_workers.clone();
        failed.sort_unstable();
        assert_eq!(failed, vec![1, 2], "{}", scheme.name());
        verify_results(&out, w.as_ref());
    }
}

#[test]
fn crash_over_tcp_is_survivable() {
    let w = Arc::new(UniformLoop::new(200, 2_000));
    let mut cfg = HarnessConfig::new(
        SchemeKind::Tfss,
        vec![WorkerSpec::fast(), WorkerSpec::failing_after(1)],
    );
    cfg.transport = Transport::Tcp;
    let out = run_scheduled_loop(&cfg, Arc::clone(&w));
    assert_eq!(out.failed_workers, vec![1]);
    verify_results(&out, w.as_ref());
}

/// Lease policy tight enough for sub-second chaos tests: healthy
/// workers are protected by 100 ms heartbeats (which extend a lease to
/// `now + base`), so only genuinely silent workers lapse.
fn chaos_lease() -> LeaseConfig {
    LeaseConfig {
        base_ticks: 400_000_000,
        default_ticks_per_iter: 0,
        grace: 8.0,
        dead_after_ticks: 250_000_000,
        // Keep recovery on the deterministic lease-expiry -> requeue
        // path (speculation has its own unit tests).
        max_speculations: 0,
    }
}

/// The acceptance scenario: an 8-worker cluster computing a real
/// Mandelbrot loop with one worker crashing, one hanging forever, and
/// one dropping its link mid-run and redialling. The loop must finish
/// with every column computed exactly once and the fault log must show
/// the lease-expiry -> requeue -> recovery chain.
fn eight_worker_chaos(transport: Transport) {
    let w = Arc::new(Mandelbrot::new(MandelbrotParams::paper_domain(96, 64)));
    let mut workers = vec![WorkerSpec::fast(); 5];
    workers.push(WorkerSpec::failing_after(1)); // worker 5: crash
    workers.push(WorkerSpec::fast().with_fault(FaultPlan::hang_after(1))); // worker 6: hang
    workers.push(WorkerSpec::fast().with_fault(FaultPlan::reconnect_after(1, 150_000_000))); // worker 7
    let mut cfg = HarnessConfig::new(SchemeKind::Fss, workers);
    cfg.transport = transport;
    cfg.lease = chaos_lease();
    let out = run_scheduled_loop(&cfg, Arc::clone(&w));
    verify_results(&out, w.as_ref());
    assert!(out.failed_workers.contains(&5), "crashed worker not reported: {:?}", out.failed_workers);
    assert!(out.failed_workers.contains(&6), "hung worker not reported: {:?}", out.failed_workers);
    assert!(!out.faults.is_empty(), "no fault events recorded");
    assert!(
        out.faults.contains_sequence(&[FaultKind::LeaseExpired, FaultKind::Requeued]),
        "no lease-expiry -> requeue in:\n{}",
        out.faults.render()
    );
    assert_eq!(out.duplicates_dropped, 0, "dedup miscounted a single-copy run");
}

#[test]
fn eight_worker_chaos_over_channels() {
    eight_worker_chaos(Transport::Channels);
}

#[test]
fn eight_worker_chaos_over_tcp() {
    eight_worker_chaos(Transport::Tcp);
}

#[test]
fn hung_worker_is_detected_and_its_chunk_requeued() {
    let w = Arc::new(UniformLoop::new(300, 3_000));
    let mut cfg = HarnessConfig::new(
        SchemeKind::Tss,
        vec![
            WorkerSpec::fast(),
            WorkerSpec::fast(),
            WorkerSpec::fast().with_fault(FaultPlan::hang_after(0)),
        ],
    );
    cfg.lease = chaos_lease();
    let out = run_scheduled_loop(&cfg, Arc::clone(&w));
    verify_results(&out, w.as_ref());
    assert_eq!(out.failed_workers, vec![2]);
    assert!(
        out.faults.contains_sequence(&[FaultKind::LeaseExpired, FaultKind::Requeued]),
        "{}",
        out.faults.render()
    );
}

#[test]
fn reconnecting_worker_rejoins_and_finishes() {
    // A short outage against a long enough loop that the master is
    // still running when the worker redials.
    let w = Arc::new(UniformLoop::new(1500, 60_000));
    let mut cfg = HarnessConfig::new(
        SchemeKind::Dtss,
        vec![
            WorkerSpec::fast(),
            WorkerSpec::fast().with_fault(FaultPlan::reconnect_after(1, 10_000_000)),
        ],
    );
    cfg.lease = chaos_lease();
    let out = run_scheduled_loop(&cfg, Arc::clone(&w));
    verify_results(&out, w.as_ref());
    let s = &out.worker_stats[1];
    assert!(s.reconnects >= 1, "worker never redialled: {s:?}");
}

#[test]
fn degraded_worker_sheds_load_to_healthy_peers() {
    let w = Arc::new(UniformLoop::new(600, 3_000));
    let cfg = HarnessConfig::new(
        SchemeKind::Fss,
        vec![
            WorkerSpec::fast(),
            WorkerSpec::fast().with_fault(FaultPlan::degrade_after(1, 8)),
        ],
    );
    let out = run_scheduled_loop(&cfg, Arc::clone(&w));
    verify_results(&out, w.as_ref());
    assert!(
        out.report.iterations[0] > out.report.iterations[1],
        "degraded worker kept equal share: {:?}",
        out.report.iterations
    );
}

#[test]
fn lossy_network_does_not_lose_iterations() {
    let w = Arc::new(SyntheticWorkload::new((1..=120).collect()));
    for seed in [1u64, 7, 1234] {
        let mut cfg = HarnessConfig::new(
            SchemeKind::Tfss,
            vec![
                WorkerSpec::fast().with_fault(
                    FaultPlan::healthy()
                        .with_net(NetFaults { drop_prob: 0.3, dup_prob: 0.2, delay_ticks: 1_000_000 })
                        .with_seed(seed),
                ),
                WorkerSpec::fast(),
            ],
        );
        cfg.lease = chaos_lease();
        let out = run_scheduled_loop(&cfg, Arc::clone(&w));
        verify_results(&out, w.as_ref());
    }
}

#[test]
fn chaos_random_crashes_never_lose_work() {
    // Randomized failure injection: any subset of workers (never all)
    // crashes at arbitrary points; as long as one worker survives,
    // every iteration's result must reach the master exactly once.
    let w = Arc::new(SyntheticWorkload::new((0..150).map(|i| i % 11 + 1).collect()));
    let mut rng_state = 0xDEADBEEFu64;
    let mut next = move || {
        rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        rng_state >> 33
    };
    for round in 0..12 {
        let p = 2 + (next() % 4) as usize; // 2..=5 workers
        let survivor = (next() as usize) % p;
        let workers: Vec<WorkerSpec> = (0..p)
            .map(|i| {
                if i == survivor {
                    WorkerSpec::fast()
                } else if next() % 2 == 0 {
                    WorkerSpec::failing_after(next() % 4)
                } else {
                    WorkerSpec::slow()
                }
            })
            .collect();
        let scheme = match next() % 3 {
            0 => SchemeKind::Tss,
            1 => SchemeKind::Fss,
            _ => SchemeKind::Dtfss,
        };
        let cfg = HarnessConfig::new(scheme, workers);
        let out = run_scheduled_loop(&cfg, Arc::clone(&w));
        verify_results(&out, w.as_ref());
        assert!(
            !out.failed_workers.contains(&survivor),
            "round {round}: survivor {survivor} reported failed"
        );
    }
}
