//! Invariants of the multi-job scheduling service (`lss-serve`):
//!
//! - **Per-job exactly-once** — while several jobs share one worker
//!   pool and workers crash or reconnect mid-run, every job's
//!   iteration space is completed in an exact partition: the job's
//!   `Completed` trace events never overlap and their union covers
//!   `[0, total)`. Checked over in-process links and loopback TCP.
//! - **Fair share** — concurrently active jobs receive iterations in
//!   proportion to their priority weights (within 10%).
//! - **Typed admission control** — a full queue refuses submissions
//!   with a reason, never a dropped connection; a legacy (unversioned)
//!   worker dialing the serve port gets a typed rejection frame.

use lss_core::fault::FaultPlan;
use lss_core::master::SchemeKind;
use lss_core::power::AcpConfig;
use lss_runtime::protocol::serve::{JobSpec, JobState, ServeFrame, WorkloadSpec};
use lss_serve::{
    run_serve_worker, serve, serve_tcp, QuarantineConfig, ServeConfig, ServeReport,
    ServeWorkerConfig, TcpLink,
};
use lss_trace::{EventKind, SharedSink, Trace};

fn uniform(priority: u32, iters: u64) -> JobSpec {
    JobSpec {
        workload: WorkloadSpec::Uniform { iters, cost: 40 },
        scheme: SchemeKind::Dtss,
        priority,
    }
}

/// Like [`uniform`] but with a 30× heavier loop body. Release-build
/// iterations at the light cost are so cheap that the quarantine
/// scorer's additive comm slack swallows even a 40× straggler's
/// batch; the heavier body keeps batch times in the regime where the
/// multiplicative slowdown dominates, in both debug and release.
fn uniform_heavy(priority: u32, iters: u64) -> JobSpec {
    JobSpec {
        workload: WorkloadSpec::Uniform { iters, cost: 1200 },
        scheme: SchemeKind::Dtss,
        priority,
    }
}

fn mandelbrot(priority: u32) -> JobSpec {
    JobSpec {
        workload: WorkloadSpec::Mandelbrot { width: 96, height: 64, sf: 8 },
        scheme: SchemeKind::Dtfss,
        priority,
    }
}

/// Proves per-job exactly-once from the job-scoped trace: `Completed`
/// chunk events form an exact partition of `[0, total)`.
fn assert_exactly_once(trace: &Trace, job: u64, total: u64) {
    let mut covered = vec![false; total as usize];
    for ev in trace.for_job(job) {
        if ev.kind != EventKind::Completed {
            continue;
        }
        let c = ev.chunk.unwrap_or_else(|| panic!("job {job}: completed event without chunk"));
        for i in c.start..c.start + c.len {
            assert!(
                i < total,
                "job {job}: completed iteration {i} outside [0, {total})"
            );
            assert!(
                !covered[i as usize],
                "job {job}: iteration {i} completed twice (overlapping chunks)"
            );
            covered[i as usize] = true;
        }
    }
    let missing = covered.iter().filter(|c| !**c).count();
    assert_eq!(missing, 0, "job {job}: {missing} of {total} iterations never completed");
}

/// Checks the full lifecycle trail and the exact partition for every
/// completed job in the report.
fn assert_report_exactly_once(report: &ServeReport) {
    let trace = report.trace.as_ref().expect("tracing was enabled");
    for job in &report.jobs {
        assert_eq!(job.state, JobState::Done, "job {} did not finish", job.job);
        assert_eq!(job.completed, job.total, "job {} progress mismatch", job.job);
        assert_exactly_once(trace, job.job, job.total);
        for kind in [EventKind::JobSubmitted, EventKind::JobAdmitted, EventKind::JobCompleted] {
            assert!(
                trace.for_job(job.job).any(|e| e.kind == kind),
                "job {}: no {kind:?} event in trace",
                job.job
            );
        }
    }
}

fn traced_config(workers: usize) -> ServeConfig {
    let mut cfg = ServeConfig::new(workers);
    cfg.trace = SharedSink::bounded(1 << 17);
    cfg
}

/// In-process chaos: 3 jobs over 8 workers; one worker crashes without
/// reporting its last batch (its chunks must be requeued and finished
/// by the others), exactly-once must hold per job.
#[test]
fn exactly_once_under_crash_local_links() {
    let handle = serve(traced_config(8));
    let workers: Vec<_> = (0..8)
        .map(|w| {
            let mut link = handle.worker_link(w);
            std::thread::spawn(move || {
                let mut cfg = ServeWorkerConfig::healthy(w);
                if w == 2 {
                    cfg.fault = FaultPlan::crash_after(2);
                }
                run_serve_worker(&mut link, &cfg).expect("worker loop failed")
            })
        })
        .collect();
    let mut client = handle.client();
    for (priority, iters) in [(1, 2000), (2, 2000), (4, 2000)] {
        client.submit(uniform(priority, iters)).expect("submit");
    }
    client.drain().expect("drain");
    drop(client);
    let report = handle.join();
    for w in workers {
        w.join().expect("worker thread");
    }
    assert_eq!(report.jobs_completed, 3);
    assert_report_exactly_once(&report);
}

/// Loopback-TCP chaos: 3 jobs over 8 socket workers; one crashes, one
/// disconnects with results pending and redials (re-sending those
/// results, which must dedup). Exactly-once must hold per job.
#[test]
fn exactly_once_under_crash_and_reconnect_tcp() {
    let mut cfg = traced_config(8);
    // Dedup is what's under test. Health scoring stays out of it: a
    // spuriously quarantined worker idles through the canary cooldown,
    // and on a loaded host that can starve the reconnect plan of the
    // two exchanges it needs to fire.
    cfg.quarantine = QuarantineConfig::disabled();
    let handle = serve_tcp(cfg, "127.0.0.1", 0).expect("serve_tcp");
    let addr = handle.addr.expect("tcp service has an address");
    let workers: Vec<_> = (0..8)
        .map(|w| {
            std::thread::spawn(move || {
                let mut link = TcpLink::connect(addr).expect("dial service");
                let mut cfg = ServeWorkerConfig::healthy(w);
                if w == 1 {
                    cfg.fault = FaultPlan::crash_after(2);
                }
                if w == 4 {
                    cfg.fault = FaultPlan::reconnect_after(2, 1_000_000);
                }
                run_serve_worker(&mut link, &cfg).expect("worker loop failed")
            })
        })
        .collect();
    let mut client = lss_serve::ServeClient::connect(addr).expect("client connect");
    // Deep enough that every worker cycles through several grant
    // rounds — with tiny jobs the first threads the OS schedules can
    // drain the queue before worker 4 reaches its disconnect trigger.
    for (priority, iters) in [(1, 20_000), (2, 20_000), (4, 20_000)] {
        client.submit(uniform(priority, iters)).expect("submit");
    }
    client.drain().expect("drain");
    drop(client);
    let report = handle.join();
    let mut reconnects = 0;
    for w in workers {
        reconnects += w.join().expect("worker thread").reconnects;
    }
    assert_eq!(reconnects, 1, "the reconnect plan must actually fire");
    assert_eq!(report.jobs_completed, 3);
    assert_report_exactly_once(&report);
}

/// The acceptance bar: one service, 16 concurrently submitted
/// Mandelbrot jobs over loopback TCP, per-job exactly-once accounting
/// verified from the job-scoped traces.
#[test]
fn sixteen_concurrent_mandelbrot_jobs_over_tcp() {
    let mut cfg = traced_config(8);
    cfg.max_active = 16;
    cfg.queue_capacity = 32;
    let handle = serve_tcp(cfg, "127.0.0.1", 0).expect("serve_tcp");
    let addr = handle.addr.expect("tcp service has an address");
    let workers: Vec<_> = (0..8)
        .map(|w| {
            std::thread::spawn(move || {
                let mut link = TcpLink::connect(addr).expect("dial service");
                run_serve_worker(&mut link, &ServeWorkerConfig::healthy(w))
                    .expect("worker loop failed")
            })
        })
        .collect();
    let mut client = lss_serve::ServeClient::connect(addr).expect("client connect");
    let mut ids = Vec::new();
    for i in 0..16u32 {
        ids.push(client.submit(mandelbrot(1 + i % 4)).expect("submit"));
    }
    assert_eq!(ids.len(), 16);
    client.drain().expect("drain");
    drop(client);
    let report = handle.join();
    for w in workers {
        w.join().expect("worker thread");
    }
    assert_eq!(report.jobs_completed, 16);
    assert_eq!(report.jobs.len(), 16);
    assert_report_exactly_once(&report);
}

/// While jobs of priority 4, 2 and 1 compete for the pool, the
/// snapshot taken when the first job retires must show iteration
/// progress tracking the priority weights within 10%.
#[test]
fn fair_share_tracks_priorities_through_the_service() {
    let mut cfg = traced_config(8);
    // Pool scale divisible by 4+2+1 so integer apportionment is exact.
    cfg.acp = AcpConfig::new(700, 0);
    // This is a proportionality check: a spurious quarantine (8 worker
    // threads time-slicing a loaded host can deschedule one long
    // enough to look degraded) would redistribute the shares mid-run.
    cfg.quarantine = QuarantineConfig::disabled();
    let handle = serve(cfg);
    // Submit before any worker dials in, so all three jobs compete
    // from the first grant — this is a proportionality check, not a
    // head-start race.
    let mut client = handle.client();
    // Large enough that the 4:2:1 shares dominate scheduling jitter —
    // at a few thousand iterations the retirement order is decided by
    // which worker thread the OS runs first, not by the shares.
    let low = client.submit(uniform(1, 40_000)).expect("submit low");
    let mid = client.submit(uniform(2, 40_000)).expect("submit mid");
    let high = client.submit(uniform(4, 40_000)).expect("submit high");
    client.drain().expect("drain");
    drop(client);
    let workers: Vec<_> = (0..8)
        .map(|w| {
            let mut link = handle.worker_link(w);
            std::thread::spawn(move || {
                run_serve_worker(&mut link, &ServeWorkerConfig::healthy(w))
                    .expect("worker loop failed")
            })
        })
        .collect();
    let report = handle.join();
    for w in workers {
        w.join().expect("worker thread");
    }
    assert_eq!(report.jobs_completed, 3);
    let first = report.snapshots.first().expect("a completion snapshot");
    assert_eq!(first.completed_job, high, "highest priority job retires first");
    let progress = |job| {
        first
            .progress
            .iter()
            .find(|p| p.0 == job)
            .map(|p| p.2 as f64)
            .expect("job in snapshot")
    };
    let ratio = progress(mid) / progress(low);
    assert!(
        (ratio - 2.0).abs() / 2.0 < 0.10,
        "2:1 priority pair strayed {ratio:.3} (low={} mid={})",
        progress(low),
        progress(mid),
    );
}

/// A full queue answers `Rejected {{ reason }}`; so do nonsense specs.
#[test]
fn admission_control_is_typed_over_tcp() {
    let mut cfg = ServeConfig::new(2);
    cfg.max_active = 1;
    cfg.queue_capacity = 2;
    let handle = serve_tcp(cfg, "127.0.0.1", 0).expect("serve_tcp");
    let addr = handle.addr.expect("tcp service has an address");
    let mut client = lss_serve::ServeClient::connect(addr).expect("client connect");
    for _ in 0..3 {
        client.submit(uniform(1, 500)).expect("within capacity");
    }
    let err = client.submit(uniform(1, 500)).expect_err("queue full");
    match err {
        lss_serve::ServeError::Rejected(reason) => {
            assert!(reason.contains("queue full"), "reason: {reason}")
        }
        other => panic!("expected a typed rejection, got {other}"),
    }
    // The service survives rejections: attach workers and finish.
    let workers: Vec<_> = (0..2)
        .map(|w| {
            std::thread::spawn(move || {
                let mut link = TcpLink::connect(addr).expect("dial service");
                run_serve_worker(&mut link, &ServeWorkerConfig::healthy(w))
                    .expect("worker loop failed")
            })
        })
        .collect();
    client.drain().expect("drain");
    drop(client);
    let report = handle.join();
    for w in workers {
        w.join().expect("worker thread");
    }
    assert_eq!(report.jobs_completed, 3);
    assert_eq!(report.jobs_rejected, 1);
}

/// A legacy (pre-versioning) worker dialing the serve port must get a
/// typed `Rejected` frame it can decode as "not my protocol" — not a
/// deserialization panic, not a silent hang.
#[test]
fn legacy_worker_is_rejected_with_a_typed_frame() {
    use lss_runtime::protocol::{Request, WireMsg};
    use lss_runtime::transport::frame::{read_frame_blocking, write_frame};

    let mut cfg = ServeConfig::new(1);
    cfg.exit_after_jobs = Some(1);
    let handle = serve_tcp(cfg, "127.0.0.1", 0).expect("serve_tcp");
    let addr = handle.addr.expect("tcp service has an address");

    let mut stream = std::net::TcpStream::connect(addr).expect("legacy dial");
    let legacy = WireMsg::Request(Request { worker: 0, q: 1, result: None });
    write_frame(&mut stream, &legacy.encode()).expect("legacy hello");
    let reply = read_frame_blocking(&mut stream).expect("a reply frame");
    match ServeFrame::decode(&reply) {
        Ok(ServeFrame::Rejected { reason }) => {
            assert!(
                reason.contains("legacy") || reason.contains("version"),
                "reason should name the protocol mismatch: {reason}"
            );
        }
        other => panic!("expected a typed Rejected frame, got {other:?}"),
    }
    // The legacy side's own decoder refuses the frame cleanly too: no
    // panic, just None — the typed failure the versioning layer buys.
    assert_eq!(lss_runtime::protocol::Reply::decode(&reply), None);

    // Unblock the service: one real worker, one real job.
    let worker = std::thread::spawn(move || {
        let mut link = TcpLink::connect(addr).expect("dial service");
        run_serve_worker(&mut link, &ServeWorkerConfig::healthy(0)).expect("worker loop failed")
    });
    let mut client = lss_serve::ServeClient::connect(addr).expect("client connect");
    client.submit(uniform(1, 100)).expect("submit");
    drop(client);
    let report = handle.join();
    worker.join().expect("worker thread");
    assert_eq!(report.jobs_completed, 1);
}

/// The service handle works without any TCP at all — the in-process
/// path the benches use — and reports batched grants: with `k = 4` and
/// 4 concurrent jobs, round trips must be far fewer than chunks.
#[test]
fn batched_grants_reduce_round_trips() {
    let run = |batch_k: usize| -> ServeReport {
        let mut cfg = ServeConfig::new(4);
        cfg.batch_k = batch_k;
        let handle = serve(cfg);
        // All four jobs are live before the first request, so every
        // batch has four jobs' worth of chunks to draw from.
        let mut client = handle.client();
        for _ in 0..4 {
            client.submit(uniform(1, 3000)).expect("submit");
        }
        client.drain().expect("drain");
        drop(client);
        let workers: Vec<_> = (0..4)
            .map(|w| {
                let mut link = handle.worker_link(w);
                std::thread::spawn(move || {
                    run_serve_worker(&mut link, &ServeWorkerConfig::healthy(w))
                        .expect("worker loop failed")
                })
            })
            .collect();
        let report = handle.join();
        for w in workers {
            w.join().expect("worker thread");
        }
        report
    };
    let batched = run(4);
    let serial = run(1);
    assert_eq!(batched.jobs_completed, 4);
    assert_eq!(serial.jobs_completed, 4);
    // Same work, fewer round trips: each batched request can carry up
    // to 4 chunks, so requests-per-grant must drop measurably.
    let batched_rpg = batched.requests_served as f64 / batched.grants_sent as f64;
    let serial_rpg = serial.requests_served as f64 / serial.grants_sent as f64;
    assert!(
        batched_rpg < serial_rpg * 0.7,
        "batching should cut round trips per grant: k=4 {batched_rpg:.2} vs k=1 {serial_rpg:.2}"
    );
}

// ---------------------------------------------------------------------
// Crash recovery, quarantine, and the serve-event grammar (PR 6).
// ---------------------------------------------------------------------

/// The iterations a job's events of `kind` claim, as a bitmap.
fn event_bits(trace: &Trace, job: u64, total: u64, kind: EventKind) -> Vec<bool> {
    let mut bits = vec![false; total as usize];
    for ev in trace.for_job(job) {
        if ev.kind != kind {
            continue;
        }
        let c = ev.chunk.unwrap_or_else(|| panic!("job {job}: {kind:?} event without chunk"));
        for i in c.start..c.start + c.len {
            assert!(i < total, "job {job}: {kind:?} covers iteration {i} outside [0, {total})");
            assert!(
                !bits[i as usize],
                "job {job}: iteration {i} covered by two {kind:?} events"
            );
            bits[i as usize] = true;
        }
    }
    bits
}

/// Grammar of the serving layer's recovery and quarantine events:
/// quarantine/readmit strictly alternate per worker, a job is recovered
/// at most once, recovered-complete seeding happens only for recovered
/// jobs and strictly before any fresh completion of that job.
fn assert_serve_grammar(trace: &Trace, workers: usize) {
    use std::collections::HashSet;
    let mut quarantined = vec![false; workers];
    let mut recovered: HashSet<u64> = HashSet::new();
    let mut freshly_completed: HashSet<u64> = HashSet::new();
    for ev in trace.events() {
        match ev.kind {
            EventKind::WorkerQuarantined => {
                let w = ev.worker.expect("quarantine names a worker");
                assert!(!quarantined[w], "worker {w} quarantined twice without readmission");
                quarantined[w] = true;
            }
            EventKind::WorkerReadmitted => {
                let w = ev.worker.expect("readmission names a worker");
                assert!(quarantined[w], "worker {w} readmitted but never quarantined");
                quarantined[w] = false;
            }
            EventKind::JobRecovered => {
                let j = ev.job.expect("recovery names a job");
                assert!(recovered.insert(j), "job {j} recovered twice in one session");
                assert!(
                    !freshly_completed.contains(&j),
                    "job {j} recovered after it already completed work this session"
                );
            }
            EventKind::RecoveredComplete => {
                let j = ev.job.expect("recovered-complete names a job");
                assert!(
                    recovered.contains(&j),
                    "job {j}: recovered-complete without a job-recovered event"
                );
                assert!(
                    !freshly_completed.contains(&j),
                    "job {j}: bitmap seeding after fresh completions"
                );
            }
            EventKind::Completed => {
                if let Some(j) = ev.job {
                    freshly_completed.insert(j);
                }
            }
            _ => {}
        }
    }
}

/// Exactly-once for a job whose life spans a daemon crash: the
/// restart's `RecoveredComplete` seeding plus its fresh `Completed`
/// events must tile `[0, total)` with no overlap.
fn assert_exactly_once_across_crash(trace: &Trace, job: u64, total: u64) {
    let seeded = event_bits(trace, job, total, EventKind::RecoveredComplete);
    let fresh = event_bits(trace, job, total, EventKind::Completed);
    for i in 0..total as usize {
        assert!(
            !(seeded[i] && fresh[i]),
            "job {job}: iteration {i} both recovered and re-executed (done twice)"
        );
        assert!(
            seeded[i] || fresh[i],
            "job {job}: iteration {i} lost across the crash"
        );
    }
    // Intra-kind overlap (a chunk completed twice post-recovery, or a
    // doubly-seeded range) is rejected inside `event_bits` itself, so
    // the two checks above complete the exact-partition proof.
}

/// SIGKILL-style crash mid-run, restart with `--recover`: all 16 jobs
/// finish, and per job the union of recovered and fresh completions is
/// an exact partition — nothing redone, nothing lost.
fn crash_recovery_roundtrip(tcp: bool) {
    let dir = std::env::temp_dir().join(format!(
        "lss-serve-crash-{}-{}",
        if tcp { "tcp" } else { "local" },
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    const JOBS: u64 = 16;
    const ITERS: u64 = 60_000;
    const WORKERS: usize = 4;

    // ---- session 1: journal fresh, kill mid-run --------------------
    let mut cfg = traced_config(WORKERS);
    cfg.max_active = 8;
    cfg.queue_capacity = 32;
    cfg.journal = Some(lss_serve::JournalConfig::fresh(&dir));
    // Checkpoint often so the kill lands in a checkpoint+log mixture.
    if let Some(j) = &mut cfg.journal {
        j.checkpoint_every = 16;
    }
    let handle = if tcp {
        serve_tcp(cfg, "127.0.0.1", 0).expect("serve_tcp")
    } else {
        serve(cfg)
    };
    let addr = handle.addr;
    let workers1: Vec<_> = (0..WORKERS)
        .map(|w| match addr {
            Some(addr) => std::thread::spawn(move || {
                let mut link = TcpLink::connect(addr).expect("dial service");
                let _ = run_serve_worker(&mut link, &ServeWorkerConfig::healthy(w));
            }),
            None => {
                let mut link = handle.worker_link(w);
                std::thread::spawn(move || {
                    let _ = run_serve_worker(&mut link, &ServeWorkerConfig::healthy(w));
                })
            }
        })
        .collect();
    let mut client = match addr {
        Some(addr) => lss_serve::ServeClient::connect(addr).expect("client connect"),
        None => handle.client(),
    };
    for i in 0..JOBS {
        client.submit(uniform(1 + (i % 4) as u32, ITERS)).expect("submit");
    }
    // Wait for meaningful partial progress, then kill.
    loop {
        let jobs = client.jobs().expect("jobs query");
        let completed: u64 = jobs.iter().map(|j| j.completed).sum();
        if completed >= JOBS * ITERS / 10 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_micros(300));
    }
    drop(client);
    let report1 = handle.kill();
    for w in workers1 {
        let _ = w.join();
    }
    let trace1 = report1.trace.as_ref().expect("session 1 trace");
    let done1: std::collections::HashSet<u64> = report1
        .jobs
        .iter()
        .filter(|j| j.state == JobState::Done)
        .map(|j| j.job)
        .collect();
    assert!(
        done1.len() < JOBS as usize,
        "kill landed too late: all jobs already finished, nothing to recover"
    );

    // ---- session 2: recover and run to completion ------------------
    let mut cfg = traced_config(WORKERS);
    cfg.max_active = 8;
    cfg.queue_capacity = 32;
    cfg.journal = Some(lss_serve::JournalConfig::recover(&dir));
    let handle = if tcp {
        serve_tcp(cfg, "127.0.0.1", 0).expect("serve_tcp recover")
    } else {
        serve(cfg)
    };
    let addr = handle.addr;
    let workers2: Vec<_> = (0..WORKERS)
        .map(|w| match addr {
            Some(addr) => std::thread::spawn(move || {
                let mut link = TcpLink::connect(addr).expect("dial service");
                run_serve_worker(&mut link, &ServeWorkerConfig::healthy(w))
                    .expect("recovered worker loop");
            }),
            None => {
                let mut link = handle.worker_link(w);
                std::thread::spawn(move || {
                    run_serve_worker(&mut link, &ServeWorkerConfig::healthy(w))
                        .expect("recovered worker loop");
                })
            }
        })
        .collect();
    let mut client = match addr {
        Some(addr) => lss_serve::ServeClient::connect(addr).expect("client connect"),
        None => handle.client(),
    };
    client.drain().expect("drain");
    drop(client);
    let report2 = handle.join();
    for w in workers2 {
        w.join().expect("worker thread");
    }
    let trace2 = report2.trace.as_ref().expect("session 2 trace");

    // Every job the crash left unfinished was recovered and finished.
    let recovered: std::collections::HashSet<u64> = trace2
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::JobRecovered)
        .map(|e| e.job.expect("recovery names a job"))
        .collect();
    for id in 1..=JOBS {
        if done1.contains(&id) {
            assert!(
                !recovered.contains(&id),
                "job {id} finished before the crash but was re-admitted"
            );
        } else {
            assert!(recovered.contains(&id), "job {id} was lost across the crash");
        }
    }
    for job in &report2.jobs {
        assert_eq!(job.state, JobState::Done, "job {} did not finish after recovery", job.job);
        assert_eq!(job.completed, job.total);
    }
    assert_eq!(report2.jobs.len(), JOBS as usize - done1.len());

    // Exactly-once across the crash: what session 2 was seeded with is
    // exactly what session 1 completed, and seeded + fresh tiles the
    // iteration space with no overlap.
    for &id in &recovered {
        assert_exactly_once_across_crash(trace2, id, ITERS);
        let seeded = event_bits(trace2, id, ITERS, EventKind::RecoveredComplete);
        let before = event_bits(trace1, id, ITERS, EventKind::Completed);
        assert_eq!(
            seeded, before,
            "job {id}: recovered bitmap diverges from pre-crash completions"
        );
    }
    for &id in &done1 {
        assert_exactly_once(trace1, id, ITERS);
    }
    assert_serve_grammar(trace1, WORKERS);
    assert_serve_grammar(trace2, WORKERS);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn crash_recovery_exactly_once_local_links() {
    crash_recovery_roundtrip(false);
}

#[test]
fn crash_recovery_exactly_once_tcp() {
    crash_recovery_roundtrip(true);
}

/// A worker 40× slower than its peers is quarantined by latency
/// scoring, its held chunks are reclaimed and finished by healthy
/// workers, and every job still completes exactly once.
#[test]
fn degraded_worker_is_quarantined_and_work_reclaimed() {
    let mut cfg = traced_config(4);
    // On a time-sliced host the healthy pool's own median inflates
    // with contention, compressing the observed straggler-to-median
    // ratio well below the configured 40×. A lower factor still
    // clears honest jitter (healthy batches stay within ~3× of the
    // median here), and the deeper strike budget demands two
    // consecutive violating batches — a one-off descheduling spike
    // on a healthy worker resets, the straggler keeps violating.
    cfg.quarantine.latency_factor = 4.0;
    cfg.quarantine.min_samples = 6;
    let sink = cfg.trace.clone();
    let handle = serve(cfg);
    let workers: Vec<_> = (0..4)
        .map(|w| {
            let mut link = handle.worker_link(w);
            std::thread::spawn(move || {
                let mut cfg = ServeWorkerConfig::healthy(w);
                if w == 3 {
                    cfg.slowdown = 40;
                }
                let _ = run_serve_worker(&mut link, &cfg);
            })
        })
        .collect();
    let mut client = handle.client();
    let mut submitted = 0u64;
    for priority in [1, 2, 4] {
        client.submit(uniform_heavy(priority, 10_000)).expect("submit");
        submitted += 1;
    }
    // The straggler's first batch takes hundreds of milliseconds of
    // shared CPU to come back; the healthy pool must still hold work
    // when it does, or the run retires before the batch is ever
    // scored. Feed waves until the quarantine is observed in the live
    // trace (bounded — the asserts below catch a no-show). Wave jobs
    // are sized so the straggler's batches carry a few thousand
    // iterations: big enough that its elapsed time clears the comm
    // slack by a wide margin, small enough not to starve it of the
    // CPU it needs to finish the very batch that convicts it.
    for _ in 0..150 {
        if sink.any(|e| e.kind == EventKind::WorkerQuarantined) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        for priority in [1, 2, 4] {
            if client.submit(uniform_heavy(priority, 4_000)).is_ok() {
                submitted += 1;
            }
        }
    }
    client.drain().expect("drain");
    drop(client);
    let report = handle.join();
    for w in workers {
        let _ = w.join();
    }
    assert_eq!(report.jobs_completed, submitted);
    assert_report_exactly_once(&report);
    let trace = report.trace.as_ref().expect("trace");
    assert!(
        trace
            .events()
            .iter()
            .any(|e| e.kind == EventKind::WorkerQuarantined && e.worker == Some(3)),
        "the degraded worker was never quarantined"
    );
    assert!(
        !trace
            .events()
            .iter()
            .any(|e| e.kind == EventKind::WorkerQuarantined && e.worker != Some(3)),
        "a healthy worker was spuriously quarantined"
    );
    assert_serve_grammar(trace, 4);
}

// ---------------------------------------------------------------------------
// Decoder robustness: arbitrary bytes never panic, only typed errors.
// (The seeded structured fuzzer in `lss-verify` covers the same seams
// at 50k+ inputs; these property tests keep a small arbitrary-input
// net in tier-1.)
// ---------------------------------------------------------------------------

mod decoder_robustness {
    use lss_runtime::protocol::serve::{ServeDecodeError, ServeFrame};
    use lss_serve::journal::{decode_checkpoint, replay};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any byte string fed to the serve frame decoder yields a
        /// frame or a *typed* error — never a panic — and the error
        /// class follows the header bytes.
        #[test]
        fn serve_frame_decode_total_on_arbitrary_bytes(
            bytes in proptest::collection::vec(any::<u8>(), 0..192),
        ) {
            match ServeFrame::decode(&bytes) {
                Ok(frame) => {
                    // A decodable frame re-encodes to *some* canonical
                    // bytes (not necessarily the input: trailing junk
                    // is tolerated), and re-decodes to itself.
                    let canon = frame.encode();
                    prop_assert_eq!(ServeFrame::decode(&canon).unwrap(), frame);
                }
                Err(ServeDecodeError::Legacy) => {
                    prop_assert!(bytes.first().is_some_and(|b| *b != 0xA5));
                }
                Err(ServeDecodeError::Version(v)) => {
                    prop_assert_eq!(bytes.first().copied(), Some(0xA5));
                    prop_assert_eq!(bytes.get(1).copied(), Some(v));
                }
                Err(ServeDecodeError::Malformed) => {}
            }
        }

        /// Any byte string fed to the journal replay path (as log,
        /// checkpoint, or both) yields a well-formed recovered state —
        /// torn tails and corrupt checkpoints degrade, never panic.
        #[test]
        fn journal_replay_total_on_arbitrary_bytes(
            log in proptest::collection::vec(any::<u8>(), 0..256),
            ckpt in proptest::collection::vec(any::<u8>(), 0..128),
        ) {
            prop_assert!(decode_checkpoint(&ckpt).is_none() || !ckpt.is_empty());
            for state in [replay(None, &log), replay(Some(&ckpt), &log)] {
                prop_assert!(state.next_job >= 1);
                let mut prev = None;
                for job in &state.jobs {
                    prop_assert!(prev.is_none_or(|p| p < job.id));
                    prop_assert!(job.id < state.next_job);
                    let total = job.total();
                    prop_assert_eq!(job.words.len() as u64, total.div_ceil(64));
                    prop_assert!(job.completed_count() <= total);
                    prev = Some(job.id);
                }
            }
        }
    }
}
