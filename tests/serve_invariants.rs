//! Invariants of the multi-job scheduling service (`lss-serve`):
//!
//! - **Per-job exactly-once** — while several jobs share one worker
//!   pool and workers crash or reconnect mid-run, every job's
//!   iteration space is completed in an exact partition: the job's
//!   `Completed` trace events never overlap and their union covers
//!   `[0, total)`. Checked over in-process links and loopback TCP.
//! - **Fair share** — concurrently active jobs receive iterations in
//!   proportion to their priority weights (within 10%).
//! - **Typed admission control** — a full queue refuses submissions
//!   with a reason, never a dropped connection; a legacy (unversioned)
//!   worker dialing the serve port gets a typed rejection frame.

use lss_core::fault::FaultPlan;
use lss_core::master::SchemeKind;
use lss_core::power::AcpConfig;
use lss_runtime::protocol::serve::{JobSpec, JobState, ServeFrame, WorkloadSpec};
use lss_serve::{
    run_serve_worker, serve, serve_tcp, ServeConfig, ServeReport, ServeWorkerConfig, TcpLink,
};
use lss_trace::{EventKind, SharedSink, Trace};

fn uniform(priority: u32, iters: u64) -> JobSpec {
    JobSpec {
        workload: WorkloadSpec::Uniform { iters, cost: 40 },
        scheme: SchemeKind::Dtss,
        priority,
    }
}

fn mandelbrot(priority: u32) -> JobSpec {
    JobSpec {
        workload: WorkloadSpec::Mandelbrot { width: 96, height: 64, sf: 8 },
        scheme: SchemeKind::Dtfss,
        priority,
    }
}

/// Proves per-job exactly-once from the job-scoped trace: `Completed`
/// chunk events form an exact partition of `[0, total)`.
fn assert_exactly_once(trace: &Trace, job: u64, total: u64) {
    let mut covered = vec![false; total as usize];
    for ev in trace.for_job(job) {
        if ev.kind != EventKind::Completed {
            continue;
        }
        let c = ev.chunk.unwrap_or_else(|| panic!("job {job}: completed event without chunk"));
        for i in c.start..c.start + c.len {
            assert!(
                i < total,
                "job {job}: completed iteration {i} outside [0, {total})"
            );
            assert!(
                !covered[i as usize],
                "job {job}: iteration {i} completed twice (overlapping chunks)"
            );
            covered[i as usize] = true;
        }
    }
    let missing = covered.iter().filter(|c| !**c).count();
    assert_eq!(missing, 0, "job {job}: {missing} of {total} iterations never completed");
}

/// Checks the full lifecycle trail and the exact partition for every
/// completed job in the report.
fn assert_report_exactly_once(report: &ServeReport) {
    let trace = report.trace.as_ref().expect("tracing was enabled");
    for job in &report.jobs {
        assert_eq!(job.state, JobState::Done, "job {} did not finish", job.job);
        assert_eq!(job.completed, job.total, "job {} progress mismatch", job.job);
        assert_exactly_once(trace, job.job, job.total);
        for kind in [EventKind::JobSubmitted, EventKind::JobAdmitted, EventKind::JobCompleted] {
            assert!(
                trace.for_job(job.job).any(|e| e.kind == kind),
                "job {}: no {kind:?} event in trace",
                job.job
            );
        }
    }
}

fn traced_config(workers: usize) -> ServeConfig {
    let mut cfg = ServeConfig::new(workers);
    cfg.trace = SharedSink::bounded(1 << 17);
    cfg
}

/// In-process chaos: 3 jobs over 8 workers; one worker crashes without
/// reporting its last batch (its chunks must be requeued and finished
/// by the others), exactly-once must hold per job.
#[test]
fn exactly_once_under_crash_local_links() {
    let handle = serve(traced_config(8));
    let workers: Vec<_> = (0..8)
        .map(|w| {
            let mut link = handle.worker_link(w);
            std::thread::spawn(move || {
                let mut cfg = ServeWorkerConfig::healthy(w);
                if w == 2 {
                    cfg.fault = FaultPlan::crash_after(2);
                }
                run_serve_worker(&mut link, &cfg).expect("worker loop failed")
            })
        })
        .collect();
    let mut client = handle.client();
    for (priority, iters) in [(1, 2000), (2, 2000), (4, 2000)] {
        client.submit(uniform(priority, iters)).expect("submit");
    }
    client.drain().expect("drain");
    drop(client);
    let report = handle.join();
    for w in workers {
        w.join().expect("worker thread");
    }
    assert_eq!(report.jobs_completed, 3);
    assert_report_exactly_once(&report);
}

/// Loopback-TCP chaos: 3 jobs over 8 socket workers; one crashes, one
/// disconnects with results pending and redials (re-sending those
/// results, which must dedup). Exactly-once must hold per job.
#[test]
fn exactly_once_under_crash_and_reconnect_tcp() {
    let handle = serve_tcp(traced_config(8), "127.0.0.1", 0).expect("serve_tcp");
    let addr = handle.addr.expect("tcp service has an address");
    let workers: Vec<_> = (0..8)
        .map(|w| {
            std::thread::spawn(move || {
                let mut link = TcpLink::connect(addr).expect("dial service");
                let mut cfg = ServeWorkerConfig::healthy(w);
                if w == 1 {
                    cfg.fault = FaultPlan::crash_after(2);
                }
                if w == 4 {
                    cfg.fault = FaultPlan::reconnect_after(2, 1_000_000);
                }
                run_serve_worker(&mut link, &cfg).expect("worker loop failed")
            })
        })
        .collect();
    let mut client = lss_serve::ServeClient::connect(addr).expect("client connect");
    for (priority, iters) in [(1, 2000), (2, 2000), (4, 2000)] {
        client.submit(uniform(priority, iters)).expect("submit");
    }
    client.drain().expect("drain");
    drop(client);
    let report = handle.join();
    let mut reconnects = 0;
    for w in workers {
        reconnects += w.join().expect("worker thread").reconnects;
    }
    assert_eq!(reconnects, 1, "the reconnect plan must actually fire");
    assert_eq!(report.jobs_completed, 3);
    assert_report_exactly_once(&report);
}

/// The acceptance bar: one service, 16 concurrently submitted
/// Mandelbrot jobs over loopback TCP, per-job exactly-once accounting
/// verified from the job-scoped traces.
#[test]
fn sixteen_concurrent_mandelbrot_jobs_over_tcp() {
    let mut cfg = traced_config(8);
    cfg.max_active = 16;
    cfg.queue_capacity = 32;
    let handle = serve_tcp(cfg, "127.0.0.1", 0).expect("serve_tcp");
    let addr = handle.addr.expect("tcp service has an address");
    let workers: Vec<_> = (0..8)
        .map(|w| {
            std::thread::spawn(move || {
                let mut link = TcpLink::connect(addr).expect("dial service");
                run_serve_worker(&mut link, &ServeWorkerConfig::healthy(w))
                    .expect("worker loop failed")
            })
        })
        .collect();
    let mut client = lss_serve::ServeClient::connect(addr).expect("client connect");
    let mut ids = Vec::new();
    for i in 0..16u32 {
        ids.push(client.submit(mandelbrot(1 + i % 4)).expect("submit"));
    }
    assert_eq!(ids.len(), 16);
    client.drain().expect("drain");
    drop(client);
    let report = handle.join();
    for w in workers {
        w.join().expect("worker thread");
    }
    assert_eq!(report.jobs_completed, 16);
    assert_eq!(report.jobs.len(), 16);
    assert_report_exactly_once(&report);
}

/// While jobs of priority 4, 2 and 1 compete for the pool, the
/// snapshot taken when the first job retires must show iteration
/// progress tracking the priority weights within 10%.
#[test]
fn fair_share_tracks_priorities_through_the_service() {
    let mut cfg = traced_config(8);
    // Pool scale divisible by 4+2+1 so integer apportionment is exact.
    cfg.acp = AcpConfig::new(700, 0);
    let handle = serve(cfg);
    // Submit before any worker dials in, so all three jobs compete
    // from the first grant — this is a proportionality check, not a
    // head-start race.
    let mut client = handle.client();
    let low = client.submit(uniform(1, 8000)).expect("submit low");
    let mid = client.submit(uniform(2, 8000)).expect("submit mid");
    let high = client.submit(uniform(4, 8000)).expect("submit high");
    client.drain().expect("drain");
    drop(client);
    let workers: Vec<_> = (0..8)
        .map(|w| {
            let mut link = handle.worker_link(w);
            std::thread::spawn(move || {
                run_serve_worker(&mut link, &ServeWorkerConfig::healthy(w))
                    .expect("worker loop failed")
            })
        })
        .collect();
    let report = handle.join();
    for w in workers {
        w.join().expect("worker thread");
    }
    assert_eq!(report.jobs_completed, 3);
    let first = report.snapshots.first().expect("a completion snapshot");
    assert_eq!(first.completed_job, high, "highest priority job retires first");
    let progress = |job| {
        first
            .progress
            .iter()
            .find(|p| p.0 == job)
            .map(|p| p.2 as f64)
            .expect("job in snapshot")
    };
    let ratio = progress(mid) / progress(low);
    assert!(
        (ratio - 2.0).abs() / 2.0 < 0.10,
        "2:1 priority pair strayed {ratio:.3} (low={} mid={})",
        progress(low),
        progress(mid),
    );
}

/// A full queue answers `Rejected {{ reason }}`; so do nonsense specs.
#[test]
fn admission_control_is_typed_over_tcp() {
    let mut cfg = ServeConfig::new(2);
    cfg.max_active = 1;
    cfg.queue_capacity = 2;
    let handle = serve_tcp(cfg, "127.0.0.1", 0).expect("serve_tcp");
    let addr = handle.addr.expect("tcp service has an address");
    let mut client = lss_serve::ServeClient::connect(addr).expect("client connect");
    for _ in 0..3 {
        client.submit(uniform(1, 500)).expect("within capacity");
    }
    let err = client.submit(uniform(1, 500)).expect_err("queue full");
    match err {
        lss_serve::ServeError::Rejected(reason) => {
            assert!(reason.contains("queue full"), "reason: {reason}")
        }
        other => panic!("expected a typed rejection, got {other}"),
    }
    // The service survives rejections: attach workers and finish.
    let workers: Vec<_> = (0..2)
        .map(|w| {
            std::thread::spawn(move || {
                let mut link = TcpLink::connect(addr).expect("dial service");
                run_serve_worker(&mut link, &ServeWorkerConfig::healthy(w))
                    .expect("worker loop failed")
            })
        })
        .collect();
    client.drain().expect("drain");
    drop(client);
    let report = handle.join();
    for w in workers {
        w.join().expect("worker thread");
    }
    assert_eq!(report.jobs_completed, 3);
    assert_eq!(report.jobs_rejected, 1);
}

/// A legacy (pre-versioning) worker dialing the serve port must get a
/// typed `Rejected` frame it can decode as "not my protocol" — not a
/// deserialization panic, not a silent hang.
#[test]
fn legacy_worker_is_rejected_with_a_typed_frame() {
    use lss_runtime::protocol::{Request, WireMsg};
    use lss_runtime::transport::frame::{read_frame_blocking, write_frame};

    let mut cfg = ServeConfig::new(1);
    cfg.exit_after_jobs = Some(1);
    let handle = serve_tcp(cfg, "127.0.0.1", 0).expect("serve_tcp");
    let addr = handle.addr.expect("tcp service has an address");

    let mut stream = std::net::TcpStream::connect(addr).expect("legacy dial");
    let legacy = WireMsg::Request(Request { worker: 0, q: 1, result: None });
    write_frame(&mut stream, &legacy.encode()).expect("legacy hello");
    let reply = read_frame_blocking(&mut stream).expect("a reply frame");
    match ServeFrame::decode(&reply) {
        Ok(ServeFrame::Rejected { reason }) => {
            assert!(
                reason.contains("legacy") || reason.contains("version"),
                "reason should name the protocol mismatch: {reason}"
            );
        }
        other => panic!("expected a typed Rejected frame, got {other:?}"),
    }
    // The legacy side's own decoder refuses the frame cleanly too: no
    // panic, just None — the typed failure the versioning layer buys.
    assert_eq!(lss_runtime::protocol::Reply::decode(&reply), None);

    // Unblock the service: one real worker, one real job.
    let worker = std::thread::spawn(move || {
        let mut link = TcpLink::connect(addr).expect("dial service");
        run_serve_worker(&mut link, &ServeWorkerConfig::healthy(0)).expect("worker loop failed")
    });
    let mut client = lss_serve::ServeClient::connect(addr).expect("client connect");
    client.submit(uniform(1, 100)).expect("submit");
    drop(client);
    let report = handle.join();
    worker.join().expect("worker thread");
    assert_eq!(report.jobs_completed, 1);
}

/// The service handle works without any TCP at all — the in-process
/// path the benches use — and reports batched grants: with `k = 4` and
/// 4 concurrent jobs, round trips must be far fewer than chunks.
#[test]
fn batched_grants_reduce_round_trips() {
    let run = |batch_k: usize| -> ServeReport {
        let mut cfg = ServeConfig::new(4);
        cfg.batch_k = batch_k;
        let handle = serve(cfg);
        // All four jobs are live before the first request, so every
        // batch has four jobs' worth of chunks to draw from.
        let mut client = handle.client();
        for _ in 0..4 {
            client.submit(uniform(1, 3000)).expect("submit");
        }
        client.drain().expect("drain");
        drop(client);
        let workers: Vec<_> = (0..4)
            .map(|w| {
                let mut link = handle.worker_link(w);
                std::thread::spawn(move || {
                    run_serve_worker(&mut link, &ServeWorkerConfig::healthy(w))
                        .expect("worker loop failed")
                })
            })
            .collect();
        let report = handle.join();
        for w in workers {
            w.join().expect("worker thread");
        }
        report
    };
    let batched = run(4);
    let serial = run(1);
    assert_eq!(batched.jobs_completed, 4);
    assert_eq!(serial.jobs_completed, 4);
    // Same work, fewer round trips: each batched request can carry up
    // to 4 chunks, so requests-per-grant must drop measurably.
    let batched_rpg = batched.requests_served as f64 / batched.grants_sent as f64;
    let serial_rpg = serial.requests_served as f64 / serial.grants_sent as f64;
    assert!(
        batched_rpg < serial_rpg * 0.7,
        "batching should cut round trips per grant: k=4 {batched_rpg:.2} vs k=1 {serial_rpg:.2}"
    );
}
