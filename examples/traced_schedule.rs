//! Where does the waiting go? GSS vs TFSS, traced.
//!
//! The paper's Tables 2–3 show *that* TFSS beats GSS on a heterogeneous
//! cluster; a trace shows *where*: GSS front-loads huge chunks, so when
//! a slow (or overloaded) PE draws one early, everyone else drains the
//! queue and then idles behind the straggler. TFSS's trapezoid decrease
//! keeps the last chunks small, so the tail packs tightly.
//!
//! This example simulates the same Mandelbrot window under both schemes
//! on the paper's 3-fast + 5-slow cluster, dedicated and non-dedicated,
//! entirely through the tracing subsystem: per-worker Gantt lanes,
//! idle-gap accounting and trace-derived wait totals — then runs TFSS
//! once for real (threads + channels) and writes a Chrome/Perfetto
//! `trace.json` with the identical schema.
//!
//! ```sh
//! cargo run --release --example traced_schedule
//! ```

use std::sync::Arc;

use loop_self_scheduling::prelude::*;

fn wait_profile(trace: &Trace) -> (f64, f64, usize, f64) {
    let waits: Vec<f64> = TimeBreakdown::all_from_trace(trace)
        .iter()
        .map(|b| b.t_wait)
        .collect();
    let gaps = idle_gaps(trace);
    let gap_s = gaps.iter().map(|g| g.dur_ns()).sum::<u64>() as f64 / 1e9;
    (
        waits.iter().sum(),
        waits.iter().cloned().fold(0.0, f64::max),
        gaps.len(),
        gap_s,
    )
}

fn main() {
    let workload = SampledWorkload::new(
        Mandelbrot::new(MandelbrotParams::paper_domain(800, 400)),
        4,
    );

    for nondedicated in [false, true] {
        let condition = if nondedicated { "non-dedicated" } else { "dedicated" };
        println!("=== {condition} cluster (3 fast + 5 slow) ===\n");
        let mut loads = vec![LoadTrace::dedicated(); 8];
        if nondedicated {
            // The paper's overload set: 1 fast + 3 slow slaves busy.
            loads[0] = LoadTrace::paper_overloaded();
            for l in loads.iter_mut().take(6).skip(3) {
                *l = LoadTrace::paper_overloaded();
            }
        }
        for scheme in [SchemeKind::Gss { min_chunk: 1 }, SchemeKind::Tfss] {
            let cfg = SimConfig::new(ClusterSpec::paper_mix(3, 5), scheme);
            let (report, _spans, trace) = simulate_traced(&cfg, &workload, &loads);
            let (wait_sum, wait_max, gap_count, gap_s) = wait_profile(&trace);
            let cp = critical_path(&trace);
            println!(
                "{}: T_p {:.2}s | SumT_wait {:.2}s (max {:.2}s) | {} idle gaps ({:.2}s) | serialized {:.2}s",
                report.scheme, report.t_p, wait_sum, wait_max, gap_count, gap_s,
                cp.serialized_ns as f64 / 1e9,
            );
            println!("{}", render_gantt(&trace, 64));
        }
    }

    // Same schema from a real threaded run: trace TFSS end-to-end and
    // drop a Perfetto-loadable file.
    let workload = Arc::new(SampledWorkload::new(
        Mandelbrot::new(MandelbrotParams::paper_domain(300, 150)),
        4,
    ));
    let cfg = HarnessConfig::paper_mix(SchemeKind::Tfss, 2, 2).traced();
    let out = run_scheduled_loop(&cfg, workload);
    let trace = out.trace.expect("tracing was on");
    let json = to_chrome_json(&trace);
    let events = validate_chrome_trace(&json).expect("schema holds for the runtime too");
    let path = std::env::temp_dir().join("lss_traced_schedule.json");
    std::fs::write(&path, json).expect("write trace");
    println!(
        "real TFSS run ({} clock): {} trace events -> {}",
        trace.meta.clock.label(),
        events,
        path.display()
    );
    println!("open it at https://ui.perfetto.dev (Open trace file)");
}
