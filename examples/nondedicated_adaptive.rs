//! Demonstrates the paper's central claim: distributed (ACP-aware)
//! schemes adapt when machines become loaded mid-run, simple schemes
//! don't.
//!
//! Part 1 uses the simulator: a load spike hits 5 of 8 PEs at t = 5 s;
//! TSS (simple) vs DTSS (distributed, with re-planning).
//!
//! Part 2 uses the real threaded runtime: worker 0's run-queue jumps
//! mid-run via [`LoadState`]; DTSS shifts iterations away from it.
//!
//! ```sh
//! cargo run --release --example nondedicated_adaptive
//! ```

use std::sync::Arc;
use std::time::Duration;

use loop_self_scheduling::prelude::*;

fn main() {
    simulated_spike();
    live_runtime_spike();
}

fn simulated_spike() {
    println!("== Part 1: simulated load spike (5 of 8 PEs pick up 2 hogs at t = 5 s) ==\n");
    let workload = SampledWorkload::new(
        Mandelbrot::new(MandelbrotParams::paper_domain(2000, 1000)),
        4,
    );
    let spike = SimTime::from_secs_f64(5.0);
    let mut traces = vec![LoadTrace::dedicated(); 8];
    for t in traces.iter_mut().take(7).skip(2) {
        *t = LoadTrace::from_steps(vec![(SimTime::ZERO, 1), (spike, 3)]);
    }

    for scheme in [SchemeKind::Tss, SchemeKind::Dtss] {
        let cfg = SimConfig::new(ClusterSpec::paper_p8(), scheme);
        let r = simulate(&cfg, &workload, &traces);
        println!(
            "{:5}  T_p = {:5.1} s   comp-imbalance = {:.2}   iterations per PE: {:?}",
            r.scheme,
            r.t_p,
            r.comp_imbalance(),
            r.iterations
        );
    }
    println!();
}

fn live_runtime_spike() {
    println!("== Part 2: live load change in the threaded runtime ==\n");
    // Big enough that the run lasts a few hundred milliseconds — the
    // spike below must land mid-run to be observable.
    let workload = Arc::new(SampledWorkload::new(
        Mandelbrot::new(MandelbrotParams::paper_domain(2400, 1200)),
        4,
    ));

    let cfg = HarnessConfig::paper_mix(SchemeKind::Dtss, 2, 2);
    // Keep a handle on worker 0's load; overload it shortly after start
    // (the §3.1 scenario: "a new user logs in ... and starts a
    // computational resources expensive task").
    let load0 = cfg.workers[0].load.clone();
    let flipper = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(40));
        load0.set_q(6);
        println!("   [external] worker 0 run-queue -> 6");
    });

    let out = run_scheduled_loop(&cfg, Arc::clone(&workload));
    flipper.join().unwrap();

    println!("\nDTSS under a live spike on worker 0:");
    for (i, iters) in out.report.iterations.iter().enumerate() {
        println!("  worker {i}: {iters} iterations");
    }
    println!(
        "  worker 0 (overloaded fast PE) got {} vs worker 1 (free fast PE) {}",
        out.report.iterations[0], out.report.iterations[1]
    );
    if out.report.iterations[0] < out.report.iterations[1] {
        println!("  -> DTSS shifted work away from the loaded machine");
    } else {
        println!("  -> run finished before the spike could matter; try a larger window");
    }
    println!("  wall time: {:.3} s, results collected: {}", out.report.t_p, out.results.len());
}
