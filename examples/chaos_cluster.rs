//! Chaos demo: an 8-worker cluster computes a real Mandelbrot loop
//! while one worker crashes, one hangs forever, one drops its link and
//! redials, one degrades 8x, and one suffers a lossy network. The
//! self-healing master detects every pathology through chunk leases and
//! piggy-backed heartbeats, requeues lost work, and finishes the loop
//! with every column computed exactly once.
//!
//! ```sh
//! cargo run --release --example chaos_cluster
//! ```

use std::sync::Arc;
use std::time::Duration;

use loop_self_scheduling::prelude::*;

fn main() {
    let workload = Arc::new(SampledWorkload::new(
        Mandelbrot::new(MandelbrotParams::paper_domain(600, 400)),
        4,
    ));

    let workers = vec![
        WorkerSpec::fast(),
        WorkerSpec::fast(),
        WorkerSpec::slow(),
        WorkerSpec::fast().with_fault(FaultPlan::crash_after(2)),
        WorkerSpec::fast().with_fault(FaultPlan::hang_after(1)),
        WorkerSpec::fast().with_fault(FaultPlan::reconnect_after(1, 50_000_000)),
        WorkerSpec::fast().with_fault(FaultPlan::degrade_after(1, 8)),
        WorkerSpec::fast().with_fault(
            FaultPlan::healthy()
                .with_net(NetFaults { drop_prob: 0.2, dup_prob: 0.2, delay_ticks: 500_000 })
                .with_seed(7),
        ),
    ];
    let fates = [
        "healthy", "healthy", "healthy (slow PE)",
        "crashes after 2 chunks", "hangs holding its 2nd chunk",
        "drops link after 1 chunk, redials", "degrades 8x after 1 chunk",
        "lossy network (20% drop, 20% dup)",
    ];

    println!(
        "scheduling {} Mandelbrot columns with FSS over {} workers:",
        workload.len(),
        workers.len()
    );
    for (i, f) in fates.iter().enumerate() {
        println!("  worker {i}: {f}");
    }
    println!();

    let mut cfg = HarnessConfig::new(SchemeKind::Fss, workers);
    // Tight leases so detection is visible in a short demo; heartbeats
    // every 100 ms keep healthy-but-slow workers safe.
    cfg.lease = LeaseConfig {
        base_ticks: 400_000_000,
        default_ticks_per_iter: 0,
        grace: 8.0,
        dead_after_ticks: 250_000_000,
        max_speculations: 2,
    };
    cfg.heartbeat_every = Some(Duration::from_millis(100));
    let out = run_scheduled_loop(&cfg, Arc::clone(&workload));

    for (i, stats) in out.worker_stats.iter().enumerate() {
        let fate = if out.failed_workers.contains(&i) { "LOST" } else { "ok" };
        println!(
            "worker {i}: {:>4} iterations in {:>2} chunks, {} reconnects  [{fate}]",
            stats.iterations, stats.chunks, stats.reconnects
        );
    }
    println!(
        "\nspeculative grants: {}, duplicate results dropped: {}",
        out.speculative_grants, out.duplicates_dropped
    );
    println!("\nfault log ({} events):\n{}", out.faults.len(), out.faults.render());

    // The proof: every column's result reached the master exactly once.
    assert_eq!(out.results.len(), workload.len() as usize);
    for i in 0..workload.len() {
        assert_eq!(out.results[i as usize], workload.execute(i), "column {i}");
    }
    println!("every {} columns accounted for exactly once — loop survived.", workload.len());
}
