//! Interactive chunk-sequence explorer: print the chunks any scheme
//! would dispense for a given loop size and PE count — a generalized
//! Table 1.
//!
//! ```sh
//! cargo run --example scheme_explorer -- tfss 1000 4
//! cargo run --example scheme_explorer -- dtss 1000 "2.65,2.65,1,1"
//! cargo run --example scheme_explorer -- all 1000 4
//! ```

use loop_self_scheduling::prelude::*;

fn usage() -> ! {
    eprintln!(
        "usage: scheme_explorer <scheme> <I> <p | power-list>\n\
         schemes: s ss css:<k> gss gss:<k> tss fss fiss:<sigma> tfss wf\n\
                  dtss dfss dfiss:<sigma> dtfss all\n\
         the third argument is either a PE count (homogeneous) or a\n\
         comma-separated virtual-power list, e.g. \"2.65,2.65,1,1\""
    );
    std::process::exit(2);
}

fn parse_scheme(s: &str) -> Option<SchemeKind> {
    let (name, param) = match s.split_once(':') {
        Some((n, p)) => (n, Some(p)),
        None => (s, None),
    };
    let num = |d: u64| param.and_then(|p| p.parse().ok()).unwrap_or(d);
    Some(match name {
        "s" => SchemeKind::Static,
        "ss" => SchemeKind::Pure,
        "css" => SchemeKind::Css { k: num(1) },
        "gss" => SchemeKind::Gss { min_chunk: num(1) },
        "tss" => SchemeKind::Tss,
        "fss" => SchemeKind::Fss,
        "fiss" => SchemeKind::Fiss { sigma: num(3) as u32 },
        "tfss" => SchemeKind::Tfss,
        "wf" => SchemeKind::Wf,
        "dtss" => SchemeKind::Dtss,
        "dfss" => SchemeKind::Dfss,
        "dfiss" => SchemeKind::Dfiss { sigma: num(3) as u32 },
        "dtfss" => SchemeKind::Dtfss,
        _ => return None,
    })
}

fn show(scheme: SchemeKind, total: u64, powers: &[VirtualPower]) {
    let cfg = MasterConfig {
        scheme,
        total,
        powers: powers.to_vec(),
        initial_q: vec![1; powers.len()],
        acp: AcpConfig::PAPER,
    };
    let mut master = Master::new(cfg);
    let p = powers.len();
    let mut rows: Vec<Vec<u64>> = vec![Vec::new(); p];
    let mut order = Vec::new();
    let mut w = 0usize;
    loop {
        match master.handle_request(w % p, 1) {
            Assignment::Chunk(c) => {
                rows[w % p].push(c.len);
                order.push(c.len);
            }
            Assignment::Retry => {}
            Assignment::Finished => break,
        }
        w += 1;
    }
    println!("{} (I = {total}, p = {p}):", scheme.name());
    println!("  sequence: {}", order.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(" "));
    for (i, r) in rows.iter().enumerate() {
        println!(
            "  PE{} (V={:.2}): {} chunks, {} iterations",
            i + 1,
            powers[i].get(),
            r.len(),
            r.iter().sum::<u64>()
        );
    }
    println!("  scheduling steps: {}\n", order.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() != 3 {
        usage();
    }
    let total: u64 = args[1].parse().unwrap_or_else(|_| usage());
    let powers: Vec<VirtualPower> = if args[2].contains(',') {
        args[2]
            .split(',')
            .map(|s| VirtualPower::new(s.trim().parse().unwrap_or_else(|_| usage())))
            .collect()
    } else {
        let p: usize = args[2].parse().unwrap_or_else(|_| usage());
        vec![VirtualPower::new(1.0); p]
    };

    if args[0] == "all" {
        for s in [
            SchemeKind::Static,
            SchemeKind::Gss { min_chunk: 1 },
            SchemeKind::Tss,
            SchemeKind::Fss,
            SchemeKind::Fiss { sigma: 3 },
            SchemeKind::Tfss,
            SchemeKind::Wf,
            SchemeKind::Dtss,
            SchemeKind::Dfss,
            SchemeKind::Dfiss { sigma: 3 },
            SchemeKind::Dtfss,
        ] {
            show(s, total, &powers);
        }
    } else {
        let scheme = parse_scheme(&args[0]).unwrap_or_else(|| usage());
        show(scheme, total, &powers);
    }
}
