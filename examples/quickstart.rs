//! Quickstart: schedule an irregular parallel loop (Mandelbrot) on an
//! emulated heterogeneous cluster with the paper's TFSS scheme, using
//! real threads, and print the paper-style report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use loop_self_scheduling::prelude::*;

fn main() {
    // The workload: one task per image column, irregular costs —
    // "the most severe test for a scheduling scheme" (paper §2.1).
    let workload = Arc::new(SampledWorkload::new(
        Mandelbrot::new(MandelbrotParams::paper_domain(600, 400)),
        4, // the paper's sampling frequency S_f
    ));

    // The cluster: 1 fast + 2 slow emulated PEs (slow = 3× handicap,
    // like the paper's UltraSPARC 1 vs 10).
    let cfg = HarnessConfig::paper_mix(SchemeKind::Tfss, 1, 2);

    println!(
        "scheduling {} iterations with {} over {} workers...\n",
        workload.len(),
        cfg.scheme.name(),
        cfg.workers.len()
    );
    let out = run_scheduled_loop(&cfg, Arc::clone(&workload));

    println!("scheme            : {}", out.report.scheme);
    println!("wall time T_p     : {:.3} s", out.report.t_p);
    println!("scheduling steps  : {}", out.report.scheduling_steps);
    for (i, (b, iters)) in out.report.per_pe.iter().zip(&out.report.iterations).enumerate() {
        println!(
            "PE{}: com {:.3}s  wait {:.3}s  comp {:.3}s  ({} iterations)",
            i + 1,
            b.t_com,
            b.t_wait,
            b.t_comp,
            iters
        );
    }
    println!(
        "\ncomputation imbalance (cov): {:.3}  — lower is better",
        out.report.comp_imbalance()
    );

    // Results arrive at the master piggy-backed on requests; verify one.
    assert_eq!(out.results.len(), workload.len() as usize);
    println!("all {} column results collected at the master ✓", out.results.len());
}
