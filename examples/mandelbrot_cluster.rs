//! Compare every scheduling scheme on the paper's simulated cluster —
//! Mandelbrot on 3 fast + 5 slow PEs — in one table.
//!
//! ```sh
//! cargo run --release --example mandelbrot_cluster [width height]
//! ```

use loop_self_scheduling::prelude::*;
use lss_metrics::table::TextTable;

fn main() {
    let mut args = std::env::args().skip(1);
    let width: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(1200);
    let height: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(600);

    let workload = SampledWorkload::new(
        Mandelbrot::new(MandelbrotParams::paper_domain(width, height)),
        4,
    );
    let traces = vec![LoadTrace::dedicated(); 8];
    println!(
        "Mandelbrot {width}x{height} (S_f = 4), {} column-tasks, total cost {} ops",
        workload.len(),
        workload.total_cost()
    );
    let t1 = lss_sim::engine::sequential_time(&workload, lss_sim::cluster::FAST_SPEED);
    println!("sequential time on one fast PE: {t1:.1} s\n");

    let schemes = [
        SchemeKind::Static,
        SchemeKind::Css { k: 32 },
        SchemeKind::Gss { min_chunk: 1 },
        SchemeKind::Tss,
        SchemeKind::Fss,
        SchemeKind::Fiss { sigma: 4 },
        SchemeKind::Tfss,
        SchemeKind::Wf,
        SchemeKind::Dtss,
        SchemeKind::Dfss,
        SchemeKind::Dfiss { sigma: 4 },
        SchemeKind::Dtfss,
    ];

    let mut table = TextTable::new(vec![
        "scheme".into(),
        "T_p (s)".into(),
        "speedup".into(),
        "steps".into(),
        "comp imbalance".into(),
        "overhead (s)".into(),
    ]);
    for scheme in schemes {
        let cfg = SimConfig::new(ClusterSpec::paper_p8(), scheme);
        let r = simulate(&cfg, &workload, &traces);
        table.push_row(vec![
            r.scheme.clone(),
            format!("{:.1}", r.t_p),
            format!("{:.2}", t1 / r.t_p),
            r.scheduling_steps.to_string(),
            format!("{:.3}", r.comp_imbalance()),
            format!("{:.1}", r.total_overhead()),
        ]);
    }
    // Tree scheduling rounds out the comparison.
    for (label, weighted) in [("TreeS", false), ("TreeS-w", true)] {
        let r = simulate_tree(
            &TreeSimConfig::new(ClusterSpec::paper_p8(), weighted),
            &workload,
            &traces,
        );
        table.push_row(vec![
            label.into(),
            format!("{:.1}", r.t_p),
            format!("{:.2}", t1 / r.t_p),
            r.scheduling_steps.to_string(),
            format!("{:.3}", r.comp_imbalance()),
            format!("{:.1}", r.total_overhead()),
        ]);
    }
    println!("{}", table.render());
    println!("(dedicated cluster: 3 fast + 5 slow slaves; fast ≈ 2.65× slow)");
}
