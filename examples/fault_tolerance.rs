//! Fault tolerance demo: workers crash mid-run; the master requeues
//! their chunks and the survivors finish the loop — no iteration is
//! lost. (The paper's MPI implementation would have died; this is one
//! of this implementation's extensions.)
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use std::sync::Arc;

use loop_self_scheduling::prelude::*;

fn main() {
    let workload = Arc::new(SampledWorkload::new(
        Mandelbrot::new(MandelbrotParams::paper_domain(800, 400)),
        4,
    ));

    println!(
        "scheduling {} Mandelbrot columns with TFSS over 4 workers;\n\
         worker 2 will crash after 1 chunk, worker 3 after 2 chunks\n",
        workload.len()
    );

    let cfg = HarnessConfig::new(
        SchemeKind::Tfss,
        vec![
            WorkerSpec::fast(),
            WorkerSpec::slow(),
            WorkerSpec::failing_after(1),
            WorkerSpec::failing_after(2),
        ],
    );
    let out = run_scheduled_loop(&cfg, Arc::clone(&workload));

    println!("failed workers : {:?}", out.failed_workers);
    for (i, (stats, iters)) in out.worker_stats.iter().zip(&out.report.iterations).enumerate() {
        let fate = if out.failed_workers.contains(&i) { "CRASHED" } else { "ok" };
        println!(
            "worker {i}: {:>4} iterations in {:>2} chunks  [{fate}]",
            stats.iterations, stats.chunks
        );
        let _ = iters;
    }

    // The proof: every column's result reached the master exactly once.
    assert_eq!(out.results.len(), workload.len() as usize);
    for i in 0..workload.len() {
        assert_eq!(out.results[i as usize], workload.execute(i));
    }
    println!(
        "\nall {} results collected despite {} crashes ✓ (T_p = {:.3}s)",
        out.results.len(),
        out.failed_workers.len(),
        out.report.t_p
    );
}
