//! Offline stand-in for the `criterion` crate.
//!
//! The build container has no registry access, so the workspace vendors
//! the slice of criterion's API its benches use: `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//! Measurement is a plain median-of-samples wall clock — adequate for
//! "did this get slower by 2×" smoke checks, not for microsecond-level
//! statistics. Swap back to real criterion when a registry is
//! available.

use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for bench code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }
}

/// Anything usable as a benchmark name.
#[derive(Debug, Clone)]
pub struct BenchName(String);

impl From<&str> for BenchName {
    fn from(s: &str) -> Self {
        BenchName(s.to_owned())
    }
}

impl From<String> for BenchName {
    fn from(s: String) -> Self {
        BenchName(s)
    }
}

impl From<BenchmarkId> for BenchName {
    fn from(id: BenchmarkId) -> Self {
        BenchName(id.id)
    }
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last run.
    last: Duration,
}

impl Bencher {
    /// Times `f`, recording a median over `samples` batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call, then `samples` timed calls.
        black_box(f());
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let t0 = Instant::now();
                black_box(f());
                t0.elapsed()
            })
            .collect();
        times.sort_unstable();
        self.last = times[times.len() / 2];
    }
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher { samples, last: Duration::ZERO };
    f(&mut b);
    println!("bench {name:<48} median {:>12.3?}  ({samples} samples)", b.last);
}

/// Top-level bench driver (a much-simplified `criterion::Criterion`).
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 10 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<BenchName>,
        mut f: F,
    ) -> &mut Self {
        run_one(&name.into().0, self.samples, &mut f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { prefix: name.into(), samples: self.samples, _parent: self }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    samples: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl Into<BenchName>,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.prefix, name.into().0);
        run_one(&full, self.samples, &mut f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group-runner function invoking each bench function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.bench_function("tiny", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function(BenchmarkId::new("x", 7), |b| b.iter(|| black_box(2 * 2)));
        g.finish();
    }

    criterion_group!(benches, tiny);

    #[test]
    fn runner_executes() {
        benches();
    }
}
