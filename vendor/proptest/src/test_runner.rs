//! Case runner support: configuration, RNG, and case outcomes.

/// Runner configuration (`proptest::test_runner::Config`).
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of accepted cases to run per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        // Real proptest defaults to 256; this stand-in trades a little
        // coverage for offline test-suite latency.
        Config { cases: 64 }
    }
}

/// Why a case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed — regenerate, don't count.
    Reject,
    /// `prop_assert*!` failed — the property is false.
    Fail(String),
}

impl TestCaseError {
    /// A failed case with the given reason (mirrors the real crate's
    /// `TestCaseError::fail`).
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected (filtered-out) case.
    pub fn reject(_reason: impl Into<String>) -> Self {
        TestCaseError::Reject
    }
}

/// Deterministic xoshiro256++ stream, seeded from the test's name so
/// every run of a given test explores the same cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG for the named test (FNV-1a of the name → SplitMix64 → state).
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let mut x = h;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}
