//! Value-generation strategies (no shrinking).

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The `any::<T>()` strategy.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// Whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
