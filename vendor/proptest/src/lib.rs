//! Offline stand-in for the `proptest` crate.
//!
//! The build container has no registry access, so the workspace vendors
//! the slice of proptest's API its tests use: the [`proptest!`] macro,
//! range / tuple / collection / option strategies, `any::<T>()`,
//! `prop_map`, and the `prop_assert*` family. Cases are generated from
//! a deterministic per-test seed; there is **no shrinking** — a failing
//! case is reported as-is with its debug representation. Good enough to
//! keep property coverage in an air-gapped build; swap back to real
//! proptest when a registry is available.

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Number of elements a collection strategy may produce.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec` — vectors of `element` values.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64 + 1;
            let n = self.size.lo + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `None` or `Some(inner)`.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S>(S);

    /// `proptest::option::of` — `Some` three times out of four.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

/// The `prop::` alias exposed by `proptest::prelude`.
pub mod prop {
    pub use crate::collection;
    pub use crate::option;
}

pub use strategy::{any, Strategy};

/// Everything tests import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// The test macro: repeatedly generates each `name in strategy` binding
/// and runs the body; panics on the first failing case (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(clippy::redundant_closure_call)]
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut accepted = 0u32;
            let mut rejected = 0u32;
            while accepted < config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::core::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                        assert!(
                            rejected < 100 * config.cases + 1_000,
                            "proptest {}: too many rejected cases (prop_assume too strict)",
                            stringify!($name),
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest {} failed after {} passing case(s): {}",
                            stringify!($name), accepted, msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
}

/// Discards the current case (regenerated, not counted) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 10u64..20, y in -5i32..5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-5..5).contains(&y));
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(any::<u8>(), 3..6)) {
            prop_assert!((3..6).contains(&v.len()));
        }

        #[test]
        fn exact_vec_size(v in prop::collection::vec(any::<bool>(), 9)) {
            prop_assert_eq!(v.len(), 9);
        }

        #[test]
        fn tuples_and_map(
            pair in (0u64..100, 1u64..10).prop_map(|(a, b)| a * 10 + b),
        ) {
            prop_assert!(pair < 1010);
        }

        #[test]
        fn assume_discards(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn options_cover_both(o in prop::option::of(0u8..10)) {
            if let Some(v) = o {
                prop_assert!(v < 10);
            }
        }
    }

    proptest! {
        #![proptest_config(crate::test_runner::Config::with_cases(5))]
        #[test]
        fn config_accepted(x in any::<u64>()) {
            let _ = x;
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_case_panics() {
        proptest! {
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::test_runner::TestRng::for_test("same");
        let mut b = crate::test_runner::TestRng::for_test("same");
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
