//! Offline stand-in for the `rand` crate.
//!
//! The build container has no registry access, so the workspace vendors
//! the tiny slice of `rand`'s API it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]) and uniform range
//! sampling ([`Rng::gen_range`]). The generator is xoshiro256++ seeded
//! via SplitMix64 — statistically solid for workload synthesis, not
//! cryptographic. Streams differ from upstream `rand`, which only
//! matters if exact sequences were ever golden-tested (they are not).

/// Seedable generators, mirroring `rand::rngs`.
pub mod rngs {
    /// Deterministic xoshiro256++ generator (stand-in for rand's
    /// `StdRng`; same role, different stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }

        pub(crate) fn next_u64_impl(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64_seed(seed)
    }
}

/// A range that uniform samples can be drawn from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample(self, rng: &mut rngs::StdRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64_impl() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64_impl() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut rngs::StdRng) -> f64 {
        assert!(self.start < self.end, "empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64_impl() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample(self, rng: &mut rngs::StdRng) -> f32 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64_impl() >> 40) as f32 / (1u64 << 24) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// Sampling methods, mirroring `rand::Rng`.
pub trait Rng {
    /// Draws a uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// Draws a raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

impl Rng for rngs::StdRng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn next_u64(&mut self) -> u64 {
        self.next_u64_impl()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u64 = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.gen_range(1usize..=5);
            assert!((1..=5).contains(&y));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn full_u64_range_does_not_overflow() {
        let mut rng = StdRng::seed_from_u64(1);
        let _: u64 = rng.gen_range(0u64..u64::MAX);
        let _: i64 = rng.gen_range(i64::MIN..i64::MAX);
    }
}
